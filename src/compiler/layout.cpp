#include "compiler/layout.hpp"

#include <map>
#include <set>

#include "support/strings.hpp"

namespace p4all::compiler {

using analysis::Instance;

std::int64_t Layout::register_elems(ir::RegisterId reg, std::int64_t instance) const {
    for (const StagePlan& stage : stages) {
        for (const PlacedRegister& pr : stage.registers) {
            if (pr.reg == reg && pr.instance == instance) return pr.elems;
        }
    }
    return 0;
}

int Layout::stage_of(const Instance& inst) const {
    for (std::size_t s = 0; s < stages.size(); ++s) {
        for (const Instance& a : stages[s].actions) {
            if (a == inst) return static_cast<int>(s);
        }
    }
    return -1;
}

std::size_t Layout::total_actions() const {
    std::size_t n = 0;
    for (const StagePlan& s : stages) n += s.actions.size();
    return n;
}

std::string Layout::to_string(const ir::Program& prog) const {
    std::string out;
    for (std::size_t si = 0; si < bindings.size(); ++si) {
        out += prog.symbol(static_cast<ir::SymbolId>(si)).name + " = " +
               std::to_string(bindings[si]) + "\n";
    }
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const StagePlan& plan = stages[s];
        if (plan.actions.empty() && plan.registers.empty()) continue;
        out += "stage " + std::to_string(s) + ":";
        for (const Instance& inst : plan.actions) {
            const ir::CallSite& site = prog.flow.at(static_cast<std::size_t>(inst.call));
            out += " " + prog.action(site.action).name;
            if (site.elastic()) out += "_" + std::to_string(inst.iter);
        }
        std::int64_t bits = 0;
        for (const PlacedRegister& pr : plan.registers) {
            out += " [" + prog.reg(pr.reg).name + "_" + std::to_string(pr.instance) + ": " +
                   std::to_string(pr.elems) + " x " + std::to_string(prog.reg(pr.reg).width) +
                   "b]";
            bits += pr.bits(prog);
        }
        if (bits > 0) out += " mem=" + std::to_string(bits) + "b";
        out += "\n";
    }
    return out;
}

std::vector<std::string> audit_layout(const ir::Program& prog, const target::TargetSpec& target,
                                      const Layout& layout) {
    std::vector<std::string> violations;
    const auto complain = [&](std::string msg) { violations.push_back(std::move(msg)); };

    if (static_cast<int>(layout.stages.size()) > target.stages) {
        complain("layout uses more stages than the target has");
    }

    // Per-stage resource limits.
    for (std::size_t s = 0; s < layout.stages.size(); ++s) {
        const StagePlan& plan = layout.stages[s];
        int stateful = 0;
        int stateless = 0;
        int hash = 0;
        for (const Instance& inst : plan.actions) {
            const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
            stateful += sum.stateful_alus;
            stateless += sum.stateless_alus;
            hash += sum.hash_units;
        }
        if (stateful > target.stateful_alus) {
            complain("stage " + std::to_string(s) + ": stateful ALUs " +
                     std::to_string(stateful) + " > " + std::to_string(target.stateful_alus));
        }
        if (stateless > target.stateless_alus) {
            complain("stage " + std::to_string(s) + ": stateless ALUs " +
                     std::to_string(stateless) + " > " + std::to_string(target.stateless_alus));
        }
        if (hash > target.hash_units) {
            complain("stage " + std::to_string(s) + ": hash units " + std::to_string(hash) +
                     " > " + std::to_string(target.hash_units));
        }
        std::int64_t mem = 0;
        for (const PlacedRegister& pr : plan.registers) mem += pr.bits(prog);
        if (mem > target.memory_bits) {
            complain("stage " + std::to_string(s) + ": memory " + std::to_string(mem) + "b > " +
                     std::to_string(target.memory_bits) + "b");
        }
    }

    // Registers co-located with the actions that use them; every placed
    // action's registers must exist in its own stage.
    for (std::size_t s = 0; s < layout.stages.size(); ++s) {
        std::set<analysis::RegChunk> here;
        for (const PlacedRegister& pr : layout.stages[s].registers) {
            here.insert({pr.reg, pr.instance});
        }
        for (const Instance& inst : layout.stages[s].actions) {
            const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
            for (const analysis::RegChunk& rc : sum.regs) {
                if (here.count(rc) == 0) {
                    complain("stage " + std::to_string(s) + ": action uses register " +
                             prog.reg(rc.reg).name + "_" + std::to_string(rc.instance) +
                             " not placed in that stage");
                }
            }
        }
    }

    // Dependence edges. Rebuild the graph over exactly the placed instances.
    std::vector<Instance> placed;
    for (const StagePlan& plan : layout.stages) {
        placed.insert(placed.end(), plan.actions.begin(), plan.actions.end());
    }
    const analysis::DepGraph g = analysis::build_dep_graph(prog, target, placed);
    if (g.infeasible) complain("placed instances are mutually inconsistent: " + g.infeasible_reason);
    const auto stage_of_node = [&](int node) {
        return layout.stage_of(g.instances[static_cast<std::size_t>(g.members[
            static_cast<std::size_t>(node)].front())]);
    };
    for (const auto& [a, b] : g.before) {
        if (stage_of_node(a) >= stage_of_node(b)) {
            complain("precedence violated between nodes " + std::to_string(a) + " and " +
                     std::to_string(b));
        }
    }
    for (const auto& [a, b] : g.not_after) {
        if (stage_of_node(a) > stage_of_node(b)) {
            complain("write-after-read order violated between nodes " + std::to_string(a) +
                     " and " + std::to_string(b));
        }
    }
    for (const auto& [a, b] : g.exclusive) {
        if (stage_of_node(a) == stage_of_node(b)) {
            complain("exclusive nodes share stage " + std::to_string(stage_of_node(a)));
        }
    }
    // Register-shared instances must share a stage.
    for (const auto& members : g.members) {
        for (std::size_t i = 1; i < members.size(); ++i) {
            const Instance& first = g.instances[static_cast<std::size_t>(members[0])];
            const Instance& other = g.instances[static_cast<std::size_t>(members[i])];
            if (layout.stage_of(first) != layout.stage_of(other)) {
                complain("register-sharing instances split across stages");
            }
        }
    }

    // PHV budget: packet + scalar metadata + placed elastic chunks.
    std::int64_t phv = prog.fixed_phv_bits();
    std::set<analysis::MetaChunk> chunks;
    for (const Instance& inst : placed) {
        const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
        for (const auto& [chunk, access] : sum.meta) {
            const ir::MetaField& f = prog.meta(chunk.field);
            if (f.is_array() && f.array->symbolic() && chunks.insert(chunk).second) {
                phv += f.width;
            }
        }
    }
    if (phv > target.phv_bits) {
        complain("PHV bits " + std::to_string(phv) + " > " + std::to_string(target.phv_bits));
    }

    // Bindings must describe the layout: every elastic call site of symbol v
    // is placed exactly for iterations 0..bindings[v]-1, and every placed
    // row of a register sized by symbol w has exactly bindings[w] elements.
    for (std::size_t c = 0; c < prog.flow.size(); ++c) {
        const ir::CallSite& site = prog.flow[c];
        if (!site.elastic()) {
            if (layout.stage_of({static_cast<int>(c), 0}) < 0) {
                complain("inelastic call site " + std::to_string(c) + " is not placed");
            }
            continue;
        }
        const std::int64_t k = layout.binding(site.loop_bound);
        for (std::int64_t i = 0; i < k; ++i) {
            if (layout.stage_of({static_cast<int>(c), i}) < 0) {
                complain("iteration " + std::to_string(i) + " of call site " +
                         std::to_string(c) + " missing although " +
                         prog.symbol(site.loop_bound).name + " = " + std::to_string(k));
            }
        }
        if (layout.stage_of({static_cast<int>(c), k}) >= 0) {
            complain("call site " + std::to_string(c) + " has iterations beyond " +
                     prog.symbol(site.loop_bound).name + " = " + std::to_string(k));
        }
    }
    for (const StagePlan& plan : layout.stages) {
        for (const PlacedRegister& pr : plan.registers) {
            const ir::RegisterArray& r = prog.reg(pr.reg);
            if (r.elems.symbolic() && pr.elems != layout.binding(r.elems.sym)) {
                complain("register " + r.name + "_" + std::to_string(pr.instance) + " has " +
                         std::to_string(pr.elems) + " elements but " +
                         prog.symbol(r.elems.sym).name + " = " +
                         std::to_string(layout.binding(r.elems.sym)));
            }
        }
    }

    // The assignment must satisfy every assume constraint.
    if (!ir::satisfies_assumes(prog, layout.bindings)) {
        complain("assignment violates an assume constraint");
    }
    return violations;
}

}  // namespace p4all::compiler
