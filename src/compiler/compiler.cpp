#include "compiler/compiler.hpp"

#include <chrono>

#include "compiler/codegen.hpp"
#include "compiler/greedy.hpp"
#include "compiler/report.hpp"
#include "opt/optimizer.hpp"
#include "lang/parser.hpp"
#include "support/error.hpp"
#include "support/faultpoint.hpp"
#include "verify/dataflow.hpp"

namespace p4all::compiler {

using support::CompileError;

namespace {
using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

CompileResult compile(const lang::Program& ast, const CompileOptions& options,
                      const std::string& name) {
    const auto t_start = Clock::now();
    CompileResult result;
    std::shared_ptr<CompileArtifacts> artifacts;
    if (options.emit_artifacts) {
        artifacts = std::make_shared<CompileArtifacts>();
        artifacts->name = name;
        artifacts->backend = options.backend == Backend::Greedy       ? "greedy"
                             : options.backend == Backend::Exhaustive ? "exhaustive"
                                                                      : "ilp";
        artifacts->target = options.target;
    }

    auto t0 = Clock::now();
    ir::ElaborateOptions elab_opts;
    elab_opts.program_name = name;
    result.program = ir::elaborate(ast, elab_opts);
    result.stats.elaborate_seconds = since(t0);

    if (options.opt_level >= 1) {
        t0 = Clock::now();
        opt::OptResult optres = opt::optimize(result.program);
        if (artifacts) {
            artifacts->optimized = true;
            artifacts->opt_level = options.opt_level;
            artifacts->pre_opt_program = std::move(result.program);
            artifacts->rewrites = optres.rewrites;
        }
        result.program = std::move(optres.program);
        result.stats.opt_seconds = since(t0);
    }

    t0 = Clock::now();
    result.stats.unroll_bounds =
        analysis::unroll_bounds_all(result.program, options.target, options.unroll);
    result.stats.bounds_seconds = since(t0);

    if (options.backend == Backend::Greedy) {
        auto greedy = greedy_place(result.program, options.target, result.stats.unroll_bounds,
                                   options.deadline);
        if (!greedy) {
            if (options.deadline.expired()) {
                throw support::Error(options.deadline.cancelled()
                                         ? support::Errc::Cancelled
                                         : support::Errc::DeadlineExceeded,
                                     "greedy placement for '" + name +
                                         "' cut off before finding a layout");
            }
            throw support::Error(support::Errc::NoLayoutFound,
                                 "program '" + name + "' does not fit target '" +
                                     options.target.name + "' (greedy backend)");
        }
        result.layout = std::move(greedy->layout);
        result.utility = greedy->utility;
    } else {
        t0 = Clock::now();
        GeneratedIlp gen = generate_ilp(result.program, options.target,
                                        result.stats.unroll_bounds, options.ilpgen);
        result.stats.ilpgen_seconds = since(t0);
        result.stats.ilp_vars = gen.model.num_vars();
        result.stats.ilp_constraints = gen.model.num_constraints();

        t0 = Clock::now();
        ilp::SolveOptions solve_opts = options.solve;
        // The whole-pipeline deadline also bounds the solve (tighter wins).
        solve_opts.deadline = solve_opts.deadline.merged(options.deadline);
        ilp::Solution solution;
        if (options.backend == Backend::Exhaustive) {
            solution = ilp::solve_exhaustive(gen.model, options.exhaustive_max_combinations,
                                             solve_opts.deadline);
        } else {
            if (solve_opts.warm_start.empty()) {
                // Seed branch-and-bound with the greedy heuristic's layout:
                // the LP bound is often tight, so a good incumbent prunes
                // most of the tree immediately.
                if (const auto greedy = greedy_place(result.program, options.target,
                                                     result.stats.unroll_bounds,
                                                     solve_opts.deadline)) {
                    solve_opts.warm_start =
                        warm_start_values(result.program, gen, greedy->layout);
                }
            }
            solution = ilp::solve_milp(gen.model, solve_opts);
        }
        result.stats.solve_seconds = since(t0);
        result.stats.bb_nodes = solution.nodes;
        result.stats.lp_iterations = solution.lp_iterations;

        if (solution.status == ilp::SolveStatus::Infeasible) {
            throw support::Error(support::Errc::Infeasible,
                                 "program '" + name + "' does not fit target '" +
                                     options.target.name +
                                     "' under its assume constraints (ILP infeasible)");
        }
        if (!solution.optimal() && solution.values.empty()) {
            const support::Errc code = solution.error != support::Errc::None
                                           ? solution.error
                                           : support::Errc::NoLayoutFound;
            std::string msg = "solve stopped without finding any layout for '" + name + "'";
            if (!solution.error_detail.empty()) msg += " (" + solution.error_detail + ")";
            throw support::Error(code, msg);
        }
        result.layout = extract_layout(result.program, options.target, gen, solution);
        result.utility = solution.objective;
        if (artifacts) {
            artifacts->has_ilp = true;
            artifacts->solution = solution;
            artifacts->solve_options = solve_opts;
            artifacts->ilp = std::move(gen);
        }
    }

    if (options.audit) {
        const std::vector<std::string> violations =
            audit_layout(result.program, options.target, result.layout);
        if (!violations.empty()) {
            std::string msg = "internal error: compiled layout fails audit:";
            for (const std::string& v : violations) msg += "\n  " + v;
            throw support::Error(support::Errc::AuditRejected, msg);
        }
    }

    if (artifacts) {
        // Fault point: simulates artifact-packaging failure (e.g. an I/O or
        // serialization error) after a successful solve.
        if (support::fault_fires("artifacts.emit")) {
            throw support::Error(support::Errc::FaultInjected,
                                 "injected fault: artifacts.emit for '" + name + "'");
        }
        artifacts->layout = result.layout;
        artifacts->claimed_utility = result.utility;
        artifacts->claimed_usage = compute_usage(result.program, options.target, result.layout);
        artifacts->proofs =
            verify::prove_register_bounds(result.program,
                                          dataplane_view(result.program, result.layout))
                .facts;
        result.artifacts = std::move(artifacts);
    }

    result.p4_source = generate_p4(result.program, result.layout, options.deadline);
    result.stats.total_seconds = since(t_start);
    return result;
}

CompileResult compile_source(std::string_view source, const CompileOptions& options,
                             const std::string& name) {
    return compile(lang::parse(source, name + ".p4all"), options, name);
}

}  // namespace p4all::compiler
