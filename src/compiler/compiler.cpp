#include "compiler/compiler.hpp"

#include <chrono>

#include "compiler/codegen.hpp"
#include "compiler/greedy.hpp"
#include "compiler/report.hpp"
#include "lang/parser.hpp"
#include "support/error.hpp"

namespace p4all::compiler {

using support::CompileError;

namespace {
using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

CompileResult compile(const lang::Program& ast, const CompileOptions& options,
                      const std::string& name) {
    const auto t_start = Clock::now();
    CompileResult result;
    std::shared_ptr<CompileArtifacts> artifacts;
    if (options.emit_artifacts) {
        artifacts = std::make_shared<CompileArtifacts>();
        artifacts->name = name;
        artifacts->backend = options.backend == Backend::Greedy ? "greedy" : "ilp";
        artifacts->target = options.target;
    }

    auto t0 = Clock::now();
    ir::ElaborateOptions elab_opts;
    elab_opts.program_name = name;
    result.program = ir::elaborate(ast, elab_opts);
    result.stats.elaborate_seconds = since(t0);

    t0 = Clock::now();
    result.stats.unroll_bounds =
        analysis::unroll_bounds_all(result.program, options.target, options.unroll);
    result.stats.bounds_seconds = since(t0);

    if (options.backend == Backend::Greedy) {
        auto greedy = greedy_place(result.program, options.target, result.stats.unroll_bounds);
        if (!greedy) {
            throw CompileError("program '" + name + "' does not fit target '" +
                               options.target.name + "' (greedy backend)");
        }
        result.layout = std::move(greedy->layout);
        result.utility = greedy->utility;
    } else {
        t0 = Clock::now();
        GeneratedIlp gen = generate_ilp(result.program, options.target,
                                        result.stats.unroll_bounds, options.ilpgen);
        result.stats.ilpgen_seconds = since(t0);
        result.stats.ilp_vars = gen.model.num_vars();
        result.stats.ilp_constraints = gen.model.num_constraints();

        t0 = Clock::now();
        ilp::SolveOptions solve_opts = options.solve;
        if (solve_opts.warm_start.empty()) {
            // Seed branch-and-bound with the greedy heuristic's layout: the
            // LP bound is often tight, so a good incumbent prunes most of
            // the tree immediately.
            if (const auto greedy =
                    greedy_place(result.program, options.target, result.stats.unroll_bounds)) {
                solve_opts.warm_start = warm_start_values(result.program, gen, greedy->layout);
            }
        }
        const ilp::Solution solution = ilp::solve_milp(gen.model, solve_opts);
        result.stats.solve_seconds = since(t0);
        result.stats.bb_nodes = solution.nodes;
        result.stats.lp_iterations = solution.lp_iterations;

        if (solution.status == ilp::SolveStatus::Infeasible) {
            throw CompileError("program '" + name + "' does not fit target '" +
                               options.target.name +
                               "' under its assume constraints (ILP infeasible)");
        }
        if (!solution.optimal() && solution.values.empty()) {
            throw CompileError("ILP solve hit its limit without finding any layout for '" +
                               name + "'; raise SolveOptions limits");
        }
        result.layout = extract_layout(result.program, options.target, gen, solution);
        result.utility = solution.objective;
        if (artifacts) {
            artifacts->has_ilp = true;
            artifacts->solution = solution;
            artifacts->solve_options = solve_opts;
            artifacts->ilp = std::move(gen);
        }
    }

    if (options.audit) {
        const std::vector<std::string> violations =
            audit_layout(result.program, options.target, result.layout);
        if (!violations.empty()) {
            std::string msg = "internal error: compiled layout fails audit:";
            for (const std::string& v : violations) msg += "\n  " + v;
            throw CompileError(msg);
        }
    }

    if (artifacts) {
        artifacts->layout = result.layout;
        artifacts->claimed_utility = result.utility;
        artifacts->claimed_usage = compute_usage(result.program, options.target, result.layout);
        result.artifacts = std::move(artifacts);
    }

    result.p4_source = generate_p4(result.program, result.layout);
    result.stats.total_seconds = since(t_start);
    return result;
}

CompileResult compile_source(std::string_view source, const CompileOptions& options,
                             const std::string& name) {
    return compile(lang::parse(source, name + ".p4all"), options, name);
}

}  // namespace p4all::compiler
