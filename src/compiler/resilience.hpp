// Structured record of a resilient compile: which backends were attempted,
// why each one stopped, and what the driver finally shipped.
//
// Kept free of heavy compiler includes so CompileArtifacts can embed a
// ResilienceReport without a header cycle (the driver itself lives in
// compiler/resilient.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace p4all::compiler {

/// How one backend attempt ended.
enum class AttemptOutcome {
    Success,           // produced an accepted (audited) layout
    Timeout,           // cut off by the deadline
    Cancelled,         // cut off by the cancel token
    Infeasible,        // proved no layout exists
    NumericalTrouble,  // simplex breakdown (detected or injected)
    AuditRejected,     // produced a layout the audit gate refused
    Error,             // any other structured failure
    Skipped,           // never ran (disabled, no budget, or not applicable)
};

[[nodiscard]] const char* attempt_outcome_name(AttemptOutcome outcome) noexcept;

/// One backend attempt inside the fallback portfolio.
struct AttemptReport {
    std::string backend;  // "ilp", "ilp-bland", "greedy", "exhaustive"
    AttemptOutcome outcome = AttemptOutcome::Skipped;
    support::Errc error = support::Errc::None;
    std::string detail;
    double seconds = 0.0;
    std::int64_t nodes = 0;
    std::int64_t lp_iterations = 0;
    /// Perturbation seed the attempt's LP solves ran under — logged so any
    /// injected failure or restart replays bit-for-bit.
    std::uint64_t perturb_seed = 0;
    /// True when the attempt shipped a best-so-far incumbent from a search
    /// that did not run to completion (anytime semantics).
    bool anytime = false;
};

/// The driver's full account of a resilient compile.
struct ResilienceReport {
    double budget_seconds = 0.0;
    double total_seconds = 0.0;
    /// Backend whose layout was accepted; empty when every attempt failed.
    std::string final_backend;
    bool anytime = false;
    std::vector<AttemptReport> attempts;

    [[nodiscard]] bool succeeded() const noexcept { return !final_backend.empty(); }
    /// Multi-line human-readable account (one line per attempt).
    [[nodiscard]] std::string to_string() const;
    /// Compact JSON object mirroring the fields above.
    [[nodiscard]] std::string to_json() const;
};

}  // namespace p4all::compiler
