// P4-16 export.
//
// The paper's prototype hands its concrete, unrolled program to the
// (black-box) Tofino P4 compiler as P4_16 source. generate_p4() in
// codegen.hpp emits this repository's own dialect (reparsed by our tests);
// this module renders the same compiled layout as a self-contained P4_16
// translation unit against the v1model architecture: header/metadata
// structs, register extern instantiations sized per the layout, one action
// per placed instance with @stage annotations, and an ingress control whose
// apply block sequences the stages.
//
// The output aims for the P4_16 core grammar; target-specific externs
// (hash algorithms, register read/write signatures) follow v1model
// conventions and are documented inline.
#pragma once

#include <string>

#include "compiler/layout.hpp"

namespace p4all::compiler {

/// Renders `layout` as a P4_16 (v1model) translation unit.
[[nodiscard]] std::string generate_p4_16(const ir::Program& prog, const Layout& layout);

}  // namespace p4all::compiler
