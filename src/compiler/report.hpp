// Resource-occupancy reporting for compiled layouts.
//
// Production P4 toolchains ship visualization of per-stage resource usage;
// this module computes the same accounting for a compiled Layout — memory,
// stateful/stateless ALUs, and hash units per stage, plus the PHV budget —
// and renders it as a table. Exposed as `p4allc --report`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/layout.hpp"

namespace p4all::compiler {

/// Resource usage of one pipeline stage.
struct StageUsage {
    std::int64_t memory_bits = 0;
    int stateful_alus = 0;
    int stateless_alus = 0;
    int hash_units = 0;
    int actions = 0;
    int register_rows = 0;
};

/// Whole-pipeline accounting.
struct UsageReport {
    std::vector<StageUsage> stages;  // one per target stage
    int phv_bits = 0;                // fixed + placed elastic chunks
    /// Peak concurrent PHV if fields were reclaimed after their last use —
    /// the paper's §4.4 "PHV reuse" future-work optimization, computed here
    /// as a live-range analysis over the placed stages. Always ≤ phv_bits.
    int phv_bits_with_reuse = 0;
    int stages_occupied = 0;

    /// Totals across stages.
    [[nodiscard]] std::int64_t total_memory_bits() const noexcept;
    [[nodiscard]] int total_actions() const noexcept;
};

/// Computes the usage of `layout` under `target`'s cost model.
[[nodiscard]] UsageReport compute_usage(const ir::Program& prog,
                                        const target::TargetSpec& target, const Layout& layout);

/// Renders the report as a fixed-width table with percentage-of-limit
/// columns and a utilization bar per stage.
[[nodiscard]] std::string render_usage(const UsageReport& report,
                                       const target::TargetSpec& target);

}  // namespace p4all::compiler
