// The end-to-end P4All compiler driver (Figure 8).
//
//   P4All source ──parse──▶ AST ──elaborate──▶ IR
//       ──unroll bounds (§4.2)──▶ U_v
//       ──generate ILP (§4.3, Figure 10)──▶ MILP
//       ──branch & bound──▶ optimal symbolic assignment + stage mapping
//       ──codegen──▶ concrete P4 + Layout
//
// The driver also records the statistics reported in the paper's Figure 11
// (compile time, ILP variable/constraint counts).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "analysis/unroll.hpp"
#include "compiler/artifacts.hpp"
#include "compiler/ilpgen.hpp"
#include "compiler/layout.hpp"
#include "ilp/solver.hpp"
#include "ir/elaborate.hpp"
#include "target/spec.hpp"

namespace p4all::compiler {

enum class Backend {
    Ilp,         // exact: Figure 10 MILP via branch-and-bound
    Greedy,      // heuristic: list scheduling + element stretching
    Exhaustive,  // reference: full integer enumeration (tiny models only)
};

struct CompileOptions {
    target::TargetSpec target = target::tofino_like();
    analysis::UnrollOptions unroll;
    ilp::SolveOptions solve;
    IlpGenOptions ilpgen;
    Backend backend = Backend::Ilp;
    /// Whole-pipeline cooperative cutoff: merged into the solve deadline and
    /// also checked by the greedy backend and codegen, so every phase — not
    /// just the MILP search — honors a caller's budget or cancel request.
    support::Deadline deadline;
    /// Combination cap for Backend::Exhaustive; larger domains yield a
    /// structured DomainTooLarge failure (the portfolio driver's cue to skip).
    std::int64_t exhaustive_max_combinations = 4096;
    /// Post-solve audit of the layout against every constraint; failures
    /// throw (they would indicate a compiler bug, not a user error).
    bool audit = true;
    /// Record CompileArtifacts in the result for the independent audit layer
    /// (src/audit/). Cheap relative to solving; on by default so `--audit`
    /// and the p4all-audit CLI always have a certificate to check.
    bool emit_artifacts = true;
    /// IR optimization level: 0 compiles the elaborated IR as-is, 1 (the
    /// default) runs the certificate-carrying optimizer (src/opt/) between
    /// elaboration and layout generation. The certificate chain rides in
    /// the artifacts and is replayed by the rewrite-validity audit pass.
    int opt_level = 1;
};

struct CompileStats {
    std::vector<std::int64_t> unroll_bounds;  // indexed by SymbolId
    int ilp_vars = 0;
    int ilp_constraints = 0;
    std::int64_t bb_nodes = 0;
    std::int64_t lp_iterations = 0;
    double elaborate_seconds = 0.0;
    double opt_seconds = 0.0;
    double bounds_seconds = 0.0;
    double ilpgen_seconds = 0.0;
    double solve_seconds = 0.0;
    double total_seconds = 0.0;
};

struct CompileResult {
    ir::Program program;     // elaborated IR (bindings index into its symbols)
    Layout layout;
    double utility = 0.0;    // achieved value of the optimize expression
    std::string p4_source;   // generated concrete P4
    CompileStats stats;
    /// The compiler's auditable claims (model, incumbent, certificate, usage);
    /// null when CompileOptions::emit_artifacts is off. Shared so callers can
    /// keep it alive past the result (the audit passes borrow it).
    std::shared_ptr<const CompileArtifacts> artifacts;
    /// Fallback-portfolio account; empty unless compile_resilient produced
    /// this result (compiler/resilient.hpp).
    ResilienceReport resilience;
};

/// Compiles a parsed P4All program. Throws support::CompileError when the
/// program is malformed or cannot fit the target at any size satisfying its
/// assume constraints.
[[nodiscard]] CompileResult compile(const lang::Program& ast, const CompileOptions& options = {},
                                    const std::string& name = "program");

/// Parses and compiles source text.
[[nodiscard]] CompileResult compile_source(std::string_view source,
                                           const CompileOptions& options = {},
                                           const std::string& name = "program");

}  // namespace p4all::compiler
