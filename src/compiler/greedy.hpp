// Heuristic placement backend: dependency-ordered first-fit list scheduling
// with post-placement element stretching.
//
// Not guaranteed optimal — it exists (a) as a fast fallback for models too
// large for exact branch-and-bound, and (b) as an independent implementation
// to cross-check the ILP backend (tests assert the ILP's utility is ≥ the
// greedy's, and both layouts audit clean).
#pragma once

#include <optional>

#include "compiler/layout.hpp"
#include "support/deadline.hpp"

namespace p4all::compiler {

struct GreedyResult {
    Layout layout;
    double utility = 0.0;
};

/// Attempts a feasible layout with iteration counts starting at `bounds`
/// and shrinking until the schedule fits; element counts are then stretched
/// into the remaining per-stage memory. Returns nullopt if no feasible
/// assignment exists even at minimum sizes. The deadline is polled between
/// attempts: on expiry the search stops and returns the best layout found so
/// far (or nullopt if none yet).
[[nodiscard]] std::optional<GreedyResult> greedy_place(
    const ir::Program& prog, const target::TargetSpec& target,
    const std::vector<std::int64_t>& bounds, const support::Deadline& deadline = {});

}  // namespace p4all::compiler
