// Resilient compilation driver: runs a configurable fallback portfolio
// until one backend produces an accepted layout or the portfolio is
// exhausted.
//
//   1. ilp-sparse   branch-and-bound over the sparse revised simplex with
//                   the deterministic parallel best-first engine — the fast
//                   path, first choice; anytime like every ILP rung.
//   2. ilp          the dense-tableau serial engine. Slower but maximally
//                   battle-tested; catches the (rare) instance where the
//                   sparse factorization hits numerical trouble.
//   3. ilp-bland    restart with Bland's rule forced from iteration 0 and a
//                   perturbed (logged, reproducible) cost tilt; tried only
//                   after numerical trouble or an audit rejection, where a
//                   different pivot path may sidestep the breakdown.
//   4. greedy       heuristic list scheduling — fast, never optimal-claiming.
//   5. exhaustive   full integer enumeration, tiny models only (guarded by a
//                   combination cap).
//
// Every attempt is audited (the compiler's built-in audit_layout plus an
// optional external gate such as audit::make_resilience_gate()) before
// acceptance; a rejected layout falls through to the next backend. The
// driver never lets a raw exception escape a backend: each failure is
// recorded as a structured AttemptReport, and total failure raises a
// ResilientError carrying the full ResilienceReport.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "compiler/compiler.hpp"
#include "compiler/resilience.hpp"
#include "support/deadline.hpp"

namespace p4all::compiler {

struct ResilienceOptions {
    /// Wall-clock budget for the whole portfolio. The driver grants later
    /// backends a bounded grace period past it (anytime semantics: a cheap
    /// fallback may still rescue a compile whose exact search timed out), but
    /// total wall time stays within 2x this budget.
    double budget_seconds = 120.0;
    /// Cooperative cancellation, observed by every phase of every attempt.
    support::CancelToken cancel;

    bool try_ilp_sparse = true;
    bool try_ilp = true;
    bool try_ilp_restart = true;
    bool try_greedy = true;
    bool try_exhaustive = true;

    /// Worker threads for the ilp-sparse rung's parallel best-first search
    /// (0 picks the hardware concurrency). Any value produces bit-identical
    /// layouts — see SearchMode::BestFirst.
    int sparse_threads = 0;

    /// Combination cap for the exhaustive backend.
    std::int64_t exhaustive_max_combinations = 4096;
    /// Cost-perturbation seed for the ilp-bland restart; recorded in the
    /// AttemptReport so the restart replays bit-for-bit.
    std::uint64_t restart_perturb_seed = 0x5EEDBA5EULL;

    /// Optional external acceptance gate run over each successful attempt's
    /// artifacts (e.g. audit::make_resilience_gate(), which runs the five
    /// independent audit passes). Returns an empty string to accept, or a
    /// rejection message; rejection falls through to the next backend. The
    /// driver cannot call the audit layer directly (it links the other way),
    /// hence the injection point.
    std::function<std::string(const ir::Program&, const CompileArtifacts&)> external_gate;
};

/// Total-failure result: every enabled backend failed or was rejected. The
/// code() is the most meaningful failure in the portfolio (Cancelled >
/// Infeasible > AuditRejected > DeadlineExceeded > NoLayoutFound) and
/// `report` holds the per-attempt record.
class ResilientError : public support::Error {
public:
    ResilientError(support::Errc code, const std::string& message, ResilienceReport rep);
    ResilienceReport report;
};

/// Compiles `ast` through the fallback portfolio. On success the result's
/// `resilience` member (also mirrored into the artifacts) records every
/// attempt; on total failure throws ResilientError. Front-end errors
/// (parse/elaboration) are not retried — they throw immediately.
[[nodiscard]] CompileResult compile_resilient(const lang::Program& ast,
                                              const CompileOptions& options = {},
                                              const ResilienceOptions& res = {},
                                              const std::string& name = "program");

/// Parses and compiles source text through the portfolio.
[[nodiscard]] CompileResult compile_resilient_source(std::string_view source,
                                                     const CompileOptions& options = {},
                                                     const ResilienceOptions& res = {},
                                                     const std::string& name = "program");

}  // namespace p4all::compiler
