#include "compiler/report.hpp"

#include <algorithm>
#include <set>

#include "support/strings.hpp"

namespace p4all::compiler {

std::int64_t UsageReport::total_memory_bits() const noexcept {
    std::int64_t total = 0;
    for (const StageUsage& s : stages) total += s.memory_bits;
    return total;
}

int UsageReport::total_actions() const noexcept {
    int total = 0;
    for (const StageUsage& s : stages) total += s.actions;
    return total;
}

UsageReport compute_usage(const ir::Program& prog, const target::TargetSpec& target,
                          const Layout& layout) {
    UsageReport report;
    report.stages.resize(static_cast<std::size_t>(target.stages));
    report.phv_bits = prog.fixed_phv_bits();

    std::set<analysis::MetaChunk> counted_chunks;
    for (std::size_t s = 0; s < layout.stages.size() && s < report.stages.size(); ++s) {
        const StagePlan& plan = layout.stages[s];
        StageUsage& usage = report.stages[s];
        usage.actions = static_cast<int>(plan.actions.size());
        usage.register_rows = static_cast<int>(plan.registers.size());
        for (const PlacedRegister& pr : plan.registers) usage.memory_bits += pr.bits(prog);
        for (const analysis::Instance& inst : plan.actions) {
            const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
            usage.stateful_alus += sum.stateful_alus;
            usage.stateless_alus += sum.stateless_alus;
            usage.hash_units += sum.hash_units;
            for (const auto& [chunk, access] : sum.meta) {
                const ir::MetaField& f = prog.meta(chunk.field);
                if (f.is_array() && f.array->symbolic() &&
                    counted_chunks.insert(chunk).second) {
                    report.phv_bits += f.width;
                }
            }
        }
        if (usage.actions > 0 || usage.register_rows > 0) ++report.stages_occupied;
    }

    // PHV reuse (§4.4 future work): a metadata chunk only needs PHV space
    // between the first stage that touches it and the last. Packet fields
    // are live from stage 0 (parsed) through their last use. The peak of
    // concurrently-live bits over stages is what a reusing compiler would
    // allocate.
    std::map<std::pair<int, std::int64_t>, std::pair<int, int>> live;  // chunk -> [first,last]
    std::map<int, std::pair<int, int>> pkt_live;                       // field -> [0, last]
    for (std::size_t s = 0; s < layout.stages.size(); ++s) {
        for (const analysis::Instance& inst : layout.stages[s].actions) {
            const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
            for (const auto& [chunk, access] : sum.meta) {
                const std::pair<int, std::int64_t> key{chunk.field, chunk.index};
                const auto [it, inserted] =
                    live.emplace(key, std::pair<int, int>{static_cast<int>(s), static_cast<int>(s)});
                if (!inserted) it->second.second = static_cast<int>(s);
            }
            // Packet-field reads extend the field's live range.
            const ir::CallSite& site = prog.flow.at(static_cast<std::size_t>(inst.call));
            const ir::Action& action = prog.action(site.action);
            const auto note_pkt = [&](const ir::Value& v) {
                if (const auto* p = std::get_if<ir::PacketRef>(&v)) {
                    auto [it, inserted] =
                        pkt_live.emplace(p->field, std::pair<int, int>{0, static_cast<int>(s)});
                    if (!inserted) it->second.second = static_cast<int>(s);
                }
            };
            for (const ir::Cond& guard : site.guards) {
                note_pkt(guard.lhs);
                note_pkt(guard.rhs);
            }
            for (const ir::PrimOp& op : action.ops) {
                for (const ir::Value& src : op.srcs) note_pkt(src);
                if (op.reg_index) note_pkt(*op.reg_index);
            }
        }
    }
    const int last_stage = static_cast<int>(layout.stages.size());
    std::vector<int> live_bits(static_cast<std::size_t>(std::max(last_stage, 1)), 0);
    for (const auto& [key, range] : live) {
        const int width = prog.meta(key.first).width;
        for (int s = range.first; s <= range.second && s < last_stage; ++s) {
            live_bits[static_cast<std::size_t>(s)] += width;
        }
    }
    for (const auto& [field, range] : pkt_live) {
        const int width = prog.packet(field).width;
        for (int s = range.first; s <= range.second && s < last_stage; ++s) {
            live_bits[static_cast<std::size_t>(s)] += width;
        }
    }
    report.phv_bits_with_reuse = 0;
    for (const int bits : live_bits) {
        report.phv_bits_with_reuse = std::max(report.phv_bits_with_reuse, bits);
    }
    report.phv_bits_with_reuse = std::min(report.phv_bits_with_reuse, report.phv_bits);
    return report;
}

namespace {
std::string bar(double fraction, int width) {
    const int filled =
        std::clamp(static_cast<int>(fraction * width + 0.5), 0, width);
    return std::string(static_cast<std::size_t>(filled), '#') +
           std::string(static_cast<std::size_t>(width - filled), '.');
}

std::string pct(double num, double den) {
    if (den <= 0) return "  n/a";
    return support::pad_left(support::format_double(100.0 * num / den, 0), 4) + "%";
}
}  // namespace

std::string render_usage(const UsageReport& report, const target::TargetSpec& target) {
    std::string out;
    out += "stage   mem-bits   mem%   sALU   lALU   hash   acts  util\n";
    for (std::size_t s = 0; s < report.stages.size(); ++s) {
        const StageUsage& u = report.stages[s];
        const double mem_frac =
            target.memory_bits > 0
                ? static_cast<double>(u.memory_bits) / static_cast<double>(target.memory_bits)
                : 0.0;
        out += support::pad_left(std::to_string(s), 4);
        out += support::pad_left(std::to_string(u.memory_bits), 11);
        out += support::pad_left(pct(static_cast<double>(u.memory_bits),
                                     static_cast<double>(target.memory_bits)),
                                 7);
        out += support::pad_left(std::to_string(u.stateful_alus) + "/" +
                                     std::to_string(target.stateful_alus),
                                 7);
        out += support::pad_left(std::to_string(u.stateless_alus) + "/" +
                                     std::to_string(target.stateless_alus),
                                 7);
        out += support::pad_left(std::to_string(u.hash_units) + "/" +
                                     std::to_string(target.hash_units),
                                 7);
        out += support::pad_left(std::to_string(u.actions), 7);
        out += "  " + bar(mem_frac, 20) + "\n";
    }
    out += "\nPHV: " + std::to_string(report.phv_bits) + " / " + std::to_string(target.phv_bits) +
           " bits (" +
           support::format_double(
               100.0 * static_cast<double>(report.phv_bits) / target.phv_bits, 1) +
           "%, peak " + std::to_string(report.phv_bits_with_reuse) +
           " with field reuse)   stages occupied: " + std::to_string(report.stages_occupied) +
           " / " + std::to_string(target.stages) + "   total memory: " +
           std::to_string(report.total_memory_bits()) + " bits\n";
    return out;
}

}  // namespace p4all::compiler
