// Auditable compilation artifacts.
//
// Everything the compiler *claims* about a compile, packaged so an
// independent checker (src/audit/) can re-derive each claim from scratch:
// the final layout and symbol bindings, the compiler's own resource
// accounting, and — for the ILP backend — the generated model, the
// incumbent solution, and the root-relaxation dual certificate. The audit
// layer trusts nothing in here beyond "this is what the compiler said";
// every number is re-checked against the elaborated IR and the TargetSpec.
#pragma once

#include <string>
#include <vector>

#include "compiler/ilpgen.hpp"
#include "compiler/layout.hpp"
#include "compiler/report.hpp"
#include "compiler/resilience.hpp"
#include "ilp/solver.hpp"
#include "opt/certificate.hpp"
#include "opt/optimizer.hpp"
#include "target/spec.hpp"
#include "verify/dataflow.hpp"

namespace p4all::compiler {

struct CompileArtifacts {
    std::string name;           // program name
    std::string backend;        // "ilp" or "greedy"
    target::TargetSpec target;  // spec the compile was performed against

    Layout layout;                // final stage map + symbol bindings
    double claimed_utility = 0.0; // compiler's reported objective value
    UsageReport claimed_usage;    // compiler's own per-stage accounting

    /// ILP backend only (has_ilp == false for greedy compiles).
    bool has_ilp = false;
    GeneratedIlp ilp;               // Figure 10 model + variable bookkeeping
    ilp::Solution solution;         // incumbent + root dual certificate
    ilp::SolveOptions solve_options;  // tolerances the solve ran under

    /// How this compile was obtained when the resilient driver produced it
    /// (which backends were tried, why each stopped); empty otherwise.
    ResilienceReport resilience;

    /// Register-bounds proof facts derived against `layout` (one per static
    /// register access). The audit re-derives them; sim::Pipeline consumes
    /// proved facts to elide per-packet bounds checks.
    std::vector<verify::ProofFact> proofs;

    /// Optimizer provenance. When `optimized` is set, `pre_opt_program` is
    /// the elaborated IR before any rewrite and `rewrites` the certificate
    /// chain that produced the compiled program; the rewrite-validity audit
    /// pass replays the chain and rejects on any break. An -O0 compile has
    /// optimized == false and an empty chain.
    int opt_level = 0;
    bool optimized = false;
    ir::Program pre_opt_program;
    std::vector<opt::RewriteCertificate> rewrites;

    /// One-paragraph human-readable description (for p4all-audit -v).
    [[nodiscard]] std::string summary() const;
};

/// The concrete dataplane view of a finished layout: stage-major placed
/// action instances plus each placed register row's element count — the
/// input the verify dataflow engine proves bounds against.
[[nodiscard]] verify::DataplaneView dataplane_view(const ir::Program& prog,
                                                   const Layout& layout);

/// Transplants a layout computed for the *unoptimized* program onto the
/// optimized one: placed action instances of removed calls and rows of
/// removed registers are dropped, surviving ids are renumbered through the
/// OptResult maps, and the symbol bindings carry over unchanged (the
/// optimizer never touches symbols). Differential tests use this to run the
/// optimized and unoptimized pipelines over the identical physical layout.
[[nodiscard]] Layout remap_layout_for_optimized(const Layout& layout,
                                                const opt::OptResult& opt);

}  // namespace p4all::compiler
