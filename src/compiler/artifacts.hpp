// Auditable compilation artifacts.
//
// Everything the compiler *claims* about a compile, packaged so an
// independent checker (src/audit/) can re-derive each claim from scratch:
// the final layout and symbol bindings, the compiler's own resource
// accounting, and — for the ILP backend — the generated model, the
// incumbent solution, and the root-relaxation dual certificate. The audit
// layer trusts nothing in here beyond "this is what the compiler said";
// every number is re-checked against the elaborated IR and the TargetSpec.
#pragma once

#include <string>

#include "compiler/ilpgen.hpp"
#include "compiler/layout.hpp"
#include "compiler/report.hpp"
#include "compiler/resilience.hpp"
#include "ilp/solver.hpp"
#include "target/spec.hpp"

namespace p4all::compiler {

struct CompileArtifacts {
    std::string name;           // program name
    std::string backend;        // "ilp" or "greedy"
    target::TargetSpec target;  // spec the compile was performed against

    Layout layout;                // final stage map + symbol bindings
    double claimed_utility = 0.0; // compiler's reported objective value
    UsageReport claimed_usage;    // compiler's own per-stage accounting

    /// ILP backend only (has_ilp == false for greedy compiles).
    bool has_ilp = false;
    GeneratedIlp ilp;               // Figure 10 model + variable bookkeeping
    ilp::Solution solution;         // incumbent + root dual certificate
    ilp::SolveOptions solve_options;  // tolerances the solve ran under

    /// How this compile was obtained when the resilient driver produced it
    /// (which backends were tried, why each stopped); empty otherwise.
    ResilienceReport resilience;

    /// One-paragraph human-readable description (for p4all-audit -v).
    [[nodiscard]] std::string summary() const;
};

}  // namespace p4all::compiler
