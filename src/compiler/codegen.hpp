// Code generation: renders the compiled layout as a concrete P4 program.
//
// The emitted program is loop-free and fully sized: symbolic metadata
// arrays are flattened to scalar fields (count_0, count_1, ...), register
// matrices become one register array per placed row with literal sizes,
// and each action template is instantiated once per placed iteration. The
// output is valid input to this compiler's own frontend (it simply uses no
// elastic features), which the tests exploit for round-trip checking —
// and it is the "hand-written P4" analogue counted in the Figure 11 table.
#pragma once

#include <string>

#include "compiler/layout.hpp"
#include "support/deadline.hpp"

namespace p4all::compiler {

/// Renders `layout` as concrete P4 source. Stage assignments are emitted as
/// comments (`// stage k`) above each action invocation. The deadline is
/// polled per stage; expiry raises support::Error with code DeadlineExceeded
/// (or Cancelled) rather than emitting a truncated program.
[[nodiscard]] std::string generate_p4(const ir::Program& prog, const Layout& layout,
                                      const support::Deadline& deadline = {});

}  // namespace p4all::compiler
