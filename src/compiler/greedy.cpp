#include "compiler/greedy.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "analysis/unroll.hpp"

namespace p4all::compiler {

using analysis::DepGraph;
using analysis::Instance;

namespace {

/// Groups symbols tied together by `assume a == b` constraints (polynomial
/// form ±(a − b) = 0). Snapshot/level uniformity in composed applications is
/// expressed this way; greedy must move tied symbols in lockstep or its
/// layouts fail the audit.
std::vector<std::vector<ir::SymbolId>> equality_groups(const ir::Program& prog) {
    std::vector<int> parent(prog.symbols.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
    const auto find = [&](int x) {
        while (parent[static_cast<std::size_t>(x)] != x) {
            x = parent[static_cast<std::size_t>(x)] =
                parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
        }
        return x;
    };
    for (const ir::PolyConstraint& pc : prog.assumes) {
        if (pc.op != ir::CmpOp::Eq) continue;
        const auto& terms = pc.poly.terms();
        if (terms.size() != 2) continue;
        const bool tie = terms[0].degree() == 1 && terms[1].degree() == 1 &&
                         terms[0].coeff == -terms[1].coeff && std::abs(terms[0].coeff) == 1.0;
        if (tie) parent[static_cast<std::size_t>(find(terms[0].a))] = find(terms[1].a);
    }
    std::map<int, std::vector<ir::SymbolId>> groups;
    for (std::size_t i = 0; i < prog.symbols.size(); ++i) {
        groups[find(static_cast<int>(i))].push_back(static_cast<ir::SymbolId>(i));
    }
    std::vector<std::vector<ir::SymbolId>> out;
    out.reserve(groups.size());
    for (auto& [root, members] : groups) out.push_back(std::move(members));
    return out;
}

/// One scheduling attempt at fixed iteration counts. Fills `layout` with
/// action placements (registers at minimum size) or returns false.
bool try_schedule(const ir::Program& prog, const target::TargetSpec& target,
                  const std::vector<std::int64_t>& k, Layout& layout) {
    const DepGraph g = analysis::build_dep_graph(prog, target, analysis::instantiate_all(prog, k));
    if (g.infeasible) return false;
    const int n = g.node_count();
    const int S = target.stages;

    // Node costs and register rows.
    std::vector<int> stateful(static_cast<std::size_t>(n), 0);
    std::vector<int> stateless(static_cast<std::size_t>(n), 0);
    std::vector<int> hash(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<analysis::RegChunk>> rows(static_cast<std::size_t>(n));
    std::vector<std::int64_t> min_bits(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < g.instances.size(); ++i) {
        const analysis::AccessSummary s = summarize(prog, target, g.instances[i]);
        const std::size_t node = static_cast<std::size_t>(g.node_of[i]);
        stateful[node] += s.stateful_alus;
        stateless[node] += s.stateless_alus;
        hash[node] += s.hash_units;
        for (const analysis::RegChunk& rc : s.regs) {
            if (std::find(rows[node].begin(), rows[node].end(), rc) == rows[node].end()) {
                rows[node].push_back(rc);
                const ir::RegisterArray& r = prog.reg(rc.reg);
                std::int64_t elems = 1;
                if (r.elems.symbolic()) {
                    if (const auto lb = analysis::assume_lower_bound(prog, r.elems.sym)) {
                        elems = std::max<std::int64_t>(1, *lb);
                    }
                } else {
                    elems = r.elems.literal;
                }
                min_bits[node] += elems * r.width;
            }
        }
    }

    // Topological order over Before edges, program order as tie-break.
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    for (const auto& [a, b] : g.before) {
        succ[static_cast<std::size_t>(a)].push_back(b);
        ++indeg[static_cast<std::size_t>(b)];
    }
    std::vector<int> order;
    std::set<int> ready;
    for (int v = 0; v < n; ++v) {
        if (indeg[static_cast<std::size_t>(v)] == 0) ready.insert(v);
    }
    while (!ready.empty()) {
        const int v = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(v);
        for (const int t : succ[static_cast<std::size_t>(v)]) {
            if (--indeg[static_cast<std::size_t>(t)] == 0) ready.insert(t);
        }
    }
    if (static_cast<int>(order.size()) != n) return false;  // cyclic

    std::vector<int> stage_of(static_cast<std::size_t>(n), -1);
    std::vector<int> used_f(static_cast<std::size_t>(S), 0);
    std::vector<int> used_l(static_cast<std::size_t>(S), 0);
    std::vector<int> used_h(static_cast<std::size_t>(S), 0);
    std::vector<std::int64_t> used_m(static_cast<std::size_t>(S), 0);

    for (const int v : order) {
        int min_stage = 0;
        for (const auto& [a, b] : g.before) {
            if (b == v && stage_of[static_cast<std::size_t>(a)] >= 0) {
                min_stage = std::max(min_stage, stage_of[static_cast<std::size_t>(a)] + 1);
            }
        }
        for (const auto& [a, b] : g.not_after) {
            if (b == v && stage_of[static_cast<std::size_t>(a)] >= 0) {
                min_stage = std::max(min_stage, stage_of[static_cast<std::size_t>(a)]);
            }
        }
        const std::size_t vi = static_cast<std::size_t>(v);
        // Register-owning nodes prefer the emptiest feasible stage (their
        // arrays will be stretched into leftover memory later); pure-compute
        // nodes take the earliest to keep dependency slack.
        const bool wants_memory = !rows[vi].empty();
        int chosen = -1;
        for (int s = min_stage; s < S; ++s) {
            const std::size_t si = static_cast<std::size_t>(s);
            if (used_f[si] + stateful[vi] > target.stateful_alus) continue;
            if (used_l[si] + stateless[vi] > target.stateless_alus) continue;
            if (used_h[si] + hash[vi] > target.hash_units) continue;
            if (used_m[si] + min_bits[vi] > target.memory_bits) continue;
            bool excluded = false;
            for (const auto& [a, b] : g.exclusive) {
                const int other = a == v ? b : (b == v ? a : -1);
                if (other >= 0 && stage_of[static_cast<std::size_t>(other)] == s) {
                    excluded = true;
                    break;
                }
            }
            if (excluded) continue;
            if (!wants_memory) {
                chosen = s;
                break;
            }
            if (chosen < 0 || used_m[static_cast<std::size_t>(s)] <
                                  used_m[static_cast<std::size_t>(chosen)]) {
                chosen = s;
            }
        }
        if (chosen < 0) return false;
        stage_of[vi] = chosen;
        const std::size_t ci = static_cast<std::size_t>(chosen);
        used_f[ci] += stateful[vi];
        used_l[ci] += stateless[vi];
        used_h[ci] += hash[vi];
        used_m[ci] += min_bits[vi];
    }

    layout.stages.assign(static_cast<std::size_t>(S), {});
    for (std::size_t i = 0; i < g.instances.size(); ++i) {
        const int s = stage_of[static_cast<std::size_t>(g.node_of[i])];
        layout.stages[static_cast<std::size_t>(s)].actions.push_back(g.instances[i]);
    }
    for (int v = 0; v < n; ++v) {
        const int s = stage_of[static_cast<std::size_t>(v)];
        for (const analysis::RegChunk& rc : rows[static_cast<std::size_t>(v)]) {
            const ir::RegisterArray& r = prog.reg(rc.reg);
            std::int64_t elems = 1;
            if (r.elems.symbolic()) {
                if (const auto lb = analysis::assume_lower_bound(prog, r.elems.sym)) {
                    elems = std::max<std::int64_t>(1, *lb);
                }
            } else {
                elems = r.elems.literal;
            }
            layout.stages[static_cast<std::size_t>(s)].registers.push_back(
                {rc.reg, rc.instance, elems});
        }
    }
    for (StagePlan& plan : layout.stages) std::sort(plan.actions.begin(), plan.actions.end());
    return true;
}

/// Grows element-count symbols into leftover per-stage memory: for each
/// equality-tied group of element symbols, the shared binding is the
/// largest uniform size that keeps every stage within budget (respecting
/// assume bounds).
void stretch_elements(const ir::Program& prog, const target::TargetSpec& target, Layout& layout,
                      const std::vector<std::vector<ir::SymbolId>>& groups) {
    for (const std::vector<ir::SymbolId>& group : groups) {
        std::vector<ir::SymbolId> elems_syms;
        for (const ir::SymbolId s : group) {
            if (prog.symbol(s).role == ir::SymbolRole::ElementCount) elems_syms.push_back(s);
        }
        if (elems_syms.empty()) continue;

        std::int64_t lo = 1;
        std::int64_t hi = target.memory_bits;
        for (const ir::SymbolId ws : elems_syms) {
            if (const auto lb = analysis::assume_lower_bound(prog, ws)) {
                lo = std::max(lo, std::max<std::int64_t>(1, *lb));
            }
            if (const auto ub = analysis::assume_upper_bound(prog, ws)) hi = std::min(hi, *ub);
            for (const ir::RegisterArray& r : prog.registers) {
                if (r.elems.symbolic() && r.elems.sym == ws) {
                    hi = std::min(hi, target.memory_bits / r.width);
                }
            }
        }
        const auto in_group = [&](const ir::RegisterArray& r) {
            return r.elems.symbolic() &&
                   std::find(elems_syms.begin(), elems_syms.end(), r.elems.sym) !=
                       elems_syms.end();
        };
        const auto fits = [&](std::int64_t candidate) {
            for (const StagePlan& plan : layout.stages) {
                std::int64_t bits = 0;
                for (const PlacedRegister& pr : plan.registers) {
                    const ir::RegisterArray& r = prog.reg(pr.reg);
                    bits += (in_group(r) ? candidate : pr.elems) * r.width;
                }
                if (bits > target.memory_bits) return false;
            }
            return true;
        };
        if (!fits(lo)) {
            // Audit will flag the layout; the caller shrinks and retries.
            for (const ir::SymbolId ws : elems_syms) {
                layout.bindings[static_cast<std::size_t>(ws)] = lo;
            }
            continue;
        }
        while (lo < hi) {
            const std::int64_t mid = lo + (hi - lo + 1) / 2;
            if (fits(mid)) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        for (const ir::SymbolId ws : elems_syms) {
            layout.bindings[static_cast<std::size_t>(ws)] = lo;
        }
        for (StagePlan& plan : layout.stages) {
            for (PlacedRegister& pr : plan.registers) {
                if (in_group(prog.reg(pr.reg))) pr.elems = lo;
            }
        }
    }
}

}  // namespace

std::optional<GreedyResult> greedy_place(const ir::Program& prog,
                                         const target::TargetSpec& target,
                                         const std::vector<std::int64_t>& bounds,
                                         const support::Deadline& deadline) {
    const std::vector<std::vector<ir::SymbolId>> groups = equality_groups(prog);
    std::vector<std::int64_t> k = bounds;
    std::vector<std::int64_t> k_min(prog.symbols.size(), 0);
    for (const ir::SymbolId v : prog.iteration_symbols()) {
        if (const auto lb = analysis::assume_lower_bound(prog, v)) {
            k_min[static_cast<std::size_t>(v)] = std::max<std::int64_t>(0, *lb);
        }
        k[static_cast<std::size_t>(v)] =
            std::max(k[static_cast<std::size_t>(v)], k_min[static_cast<std::size_t>(v)]);
    }
    // Equality-tied iteration counts move in lockstep: start each group at
    // its common minimum of the members' caps.
    for (const std::vector<ir::SymbolId>& group : groups) {
        std::int64_t shared = -1;
        for (const ir::SymbolId s : group) {
            if (prog.symbol(s).role != ir::SymbolRole::IterationCount) continue;
            const std::int64_t kv = k[static_cast<std::size_t>(s)];
            shared = shared < 0 ? kv : std::min(shared, kv);
        }
        if (shared < 0) continue;
        for (const ir::SymbolId s : group) {
            if (prog.symbol(s).role == ir::SymbolRole::IterationCount) {
                k[static_cast<std::size_t>(s)] = shared;
            }
        }
    }

    // One attempt at fixed iteration counts: schedule, stretch elements,
    // audit, and record the best utility seen.
    std::optional<GreedyResult> best;
    const auto attempt = [&](const std::vector<std::int64_t>& counts) {
        Layout layout;
        layout.bindings.assign(prog.symbols.size(), 0);
        if (!try_schedule(prog, target, counts, layout)) return;
        for (const ir::SymbolId v : prog.iteration_symbols()) {
            layout.bindings[static_cast<std::size_t>(v)] = counts[static_cast<std::size_t>(v)];
        }
        stretch_elements(prog, target, layout, groups);
        if (!audit_layout(prog, target, layout).empty()) return;
        const double utility = prog.utility.evaluate(layout.bindings);
        if (!best || utility > best->utility) {
            best = GreedyResult{std::move(layout), utility};
        }
    };

    // Iteration-count groups and their ranges. With a small combination
    // space we enumerate every grid point (robust against coupled
    // constraints like minimum-memory assumes, where plain shrinking walks
    // away from feasibility); otherwise fall back to monotone shrinking.
    std::vector<std::vector<ir::SymbolId>> iter_groups;
    std::int64_t combos = 1;
    for (const std::vector<ir::SymbolId>& group : groups) {
        std::vector<ir::SymbolId> iters;
        for (const ir::SymbolId s : group) {
            if (prog.symbol(s).role == ir::SymbolRole::IterationCount) iters.push_back(s);
        }
        if (iters.empty()) continue;
        const std::size_t rep = static_cast<std::size_t>(iters.front());
        combos *= std::max<std::int64_t>(k[rep] - k_min[rep] + 1, 1);
        iter_groups.push_back(std::move(iters));
    }

    if (combos <= 256) {
        std::vector<std::int64_t> counts = k;
        bool stopped = false;
        const std::function<void(std::size_t)> enumerate = [&](std::size_t depth) {
            if (stopped) return;
            if (depth == iter_groups.size()) {
                // Poll between attempts (each is a full schedule + stretch +
                // audit); on expiry keep whatever best layout exists so far.
                if (deadline.expired()) {
                    stopped = true;
                    return;
                }
                attempt(counts);
                return;
            }
            const std::vector<ir::SymbolId>& iters = iter_groups[depth];
            const std::size_t rep = static_cast<std::size_t>(iters.front());
            for (std::int64_t v = k[rep]; v >= k_min[rep] && !stopped; --v) {
                for (const ir::SymbolId s : iters) counts[static_cast<std::size_t>(s)] = v;
                enumerate(depth + 1);
            }
        };
        enumerate(0);
        return best;
    }

    while (true) {
        if (deadline.expired()) return best;
        attempt(k);
        if (best) return best;
        // Shrink the largest shrinkable iteration-count group and retry.
        const std::vector<ir::SymbolId>* victim = nullptr;
        std::int64_t victim_k = -1;
        for (const std::vector<ir::SymbolId>& group : iter_groups) {
            bool shrinkable = false;
            std::int64_t group_k = -1;
            for (const ir::SymbolId s : group) {
                const std::size_t si = static_cast<std::size_t>(s);
                group_k = std::max(group_k, k[si]);
                shrinkable = shrinkable || k[si] > k_min[si];
            }
            if (group_k < 0 || !shrinkable) continue;
            if (victim == nullptr || group_k > victim_k) {
                victim = &group;
                victim_k = group_k;
            }
        }
        if (victim == nullptr) return std::nullopt;
        for (const ir::SymbolId s : *victim) {
            const std::size_t si = static_cast<std::size_t>(s);
            if (k[si] > k_min[si]) --k[si];
        }
    }
}

}  // namespace p4all::compiler
