// The compiled data-plane layout: which action instances and register rows
// land in which pipeline stage, and the concrete value of every symbolic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/depgraph.hpp"
#include "ir/program.hpp"
#include "target/spec.hpp"

namespace p4all::compiler {

/// One register row placed in a stage, with its concrete element count.
struct PlacedRegister {
    ir::RegisterId reg = ir::kNoId;
    std::int64_t instance = 0;
    std::int64_t elems = 0;

    [[nodiscard]] std::int64_t bits(const ir::Program& prog) const {
        return elems * prog.reg(reg).width;
    }
};

/// The plan for one pipeline stage.
struct StagePlan {
    std::vector<analysis::Instance> actions;
    std::vector<PlacedRegister> registers;
};

/// A complete layout plus the symbolic-value assignment that produced it.
struct Layout {
    std::vector<StagePlan> stages;   // size == target stages
    ir::Assignment bindings;         // indexed by SymbolId

    [[nodiscard]] std::int64_t binding(ir::SymbolId s) const {
        return bindings.at(static_cast<std::size_t>(s));
    }

    /// Elements of a register row as placed (0 if the row is absent).
    [[nodiscard]] std::int64_t register_elems(ir::RegisterId reg, std::int64_t instance) const;

    /// Stage holding the given instance, or -1.
    [[nodiscard]] int stage_of(const analysis::Instance& inst) const;

    /// Total placed instances across stages.
    [[nodiscard]] std::size_t total_actions() const;

    /// Human-readable per-stage table (the Figure 7 rendering).
    [[nodiscard]] std::string to_string(const ir::Program& prog) const;
};

/// Audits `layout` against the target's per-stage limits and the program's
/// dependence structure; returns a list of violations (empty ⇒ valid).
/// Used by tests and by the driver as a post-solve sanity check.
[[nodiscard]] std::vector<std::string> audit_layout(const ir::Program& prog,
                                                    const target::TargetSpec& target,
                                                    const Layout& layout);

}  // namespace p4all::compiler
