#include "compiler/resilient.hpp"

#include <chrono>
#include <utility>

#include "ir/elaborate.hpp"
#include "lang/parser.hpp"

namespace p4all::compiler {

using support::Errc;

ResilientError::ResilientError(Errc code, const std::string& message, ResilienceReport rep)
    : support::Error(code, message), report(std::move(rep)) {}

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

AttemptOutcome classify(Errc code) {
    switch (code) {
        case Errc::DeadlineExceeded: return AttemptOutcome::Timeout;
        case Errc::Cancelled: return AttemptOutcome::Cancelled;
        case Errc::Infeasible: return AttemptOutcome::Infeasible;
        case Errc::NumericalTrouble: return AttemptOutcome::NumericalTrouble;
        case Errc::AuditRejected: return AttemptOutcome::AuditRejected;
        default: return AttemptOutcome::Error;
    }
}

}  // namespace

CompileResult compile_resilient(const lang::Program& ast, const CompileOptions& base,
                                const ResilienceOptions& res, const std::string& name) {
    const auto t_start = Clock::now();
    // `overall` is the nominal budget; `hard` is the absolute stop the
    // acceptance criteria promise (grace for fallbacks, but never more than
    // 2x the budget including codegen).
    const support::Deadline overall =
        support::Deadline::after_seconds(res.budget_seconds, res.cancel);
    const support::Deadline hard =
        support::Deadline::after_seconds(1.8 * res.budget_seconds, res.cancel);

    // Front-end errors (parse already happened; elaboration) are definitive —
    // no backend can fix a malformed program, so they propagate unretried.
    {
        ir::ElaborateOptions eo;
        eo.program_name = name;
        (void)ir::elaborate(ast, eo);
    }

    ResilienceReport report;
    report.budget_seconds = res.budget_seconds;

    CompileResult out;
    bool accepted = false;

    // Runs one backend attempt; returns true when its layout was accepted.
    const auto run_attempt = [&](const std::string& backend, const CompileOptions& opts,
                                 std::uint64_t seed) -> bool {
        AttemptReport a;
        a.backend = backend;
        a.perturb_seed = seed;
        const auto t0 = Clock::now();
        try {
            CompileResult r = compile(ast, opts, name);
            a.seconds = since(t0);
            a.nodes = r.stats.bb_nodes;
            a.lp_iterations = r.stats.lp_iterations;
            a.anytime = r.artifacts && r.artifacts->has_ilp &&
                        r.artifacts->solution.status != ilp::SolveStatus::Optimal;
            if (res.external_gate && r.artifacts) {
                const std::string rejection = res.external_gate(r.program, *r.artifacts);
                if (!rejection.empty()) {
                    a.outcome = AttemptOutcome::AuditRejected;
                    a.error = Errc::AuditRejected;
                    a.detail = rejection;
                    report.attempts.push_back(std::move(a));
                    return false;
                }
            }
            a.outcome = AttemptOutcome::Success;
            if (a.anytime) a.detail = "anytime incumbent from a truncated search";
            report.final_backend = backend;
            report.anytime = a.anytime;
            report.attempts.push_back(std::move(a));
            out = std::move(r);
            accepted = true;
            return true;
        } catch (const support::Error& e) {
            a.seconds = since(t0);
            a.error = e.code();
            a.detail = e.what();
            a.outcome = classify(e.code());
            report.attempts.push_back(std::move(a));
            return false;
        } catch (const support::CompileError& e) {
            // Legacy unstructured throw from a backend: recorded, not fatal.
            a.seconds = since(t0);
            a.error = Errc::Internal;
            a.detail = e.what();
            a.outcome = AttemptOutcome::Error;
            report.attempts.push_back(std::move(a));
            return false;
        }
    };

    const auto skip = [&](const std::string& backend, const std::string& why) {
        AttemptReport a;
        a.backend = backend;
        a.outcome = AttemptOutcome::Skipped;
        a.detail = why;
        report.attempts.push_back(std::move(a));
    };

    // Every attempt emits artifacts (the gate needs them) and shares the
    // hard pipeline stop so greedy search and codegen stay bounded too.
    CompileOptions common = base;
    common.emit_artifacts = true;
    common.deadline = hard;
    common.exhaustive_max_combinations = res.exhaustive_max_combinations;

    // Did the most recent attempt fail in a way a pivot-path restart could
    // plausibly sidestep?
    bool restart_worthwhile = false;
    const auto note_ilp_failure = [&] {
        const AttemptOutcome last = report.attempts.back().outcome;
        restart_worthwhile = restart_worthwhile ||
                             last == AttemptOutcome::NumericalTrouble ||
                             last == AttemptOutcome::AuditRejected;
    };

    // 1. Sparse revised simplex + deterministic parallel best-first search:
    // the fast path gets the first (and largest) slice of the budget.
    if (res.try_ilp_sparse) {
        if (overall.cancelled()) {
            skip("ilp-sparse", "cancellation requested before start");
        } else {
            CompileOptions o = common;
            o.backend = Backend::Ilp;
            o.solve.lp_backend = ilp::LpBackend::Sparse;
            o.solve.search = ilp::SearchMode::BestFirst;
            o.solve.threads = res.sparse_threads;
            o.solve.deadline =
                o.solve.deadline.merged(overall.tightened(0.5 * res.budget_seconds));
            if (!run_attempt("ilp-sparse", o, o.solve.lp.perturb_seed)) note_ilp_failure();
        }
    }

    // 2. Dense-tableau serial engine: same model, the maximally proven
    // implementation — catches instances where the sparse factorization ran
    // into numerical trouble.
    if (!accepted && res.try_ilp) {
        if (overall.cancelled()) {
            skip("ilp", "cancellation requested");
        } else if (hard.expired()) {
            skip("ilp", "hard stop reached");
        } else {
            CompileOptions o = common;
            o.backend = Backend::Ilp;
            o.solve.deadline =
                o.solve.deadline.merged(overall.tightened(0.35 * res.budget_seconds));
            if (!run_attempt("ilp", o, o.solve.lp.perturb_seed)) note_ilp_failure();
        }
    }

    // 3. ILP restart: Bland's rule from iteration 0, a reseeded cost
    // perturbation, and root cutting planes disabled — a different pivot
    // path around the breakdown with the numerically simplest root
    // relaxation (no separation rounds, no cut rows in the factorization).
    // Only worth paying for when the first solve hit numerical trouble or
    // shipped a layout the audit refused.
    if (!accepted && res.try_ilp_restart) {
        if (overall.cancelled()) {
            skip("ilp-bland", "cancellation requested");
        } else if (!restart_worthwhile) {
            skip("ilp-bland", "restart only follows numerical trouble or audit rejection");
        } else {
            CompileOptions o = common;
            o.backend = Backend::Ilp;
            o.solve.lp.force_bland = true;
            o.solve.lp.perturb_seed = res.restart_perturb_seed;
            o.solve.cuts_enabled = false;
            o.solve.deadline = hard.tightened(0.3 * res.budget_seconds);
            (void)run_attempt("ilp-bland", o, res.restart_perturb_seed);
        }
    }

    // 3b. Optimizer bypass: when an attempt's layout was refused by an audit
    // gate and the compile ran the IR optimizer, retry once at -O0 — a
    // rejected rewrite chain (or an external gate that distrusts it) should
    // not cost the whole compile. No skip record otherwise: the rung only
    // exists after an audit rejection.
    if (!accepted && common.opt_level >= 1) {
        bool saw_audit_rejection = false;
        for (const AttemptReport& a : report.attempts) {
            saw_audit_rejection =
                saw_audit_rejection || a.outcome == AttemptOutcome::AuditRejected;
        }
        if (saw_audit_rejection && !overall.cancelled() && !hard.expired()) {
            CompileOptions o = common;
            o.backend = Backend::Ilp;
            o.opt_level = 0;
            o.solve.deadline = hard.tightened(0.3 * res.budget_seconds);
            (void)run_attempt("ilp-O0", o, o.solve.lp.perturb_seed);
        }
    }

    // 4. Greedy: cheap, audit-checked, never claims optimality.
    if (!accepted && res.try_greedy) {
        if (overall.cancelled()) {
            skip("greedy", "cancellation requested");
        } else if (hard.expired()) {
            skip("greedy", "hard stop reached");
        } else {
            CompileOptions o = common;
            o.backend = Backend::Greedy;
            o.deadline = hard.tightened(0.5 * res.budget_seconds);
            (void)run_attempt("greedy", o, 0);
        }
    }

    // 5. Exhaustive enumeration: tiny models only; the combination cap makes
    // oversized domains a quick structured refusal rather than a blowup.
    if (!accepted && res.try_exhaustive) {
        if (overall.cancelled()) {
            skip("exhaustive", "cancellation requested");
        } else if (hard.expired()) {
            skip("exhaustive", "hard stop reached");
        } else {
            CompileOptions o = common;
            o.backend = Backend::Exhaustive;
            o.solve.deadline = hard.tightened(0.4 * res.budget_seconds);
            (void)run_attempt("exhaustive", o, 0);
        }
    }

    report.total_seconds = since(t_start);

    if (!accepted) {
        // Pick the most meaningful failure for the stable top-level code.
        bool saw_cancel = overall.cancelled();
        bool saw_infeasible = false;
        bool saw_audit = false;
        bool saw_timeout = false;
        for (const AttemptReport& a : report.attempts) {
            saw_cancel = saw_cancel || a.outcome == AttemptOutcome::Cancelled;
            saw_infeasible = saw_infeasible || a.outcome == AttemptOutcome::Infeasible;
            saw_audit = saw_audit || a.outcome == AttemptOutcome::AuditRejected;
            saw_timeout = saw_timeout || a.outcome == AttemptOutcome::Timeout;
        }
        const Errc code = saw_cancel       ? Errc::Cancelled
                          : saw_infeasible ? Errc::Infeasible
                          : saw_audit      ? Errc::AuditRejected
                          : saw_timeout    ? Errc::DeadlineExceeded
                                           : Errc::NoLayoutFound;
        throw ResilientError(code,
                             "resilient compile of '" + name + "' failed after " +
                                 std::to_string(report.attempts.size()) + " attempt(s)\n" +
                                 report.to_string(),
                             std::move(report));
    }

    out.resilience = report;
    if (out.artifacts) {
        // Mirror the portfolio record into the (shared, immutable) artifacts
        // so audits and serialized reports carry the provenance too.
        auto arts = std::make_shared<CompileArtifacts>(*out.artifacts);
        arts->resilience = std::move(report);
        out.artifacts = std::move(arts);
    }
    return out;
}

CompileResult compile_resilient_source(std::string_view source, const CompileOptions& options,
                                       const ResilienceOptions& res, const std::string& name) {
    return compile_resilient(lang::parse(source, name + ".p4all"), options, res, name);
}

}  // namespace p4all::compiler
