#include "compiler/ilpgen.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/unroll.hpp"
#include "support/error.hpp"

namespace p4all::compiler {

using analysis::AccessSummary;
using analysis::DepGraph;
using analysis::Instance;
using ilp::LinExpr;
using ilp::Var;
using ir::kNoId;
using ir::SymbolId;
using support::CompileError;

namespace {

struct NodeCost {
    int stateful = 0;
    int stateless = 0;
    int hash = 0;
};

/// Longest Before-chain depths, giving each node its feasible stage window
/// [earliest, latest]. Weak (NotAfter) edges are ignored — the window is a
/// relaxation, never cutting feasible placements.
void compute_windows(const DepGraph& g, int stages, std::vector<int>& earliest,
                     std::vector<int>& latest) {
    const int n = g.node_count();
    earliest.assign(static_cast<std::size_t>(n), 0);
    latest.assign(static_cast<std::size_t>(n), stages - 1);

    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    std::vector<std::vector<int>> pred(static_cast<std::size_t>(n));
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    for (const auto& [a, b] : g.before) {
        succ[static_cast<std::size_t>(a)].push_back(b);
        pred[static_cast<std::size_t>(b)].push_back(a);
        ++indeg[static_cast<std::size_t>(b)];
    }
    std::vector<int> order;
    std::vector<int> stack;
    std::vector<int> indeg_copy = indeg;
    for (int v = 0; v < n; ++v) {
        if (indeg_copy[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
    }
    while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        order.push_back(v);
        for (const int t : succ[static_cast<std::size_t>(v)]) {
            if (--indeg_copy[static_cast<std::size_t>(t)] == 0) stack.push_back(t);
        }
    }
    for (const int v : order) {
        for (const int t : succ[static_cast<std::size_t>(v)]) {
            earliest[static_cast<std::size_t>(t)] =
                std::max(earliest[static_cast<std::size_t>(t)],
                         earliest[static_cast<std::size_t>(v)] + 1);
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        for (const int t : succ[static_cast<std::size_t>(*it)]) {
            latest[static_cast<std::size_t>(*it)] =
                std::min(latest[static_cast<std::size_t>(*it)],
                         latest[static_cast<std::size_t>(t)] - 1);
        }
    }
}

}  // namespace

GeneratedIlp generate_ilp(const ir::Program& prog, const target::TargetSpec& target,
                          const std::vector<std::int64_t>& bounds, const IlpGenOptions& options) {
    GeneratedIlp gen;
    gen.bounds = bounds;
    gen.graph = analysis::build_dep_graph(prog, target, analysis::instantiate_all(prog, bounds));
    if (gen.graph.infeasible) {
        throw CompileError("program has contradictory dependencies: " +
                           gen.graph.infeasible_reason);
    }
    const DepGraph& g = gen.graph;
    ilp::Model& m = gen.model;
    const int S = target.stages;
    const int n = g.node_count();
    const double bigM = static_cast<double>(target.memory_bits);

    // Instance summaries and per-node aggregates.
    std::vector<AccessSummary> summaries;
    summaries.reserve(g.instances.size());
    for (const Instance& inst : g.instances) summaries.push_back(summarize(prog, target, inst));
    std::vector<NodeCost> cost(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < g.instances.size(); ++i) {
        NodeCost& c = cost[static_cast<std::size_t>(g.node_of[i])];
        c.stateful += summaries[i].stateful_alus;
        c.stateless += summaries[i].stateless_alus;
        c.hash += summaries[i].hash_units;
    }

    // Register-row ownership (row -> node of any instance touching it).
    for (std::size_t i = 0; i < g.instances.size(); ++i) {
        for (const analysis::RegChunk& rc : summaries[i].regs) {
            gen.row_owner.emplace(std::make_pair(rc.reg, rc.instance), g.node_of[i]);
        }
    }

    // Stage windows.
    std::vector<int> earliest;
    std::vector<int> latest;
    if (options.stage_windows) {
        compute_windows(g, S, earliest, latest);
    } else {
        earliest.assign(static_cast<std::size_t>(n), 0);
        latest.assign(static_cast<std::size_t>(n), S - 1);
    }

    // --- x[n,s] -----------------------------------------------------------
    gen.x.assign(static_cast<std::size_t>(n), std::vector<Var>(static_cast<std::size_t>(S)));
    for (int node = 0; node < n; ++node) {
        for (int s = earliest[static_cast<std::size_t>(node)];
             s <= latest[static_cast<std::size_t>(node)]; ++s) {
            const Var xv = m.add_binary(
                "x_n" + std::to_string(node) + "_s" + std::to_string(s));
            m.set_branch_priority(xv, 2);
            gen.x[static_cast<std::size_t>(node)][static_cast<std::size_t>(s)] = xv;
        }
    }
    const auto placed_expr = [&](int node) {
        LinExpr e;
        for (int s = 0; s < S; ++s) {
            const Var v = gen.x[static_cast<std::size_t>(node)][static_cast<std::size_t>(s)];
            if (v.valid()) e.add(v, 1.0);
        }
        return e;
    };
    const auto stage_expr = [&](int node) {
        LinExpr e;
        for (int s = 0; s < S; ++s) {
            const Var v = gen.x[static_cast<std::size_t>(node)][static_cast<std::size_t>(s)];
            if (v.valid() && s > 0) e.add(v, static_cast<double>(s));
        }
        return e;
    };

    // --- y[v,i] and ordering (#16) -----------------------------------------
    for (const SymbolId v : prog.iteration_symbols()) {
        const std::int64_t uv = bounds.at(static_cast<std::size_t>(v));
        for (std::int64_t i = 0; i < uv; ++i) {
            const Var yv = m.add_binary("y_" + prog.symbol(v).name + "_" + std::to_string(i));
            m.set_branch_priority(yv, 4);
            gen.y[{v, i}] = yv;
        }
        for (std::int64_t i = 0; i + 1 < uv; ++i) {
            LinExpr e;
            e.add(gen.y[{v, i + 1}], 1.0).add(gen.y[{v, i}], -1.0);
            m.add_le(std::move(e), 0, "order_" + prog.symbol(v).name + "_" + std::to_string(i));
        }
    }

    // --- conditional / inelastic placement (#7, #15, #17) -------------------
    for (int node = 0; node < n; ++node) {
        std::set<std::pair<SymbolId, std::int64_t>> tied;
        bool inelastic = false;
        for (const int member : g.members[static_cast<std::size_t>(node)]) {
            const Instance& inst = g.instances[static_cast<std::size_t>(member)];
            const ir::CallSite& site = prog.flow[static_cast<std::size_t>(inst.call)];
            if (site.elastic()) {
                tied.insert({site.loop_bound, inst.iter});
            } else {
                inelastic = true;
            }
        }
        if (inelastic) {
            m.add_eq(placed_expr(node), 1, "place_n" + std::to_string(node));
            for (const auto& [v, i] : tied) {
                LinExpr e;
                e.add(gen.y[{v, i}], 1.0);
                m.add_eq(std::move(e), 1);
            }
        } else if (!tied.empty()) {
            for (const auto& [v, i] : tied) {
                LinExpr e = placed_expr(node);
                e.add(gen.y[{v, i}], -1.0);
                m.add_eq(std::move(e), 0,
                         "cond_n" + std::to_string(node) + "_" + prog.symbol(v).name + "_" +
                             std::to_string(i));
            }
        } else {
            m.add_le(placed_expr(node), 1);
        }
    }

    // --- dependence edges (#5, #6) ------------------------------------------
    // Exclusion edges are emitted as clique rows: Σ_{n∈clique} x[n,s] ≤ 1.
    // One row per clique per stage — fewer rows and a tighter relaxation
    // than pairwise constraints.
    for (const std::vector<int>& clique : analysis::exclusion_cliques(g)) {
        for (int s = 0; s < S; ++s) {
            LinExpr e;
            int present = 0;
            for (const int node : clique) {
                const Var xv = gen.x[static_cast<std::size_t>(node)][static_cast<std::size_t>(s)];
                if (xv.valid()) {
                    e.add(xv, 1.0);
                    ++present;
                }
            }
            if (present >= 2) {
                m.add_le(std::move(e), 1, "excl_s" + std::to_string(s));
            }
        }
    }
    const auto add_scaled = [](LinExpr& dst, const LinExpr& src, double scale) {
        for (const auto& [id, c] : src.terms()) dst.add(Var{id}, scale * c);
    };
    const auto add_order_edge = [&](int a, int b, double gap, const char* tag) {
        // stage(b) - stage(a) >= gap - S*(2 - placed(a) - placed(b))
        LinExpr e = stage_expr(b);
        add_scaled(e, stage_expr(a), -1.0);
        add_scaled(e, placed_expr(a), -static_cast<double>(S));
        add_scaled(e, placed_expr(b), -static_cast<double>(S));
        m.add_ge(std::move(e), gap - 2.0 * S,
                 std::string(tag) + "_n" + std::to_string(a) + "_n" + std::to_string(b));
    };
    for (const auto& [a, b] : g.before) add_order_edge(a, b, 1.0, "prec");
    for (const auto& [a, b] : g.not_after) add_order_edge(a, b, 0.0, "war");

    // Symmetry breaking: consecutive iterations of one call site occupy
    // non-decreasing stages (skipped when a real edge already orders them).
    if (options.symmetry_breaking) {
        std::map<std::pair<int, std::int64_t>, int> inst_node;
        for (std::size_t i = 0; i < g.instances.size(); ++i) {
            inst_node[{g.instances[i].call, g.instances[i].iter}] = g.node_of[i];
        }
        std::set<std::pair<int, int>> added;
        for (std::size_t i = 0; i < g.instances.size(); ++i) {
            const Instance& inst = g.instances[i];
            const auto next = inst_node.find({inst.call, inst.iter + 1});
            if (next == inst_node.end()) continue;
            const int a = g.node_of[i];
            const int b = next->second;
            if (a == b) continue;
            if (g.before.count({a, b}) != 0 || g.before.count({b, a}) != 0) continue;
            if (added.insert({a, b}).second) add_order_edge(a, b, 0.0, "sym");
        }
    }

    // --- ALU / hash-unit limits (#11, #12) ----------------------------------
    for (int s = 0; s < S; ++s) {
        LinExpr stateful;
        LinExpr stateless;
        LinExpr hash;
        for (int node = 0; node < n; ++node) {
            const Var xv = gen.x[static_cast<std::size_t>(node)][static_cast<std::size_t>(s)];
            if (!xv.valid()) continue;
            const NodeCost& c = cost[static_cast<std::size_t>(node)];
            if (c.stateful > 0) stateful.add(xv, c.stateful);
            if (c.stateless > 0) stateless.add(xv, c.stateless);
            if (c.hash > 0) hash.add(xv, c.hash);
        }
        if (!stateful.terms().empty()) {
            m.add_le(std::move(stateful), target.stateful_alus, "salu_s" + std::to_string(s));
        }
        if (!stateless.terms().empty()) {
            m.add_le(std::move(stateless), target.stateless_alus, "lalu_s" + std::to_string(s));
        }
        if (!hash.terms().empty()) {
            m.add_le(std::move(hash), target.hash_units, "hash_s" + std::to_string(s));
        }
    }

    // --- element counts, row sizes, memory (#8, #9, #10) ---------------------
    for (std::size_t w = 0; w < prog.symbols.size(); ++w) {
        if (prog.symbols[w].role != ir::SymbolRole::ElementCount) continue;
        const SymbolId ws = static_cast<SymbolId>(w);
        std::int64_t max_elems = target.memory_bits;  // refined below per array
        for (const ir::RegisterArray& r : prog.registers) {
            if (r.elems.symbolic() && r.elems.sym == ws) {
                max_elems = std::min(max_elems, target.memory_bits / r.width);
            }
        }
        if (const auto ub = analysis::assume_upper_bound(prog, ws)) {
            max_elems = std::min(max_elems, *ub);
        }
        std::int64_t min_elems = 1;
        if (const auto lb = analysis::assume_lower_bound(prog, ws)) {
            min_elems = std::max<std::int64_t>(1, *lb);
        }
        if (max_elems < min_elems) {
            throw CompileError("element count '" + prog.symbols[w].name +
                               "' cannot satisfy both its assume bounds and the per-stage "
                               "memory limit");
        }
        const Var ne = m.add_integer("n_" + prog.symbols[w].name,
                                     static_cast<double>(min_elems),
                                     static_cast<double>(max_elems));
        // Branch element counts right after iteration indicators: the LP
        // caps them at fractional memory limits (e.g. M/width = 54687.5),
        // and snapping them down collapses the bound onto the integral
        // optimum, closing placement-symmetric subtrees at once.
        m.set_branch_priority(ne, 3);
        gen.elem_count[ws] = ne;
    }

    // Memory per stage, accumulated while creating me / e vars.
    std::vector<LinExpr> stage_mem(static_cast<std::size_t>(S));
    for (std::size_t ri = 0; ri < prog.registers.size(); ++ri) {
        const ir::RegisterArray& r = prog.registers[ri];
        const ir::RegisterId rid = static_cast<ir::RegisterId>(ri);
        const std::int64_t rows =
            r.instances.symbolic() ? bounds.at(static_cast<std::size_t>(r.instances.sym))
                                   : r.instances.literal;
        for (std::int64_t row = 0; row < rows; ++row) {
            const auto owner_it = gen.row_owner.find({rid, row});
            const int owner = owner_it != gen.row_owner.end() ? owner_it->second : -1;

            if (!r.elems.symbolic()) {
                // Concrete row size: memory is width·elems when placed.
                if (owner < 0) continue;  // dead row, never allocated
                const double bits = static_cast<double>(r.elems.literal * r.width);
                for (int s = 0; s < S; ++s) {
                    const Var xv =
                        gen.x[static_cast<std::size_t>(owner)][static_cast<std::size_t>(s)];
                    if (xv.valid()) stage_mem[static_cast<std::size_t>(s)].add(xv, bits);
                }
                continue;
            }

            const SymbolId ws = r.elems.sym;
            const Var ne = gen.elem_count.at(ws);
            const double ue = m.upper_bound(ne.id);
            const Var e = m.add_continuous(
                "e_" + r.name + "_" + std::to_string(row), 0, ue);
            gen.row_elems[{rid, row}] = e;

            // Gate: y[v,row] for elastic rows, placed(owner) otherwise.
            LinExpr gate;
            if (r.instances.symbolic()) {
                gate.add(gen.y.at({r.instances.sym, row}), 1.0);
            } else if (owner >= 0) {
                gate = placed_expr(owner);
            }
            if (owner < 0) {
                // Dead row: force zero so utility cannot claim free size.
                m.add_le(LinExpr().add(e, 1.0), 0);
                continue;
            }
            // e <= Ue * gate ; e <= n_e ; e >= n_e - Ue*(1 - gate)
            {
                LinExpr c1;
                c1.add(e, 1.0);
                for (const auto& [id, coeff] : gate.terms()) c1.add(Var{id}, -ue * coeff);
                m.add_le(std::move(c1), 0, "ecap_" + r.name + "_" + std::to_string(row));
            }
            {
                LinExpr c2;
                c2.add(e, 1.0).add(ne, -1.0);
                m.add_le(std::move(c2), 0);
            }
            {
                LinExpr c3;
                c3.add(e, 1.0).add(ne, -1.0);
                for (const auto& [id, coeff] : gate.terms()) c3.add(Var{id}, -ue * coeff);
                m.add_ge(std::move(c3), -ue, "esz_" + r.name + "_" + std::to_string(row));
            }

            // Exact distribution: Σ_s me[r,row,s] = width·e, me ≤ M·x[owner,s].
            // Tighter than a big-M lower bound — the LP relaxation cannot
            // claim element count without paying for it in some stage.
            LinExpr distribute;
            for (int s = 0; s < S; ++s) {
                const Var xv =
                    gen.x[static_cast<std::size_t>(owner)][static_cast<std::size_t>(s)];
                if (!xv.valid()) continue;
                const Var me = m.add_continuous(
                    "me_" + r.name + "_" + std::to_string(row) + "_s" + std::to_string(s), 0,
                    bigM);
                LinExpr cap;
                cap.add(me, 1.0).add(xv, -bigM);
                m.add_le(std::move(cap), 0);
                distribute.add(me, 1.0);
                stage_mem[static_cast<std::size_t>(s)].add(me, 1.0);
            }
            distribute.add(e, -static_cast<double>(r.width));
            m.add_eq(std::move(distribute), 0,
                     "medist_" + r.name + "_" + std::to_string(row));
        }
    }
    for (int s = 0; s < S; ++s) {
        LinExpr& e = stage_mem[static_cast<std::size_t>(s)];
        e.normalize();
        if (!e.terms().empty()) {
            m.add_le(std::move(e), static_cast<double>(target.memory_bits),
                     "mem_s" + std::to_string(s));
        }
    }

    // --- PHV (#13, #14) -------------------------------------------------------
    std::map<analysis::MetaChunk, std::set<int>> chunk_nodes;
    for (std::size_t i = 0; i < g.instances.size(); ++i) {
        for (const auto& [chunk, access] : summaries[i].meta) {
            const ir::MetaField& f = prog.meta(chunk.field);
            if (f.is_array() && f.array->symbolic()) {
                chunk_nodes[chunk].insert(g.node_of[i]);
            }
        }
    }
    LinExpr phv;
    for (const auto& [chunk, nodes] : chunk_nodes) {
        const Var d = m.add_binary("d_" + prog.meta(chunk.field).name + "_" +
                                   std::to_string(chunk.index));
        m.set_branch_priority(d, 1);
        gen.d.emplace(chunk, d);
        for (const int node : nodes) {
            LinExpr c = placed_expr(node);
            c.add(d, -1.0);
            m.add_le(std::move(c), 0);
        }
        phv.add(d, static_cast<double>(prog.meta(chunk.field).width));
    }
    if (!phv.terms().empty()) {
        m.add_le(std::move(phv), static_cast<double>(target.phv_bits - prog.fixed_phv_bits()),
                 "phv");
    }

    // --- assume constraints and utility ---------------------------------------
    const auto map_poly = [&](const ir::Polynomial& poly) {
        LinExpr e;
        for (const ir::PolyTerm& t : poly.terms()) {
            if (t.degree() == 0) {
                e.add_constant(t.coeff);
                continue;
            }
            if (t.degree() == 1) {
                const ir::SymbolRole role = prog.symbol(t.a).role;
                if (role == ir::SymbolRole::IterationCount) {
                    const std::int64_t uv = bounds.at(static_cast<std::size_t>(t.a));
                    for (std::int64_t i = 0; i < uv; ++i) e.add(gen.y.at({t.a, i}), t.coeff);
                } else if (role == ir::SymbolRole::ElementCount) {
                    e.add(gen.elem_count.at(t.a), t.coeff);
                }
                // Unused symbols contribute nothing.
                continue;
            }
            // Degree 2: a register-matrix size. Find the matrix.
            bool matched = false;
            for (std::size_t ri = 0; ri < prog.registers.size() && !matched; ++ri) {
                const ir::RegisterArray& r = prog.registers[ri];
                if (!r.elems.symbolic() || !r.instances.symbolic()) continue;
                const SymbolId lo = std::min(r.elems.sym, r.instances.sym);
                const SymbolId hi = std::max(r.elems.sym, r.instances.sym);
                if (lo != t.a || hi != t.b) continue;
                const std::int64_t rows = bounds.at(static_cast<std::size_t>(r.instances.sym));
                for (std::int64_t row = 0; row < rows; ++row) {
                    const auto it = gen.row_elems.find({static_cast<ir::RegisterId>(ri), row});
                    if (it != gen.row_elems.end()) e.add(it->second, t.coeff);
                }
                matched = true;
            }
            if (!matched) {
                throw CompileError("quadratic term has no matching register matrix");
            }
        }
        return e;
    };
    for (const ir::PolyConstraint& pc : prog.assumes) {
        LinExpr e = map_poly(pc.poly);
        const double rhs = -e.constant();
        e.add_constant(-e.constant());
        switch (pc.op) {
            case ir::CmpOp::Le: m.add_le(std::move(e), rhs, "assume"); break;
            case ir::CmpOp::Eq: m.add_eq(std::move(e), rhs, "assume"); break;
            default:
                throw CompileError("internal: unnormalized assume constraint");
        }
    }
    m.set_objective(map_poly(prog.utility));
    return gen;
}

std::vector<double> warm_start_values(const ir::Program& prog, const GeneratedIlp& gen,
                                      const Layout& layout) {
    std::vector<double> values(static_cast<std::size_t>(gen.model.num_vars()), 0.0);
    const auto set = [&](const Var v, double value) {
        if (v.valid()) values[static_cast<std::size_t>(v.id)] = value;
    };

    // y from bindings (contiguous iterations).
    for (const auto& [key, var] : gen.y) {
        set(var, key.second < layout.binding(key.first) ? 1.0 : 0.0);
    }
    // n_e from bindings (clamped into declared bounds so a too-small greedy
    // binding simply fails the feasibility check instead of crashing).
    for (const auto& [w, var] : gen.elem_count) {
        const double lo = gen.model.lower_bound(var.id);
        const double hi = gen.model.upper_bound(var.id);
        set(var, std::clamp(static_cast<double>(layout.binding(w)), lo, hi));
    }
    // x from the node members' placed stages.
    std::vector<int> node_stage(static_cast<std::size_t>(gen.graph.node_count()), -1);
    for (int node = 0; node < gen.graph.node_count(); ++node) {
        for (const int member : gen.graph.members[static_cast<std::size_t>(node)]) {
            const int s = layout.stage_of(gen.graph.instances[static_cast<std::size_t>(member)]);
            if (s >= 0) {
                node_stage[static_cast<std::size_t>(node)] = s;
                break;
            }
        }
        const int s = node_stage[static_cast<std::size_t>(node)];
        if (s >= 0 && s < static_cast<int>(gen.x[static_cast<std::size_t>(node)].size())) {
            set(gen.x[static_cast<std::size_t>(node)][static_cast<std::size_t>(s)], 1.0);
        }
    }
    // e and me from placed register rows.
    for (const auto& [row, var] : gen.row_elems) {
        set(var, static_cast<double>(layout.register_elems(row.first, row.second)));
    }
    for (const auto& [row, owner] : gen.row_owner) {
        const int s = node_stage[static_cast<std::size_t>(owner)];
        if (s < 0) continue;
        const ir::RegisterArray& r = prog.reg(row.first);
        const std::int64_t elems = layout.register_elems(row.first, row.second);
        if (!r.elems.symbolic()) continue;
        // me var names are deterministic; find by name (builder order is not
        // recorded — this is a cold path run once per compile).
        const std::string name =
            "me_" + r.name + "_" + std::to_string(row.second) + "_s" + std::to_string(s);
        for (int id = 0; id < gen.model.num_vars(); ++id) {
            if (gen.model.var_name(id) == name) {
                values[static_cast<std::size_t>(id)] = static_cast<double>(elems * r.width);
                break;
            }
        }
    }
    // d chunks: mark every chunk touched by a placed instance.
    target::TargetSpec probe;
    for (const StagePlan& plan : layout.stages) {
        for (const Instance& inst : plan.actions) {
            const AccessSummary sum = summarize(prog, probe, inst);
            for (const auto& [chunk, access] : sum.meta) {
                const auto it = gen.d.find(chunk);
                if (it != gen.d.end()) set(it->second, 1.0);
            }
        }
    }
    return values;
}

Layout extract_layout(const ir::Program& prog, const target::TargetSpec& target,
                      const GeneratedIlp& gen, const ilp::Solution& solution) {
    (void)target;
    Layout layout;
    layout.stages.resize(gen.x.empty() ? 0 : gen.x.front().size());
    if (layout.stages.empty()) {
        // No nodes: still size stages for consistency.
        layout.stages.resize(1);
    }
    layout.bindings.assign(prog.symbols.size(), 0);

    const auto value_of = [&](const Var v) {
        return v.valid() ? solution.values.at(static_cast<std::size_t>(v.id)) : 0.0;
    };

    // Bindings: iteration symbols from y sums, element symbols from n_e.
    for (const auto& [key, var] : gen.y) {
        if (value_of(var) > 0.5) ++layout.bindings[static_cast<std::size_t>(key.first)];
    }
    for (const auto& [w, var] : gen.elem_count) {
        layout.bindings[static_cast<std::size_t>(w)] =
            static_cast<std::int64_t>(std::llround(value_of(var)));
    }

    // Action placement.
    for (int node = 0; node < gen.graph.node_count(); ++node) {
        int stage = -1;
        for (std::size_t s = 0; s < gen.x[static_cast<std::size_t>(node)].size(); ++s) {
            if (value_of(gen.x[static_cast<std::size_t>(node)][s]) > 0.5) {
                stage = static_cast<int>(s);
                break;
            }
        }
        if (stage < 0) continue;
        for (const int member : gen.graph.members[static_cast<std::size_t>(node)]) {
            layout.stages[static_cast<std::size_t>(stage)].actions.push_back(
                gen.graph.instances[static_cast<std::size_t>(member)]);
        }
    }
    // Stable order within stages (program order).
    for (StagePlan& plan : layout.stages) {
        std::sort(plan.actions.begin(), plan.actions.end());
    }

    // Register rows in the stage of their owner node.
    for (const auto& [row, owner] : gen.row_owner) {
        int stage = -1;
        for (std::size_t s = 0; s < gen.x[static_cast<std::size_t>(owner)].size(); ++s) {
            if (value_of(gen.x[static_cast<std::size_t>(owner)][s]) > 0.5) {
                stage = static_cast<int>(s);
                break;
            }
        }
        if (stage < 0) continue;
        const ir::RegisterArray& r = prog.reg(row.first);
        std::int64_t elems = 0;
        if (r.elems.symbolic()) {
            const auto it = gen.row_elems.find(row);
            elems = it != gen.row_elems.end()
                        ? static_cast<std::int64_t>(std::llround(value_of(it->second)))
                        : 0;
        } else {
            elems = r.elems.literal;
        }
        if (elems <= 0) continue;
        layout.stages[static_cast<std::size_t>(stage)].registers.push_back(
            {row.first, row.second, elems});
    }
    return layout;
}

}  // namespace p4all::compiler
