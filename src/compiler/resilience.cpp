#include "compiler/resilience.hpp"

namespace p4all::compiler {

const char* attempt_outcome_name(AttemptOutcome outcome) noexcept {
    switch (outcome) {
        case AttemptOutcome::Success: return "success";
        case AttemptOutcome::Timeout: return "timeout";
        case AttemptOutcome::Cancelled: return "cancelled";
        case AttemptOutcome::Infeasible: return "infeasible";
        case AttemptOutcome::NumericalTrouble: return "numerical-trouble";
        case AttemptOutcome::AuditRejected: return "audit-rejected";
        case AttemptOutcome::Error: return "error";
        case AttemptOutcome::Skipped: return "skipped";
    }
    return "unknown";
}

namespace {

std::string trimmed_double(double v) {
    std::string s = std::to_string(v);
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string ResilienceReport::to_string() const {
    std::string out = "resilience: budget " + trimmed_double(budget_seconds) + "s, spent " +
                      trimmed_double(total_seconds) + "s, ";
    if (succeeded()) {
        out += "accepted '" + final_backend + "'" + (anytime ? " (anytime incumbent)" : "");
    } else {
        out += "no backend succeeded";
    }
    for (const AttemptReport& a : attempts) {
        out += "\n  " + a.backend + ": " + attempt_outcome_name(a.outcome);
        if (a.error != support::Errc::None) {
            out += " [" + std::string(support::errc_code(a.error)) + "]";
        }
        out += " in " + trimmed_double(a.seconds) + "s";
        if (a.nodes > 0) out += ", " + std::to_string(a.nodes) + " nodes";
        if (a.lp_iterations > 0) out += ", " + std::to_string(a.lp_iterations) + " LP iters";
        if (a.perturb_seed != 0) out += ", seed " + std::to_string(a.perturb_seed);
        if (a.anytime) out += ", anytime";
        if (!a.detail.empty()) out += " — " + a.detail;
    }
    return out;
}

std::string ResilienceReport::to_json() const {
    std::string out = "{\"budget_seconds\":" + trimmed_double(budget_seconds) +
                      ",\"total_seconds\":" + trimmed_double(total_seconds) +
                      ",\"final_backend\":\"" + json_escape(final_backend) +
                      "\",\"anytime\":" + (anytime ? "true" : "false") + ",\"attempts\":[";
    for (std::size_t i = 0; i < attempts.size(); ++i) {
        const AttemptReport& a = attempts[i];
        if (i != 0) out += ",";
        out += "{\"backend\":\"" + json_escape(a.backend) + "\",\"outcome\":\"" +
               attempt_outcome_name(a.outcome) + "\",\"error\":\"" +
               (a.error == support::Errc::None ? "" : support::errc_code(a.error)) +
               "\",\"detail\":\"" + json_escape(a.detail) +
               "\",\"seconds\":" + trimmed_double(a.seconds) +
               ",\"nodes\":" + std::to_string(a.nodes) +
               ",\"lp_iterations\":" + std::to_string(a.lp_iterations) +
               ",\"perturb_seed\":" + std::to_string(a.perturb_seed) +
               ",\"anytime\":" + (a.anytime ? "true" : "false") + "}";
    }
    out += "]}";
    return out;
}

}  // namespace p4all::compiler
