#include "compiler/artifacts.hpp"

#include <string>

namespace p4all::compiler {

namespace {

std::string trimmed_double(double v) {
    std::string s = std::to_string(v);
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

}  // namespace

verify::DataplaneView dataplane_view(const ir::Program&, const Layout& layout) {
    verify::DataplaneView view;
    view.stage_count = static_cast<int>(layout.stages.size());
    for (std::size_t s = 0; s < layout.stages.size(); ++s) {
        for (const analysis::Instance& inst : layout.stages[s].actions) {
            view.instances.push_back({inst, static_cast<int>(s)});
        }
        for (const PlacedRegister& pr : layout.stages[s].registers) {
            view.reg_elems[{pr.reg, pr.instance}] = pr.elems;
        }
    }
    return view;
}

std::string CompileArtifacts::summary() const {
    std::string out = "program '" + name + "' on target '" + target.name + "' via " + backend +
                      " backend: utility " + trimmed_double(claimed_utility) + ", " +
                      std::to_string(layout.total_actions()) + " placed actions, " +
                      std::to_string(claimed_usage.stages_occupied) + "/" +
                      std::to_string(target.stages) + " stages";
    if (has_ilp) {
        out += "; ILP " + std::to_string(ilp.model.num_vars()) + " vars / " +
               std::to_string(ilp.model.num_constraints()) + " rows, " +
               std::to_string(solution.nodes) + " B&B nodes";
        out += solution.root_duals.empty() ? ", no root certificate"
                                           : ", root certificate present (bound " +
                                                 trimmed_double(solution.root_bound) + ")";
    }
    return out;
}

}  // namespace p4all::compiler
