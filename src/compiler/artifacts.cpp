#include "compiler/artifacts.hpp"

#include <map>
#include <string>

namespace p4all::compiler {

namespace {

std::string trimmed_double(double v) {
    std::string s = std::to_string(v);
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

}  // namespace

verify::DataplaneView dataplane_view(const ir::Program&, const Layout& layout) {
    verify::DataplaneView view;
    view.stage_count = static_cast<int>(layout.stages.size());
    for (std::size_t s = 0; s < layout.stages.size(); ++s) {
        for (const analysis::Instance& inst : layout.stages[s].actions) {
            view.instances.push_back({inst, static_cast<int>(s)});
        }
        for (const PlacedRegister& pr : layout.stages[s].registers) {
            view.reg_elems[{pr.reg, pr.instance}] = pr.elems;
        }
    }
    return view;
}

Layout remap_layout_for_optimized(const Layout& layout, const opt::OptResult& opt) {
    // Invert the post->pre maps so surviving pre-optimization ids renumber
    // to their post-optimization positions.
    std::map<int, int> call_to_post;
    for (std::size_t post = 0; post < opt.call_map.size(); ++post) {
        call_to_post[opt.call_map[post]] = static_cast<int>(post);
    }
    std::map<ir::RegisterId, ir::RegisterId> reg_to_post;
    for (std::size_t post = 0; post < opt.reg_map.size(); ++post) {
        reg_to_post[opt.reg_map[post]] = static_cast<ir::RegisterId>(post);
    }

    Layout out;
    out.bindings = layout.bindings;
    out.stages.resize(layout.stages.size());
    for (std::size_t s = 0; s < layout.stages.size(); ++s) {
        for (analysis::Instance inst : layout.stages[s].actions) {
            const auto it = call_to_post.find(inst.call);
            if (it == call_to_post.end()) continue;  // call removed by the optimizer
            inst.call = it->second;
            out.stages[s].actions.push_back(inst);
        }
        for (PlacedRegister pr : layout.stages[s].registers) {
            const auto it = reg_to_post.find(pr.reg);
            if (it == reg_to_post.end()) continue;  // register removed
            pr.reg = it->second;
            out.stages[s].registers.push_back(pr);
        }
    }
    return out;
}

std::string CompileArtifacts::summary() const {
    std::string out = "program '" + name + "' on target '" + target.name + "' via " + backend +
                      " backend: utility " + trimmed_double(claimed_utility) + ", " +
                      std::to_string(layout.total_actions()) + " placed actions, " +
                      std::to_string(claimed_usage.stages_occupied) + "/" +
                      std::to_string(target.stages) + " stages";
    if (has_ilp) {
        out += "; ILP " + std::to_string(ilp.model.num_vars()) + " vars / " +
               std::to_string(ilp.model.num_constraints()) + " rows, " +
               std::to_string(solution.nodes) + " B&B nodes";
        out += solution.root_duals.empty() ? ", no root certificate"
                                           : ", root certificate present (bound " +
                                                 trimmed_double(solution.root_bound) + ")";
    }
    return out;
}

}  // namespace p4all::compiler
