#include "compiler/artifacts.hpp"

#include <string>

namespace p4all::compiler {

namespace {

std::string trimmed_double(double v) {
    std::string s = std::to_string(v);
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

}  // namespace

std::string CompileArtifacts::summary() const {
    std::string out = "program '" + name + "' on target '" + target.name + "' via " + backend +
                      " backend: utility " + trimmed_double(claimed_utility) + ", " +
                      std::to_string(layout.total_actions()) + " placed actions, " +
                      std::to_string(claimed_usage.stages_occupied) + "/" +
                      std::to_string(target.stages) + " stages";
    if (has_ilp) {
        out += "; ILP " + std::to_string(ilp.model.num_vars()) + " vars / " +
               std::to_string(ilp.model.num_constraints()) + " rows, " +
               std::to_string(solution.nodes) + " B&B nodes";
        out += solution.root_duals.empty() ? ", no root certificate"
                                           : ", root certificate present (bound " +
                                                 trimmed_double(solution.root_bound) + ")";
    }
    return out;
}

}  // namespace p4all::compiler
