// ILP generation (Figure 10): lowers the unrolled program + target limits
// to a MILP whose optimum is the best feasible layout and symbolic-value
// assignment under the program's utility function.
//
// Variables
//   x[n,s]    binary   node n (register-sharing group of action instances)
//                      placed in stage s   (#1, grouped by constraint #4)
//   y[v,i]    binary   iteration i of loops over symbol v instantiated (#3)
//   n_e[w]    integer  element count of element-symbol w
//   e[r,i]    cont.    elements of register row (r,i): n_e[w]·(instantiated)
//   me[r,i,s] cont.    memory bits of row (r,i) charged to stage s (#2)
//   d[c]      binary   elastic metadata chunk c carried in the PHV (#3)
//
// Constraints (numbers from the paper's Figure 10)
//   #4  register-sharing instances share a node (structural, via grouping)
//   #5  exclusion:      x[n1,s] + x[n2,s] ≤ 1
//   #6  precedence:     stage(n2) ≥ stage(n1) + 1 − S·(2 − placed1 − placed2)
//       (plus weak ≥ 0 variant for write-after-read edges — extension)
//   #7  conditional:    Σ_s x[n,s] = y[v,i] for each elastic member
//   #8  memory/stage:   Σ me[·,s] + Σ const·x ≤ M
//   #9  co-location:    me[r,i,s] ≥ w·e[r,i] − M·(1 − x[n,s])
//   #10 equal row size: e[r,i] pinned to the shared n_e[w]
//   #11 stateful ALUs:  Σ H_f(n)·x[n,s] ≤ F
//   #12 stateless ALUs: Σ H_l(n)·x[n,s] ≤ L  (plus hash units ≤ H)
//   #13 PHV budget:     Σ bits(c)·d[c] ≤ P − P_fixed
//   #14 PHV use:        d[c] ≥ placed[n] for nodes touching chunk c
//   #15 place once:     Σ_s x[n,s] ≤ 1 (implied by #7 / #17)
//   #16 iteration order: y[v,i+1] ≤ y[v,i]
//   #17 inelastic:      Σ_s x[n,s] = 1
//   plus every `assume` constraint and the `optimize` objective, lowered
//   through the symbol mapping v ↦ Σ_i y[v,i], w ↦ n_e[w],
//   v·w ↦ Σ_i e[r,i] (register-matrix size).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "analysis/depgraph.hpp"
#include "ilp/model.hpp"
#include "ilp/solver.hpp"
#include "compiler/layout.hpp"

namespace p4all::compiler {

struct IlpGenOptions {
    /// Restrict x[n,s] to the stage window implied by precedence depth —
    /// a presolve that shrinks the model without cutting any feasible
    /// layout. Ablated in bench/ablate_presolve.
    bool stage_windows = true;
    /// Break iteration symmetry: consecutive iterations of the same loop are
    /// interchangeable (same costs, same shape), so force their nodes into
    /// non-decreasing stages. Sound, but with the greedy warm start and the
    /// optimality-gap pruning the extra big-M rows cost more than the cut
    /// branches save (see bench/ablate_presolve) — off by default.
    bool symmetry_breaking = false;
};

/// The generated model plus the bookkeeping needed to read a layout back
/// out of a solution.
struct GeneratedIlp {
    ilp::Model model;
    analysis::DepGraph graph;
    std::vector<std::int64_t> bounds;  // U_v used, indexed by SymbolId

    /// x[node][stage]; invalid Var outside the node's window.
    std::vector<std::vector<ilp::Var>> x;
    /// y[(v, iteration)].
    std::map<std::pair<ir::SymbolId, std::int64_t>, ilp::Var> y;
    /// n_e[w] for element symbols.
    std::map<ir::SymbolId, ilp::Var> elem_count;
    /// e[(register, row)] for rows with symbolic element counts.
    std::map<std::pair<ir::RegisterId, std::int64_t>, ilp::Var> row_elems;
    /// Register rows owned by each node (row -> owning node id).
    std::map<std::pair<ir::RegisterId, std::int64_t>, int> row_owner;
    /// d[chunk] PHV indicators for elastic metadata chunks.
    std::map<analysis::MetaChunk, ilp::Var> d;
};

/// Builds the MILP for `prog` on `target` with unroll bounds `bounds`
/// (indexed by SymbolId, from analysis::unroll_bounds_all). Throws
/// support::CompileError for programs whose dependence structure is
/// contradictory.
[[nodiscard]] GeneratedIlp generate_ilp(const ir::Program& prog,
                                        const target::TargetSpec& target,
                                        const std::vector<std::int64_t>& bounds,
                                        const IlpGenOptions& options = {});

/// Reads the optimal layout out of a solved model.
[[nodiscard]] Layout extract_layout(const ir::Program& prog, const target::TargetSpec& target,
                                    const GeneratedIlp& gen, const ilp::Solution& solution);

/// Maps a known-feasible layout (e.g. from the greedy backend) onto the
/// generated model's variables, for use as a branch-and-bound warm start.
/// The result is only used if it passes the model's feasibility check.
[[nodiscard]] std::vector<double> warm_start_values(const ir::Program& prog,
                                                    const GeneratedIlp& gen,
                                                    const Layout& layout);

}  // namespace p4all::compiler
