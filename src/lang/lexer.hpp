// Lexer for the P4All surface language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.hpp"
#include "support/error.hpp"

namespace p4all::lang {

/// Converts P4All source text into a token stream. Throws
/// support::CompileError on malformed input (bad characters, unterminated
/// comments, malformed numbers).
class Lexer {
public:
    /// `file` is recorded in every token's source location.
    Lexer(std::string_view source, std::string file);

    /// Lexes the entire input. The returned vector always ends with an
    /// EndOfFile token.
    [[nodiscard]] std::vector<Token> lex_all();

private:
    [[nodiscard]] support::SourceLoc here() const;
    [[nodiscard]] bool at_end() const noexcept { return pos_ >= source_.size(); }
    [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept;
    char advance() noexcept;
    bool match(char expected) noexcept;
    void skip_whitespace_and_comments();

    [[nodiscard]] Token lex_number();
    [[nodiscard]] Token lex_identifier();

    std::string_view source_;
    std::string file_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    std::uint32_t column_ = 1;
};

/// One-shot convenience wrapper around Lexer.
[[nodiscard]] std::vector<Token> lex(std::string_view source, std::string file = "<input>");

}  // namespace p4all::lang
