// Token definitions for the P4All surface language.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace p4all::lang {

/// Lexical token kinds. P4All is a backward-compatible extension of P4;
/// this lexer covers the subset of P4-16 used by the paper's programs plus
/// the four elastic extensions (symbolic, assume, for, optimize).
enum class TokenKind {
    // Literals and names
    Identifier,
    IntLiteral,
    FloatLiteral,
    // Keywords
    KwSymbolic,
    KwInt,
    KwConst,
    KwAssume,
    KwRegister,
    KwBit,
    KwMetadata,
    KwPacket,
    KwAction,
    KwControl,
    KwApply,
    KwFor,
    KwIf,
    KwElse,
    KwOptimize,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Dot,
    Assign,
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Less,
    Greater,
    LessEq,
    GreaterEq,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Not,
    // Sentinel
    EndOfFile,
};

/// Human-readable name of a token kind (for diagnostics).
[[nodiscard]] std::string_view token_kind_name(TokenKind kind) noexcept;

/// A lexed token. `text` views into the source buffer owned by the Lexer's
/// caller; `int_value` is valid only for IntLiteral, `float_value` only for
/// FloatLiteral.
struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    std::int64_t int_value = 0;
    double float_value = 0.0;
    support::SourceLoc loc;

    [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
};

}  // namespace p4all::lang
