#include "lang/token.hpp"

namespace p4all::lang {

std::string_view token_kind_name(TokenKind kind) noexcept {
    switch (kind) {
        case TokenKind::Identifier: return "identifier";
        case TokenKind::IntLiteral: return "integer literal";
        case TokenKind::FloatLiteral: return "float literal";
        case TokenKind::KwSymbolic: return "'symbolic'";
        case TokenKind::KwInt: return "'int'";
        case TokenKind::KwConst: return "'const'";
        case TokenKind::KwAssume: return "'assume'";
        case TokenKind::KwRegister: return "'register'";
        case TokenKind::KwBit: return "'bit'";
        case TokenKind::KwMetadata: return "'metadata'";
        case TokenKind::KwPacket: return "'packet'";
        case TokenKind::KwAction: return "'action'";
        case TokenKind::KwControl: return "'control'";
        case TokenKind::KwApply: return "'apply'";
        case TokenKind::KwFor: return "'for'";
        case TokenKind::KwIf: return "'if'";
        case TokenKind::KwElse: return "'else'";
        case TokenKind::KwOptimize: return "'optimize'";
        case TokenKind::LParen: return "'('";
        case TokenKind::RParen: return "')'";
        case TokenKind::LBrace: return "'{'";
        case TokenKind::RBrace: return "'}'";
        case TokenKind::LBracket: return "'['";
        case TokenKind::RBracket: return "']'";
        case TokenKind::Semicolon: return "';'";
        case TokenKind::Comma: return "','";
        case TokenKind::Dot: return "'.'";
        case TokenKind::Assign: return "'='";
        case TokenKind::Plus: return "'+'";
        case TokenKind::Minus: return "'-'";
        case TokenKind::Star: return "'*'";
        case TokenKind::Slash: return "'/'";
        case TokenKind::Percent: return "'%'";
        case TokenKind::Less: return "'<'";
        case TokenKind::Greater: return "'>'";
        case TokenKind::LessEq: return "'<='";
        case TokenKind::GreaterEq: return "'>='";
        case TokenKind::EqEq: return "'=='";
        case TokenKind::NotEq: return "'!='";
        case TokenKind::AndAnd: return "'&&'";
        case TokenKind::OrOr: return "'||'";
        case TokenKind::Not: return "'!'";
        case TokenKind::EndOfFile: return "end of file";
    }
    return "?";
}

}  // namespace p4all::lang
