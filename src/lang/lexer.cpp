#include "lang/lexer.hpp"

#include <cctype>
#include <charconv>
#include <map>

namespace p4all::lang {

namespace {
/// Local shadow of support::CompileError: every frontend throw in this file
/// carries the stable ParseError code from the error taxonomy.
struct CompileError : support::Error {
    CompileError(support::SourceLoc loc, const std::string& msg)
        : support::Error(support::Errc::ParseError, std::move(loc), msg) {}
    explicit CompileError(const std::string& msg)
        : support::Error(support::Errc::ParseError, msg) {}
};
}  // namespace
using support::SourceLoc;

Lexer::Lexer(std::string_view source, std::string file)
    : source_(source), file_(std::move(file)) {}

SourceLoc Lexer::here() const { return SourceLoc{file_, line_, column_}; }

char Lexer::peek(std::size_t ahead) const noexcept {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() noexcept {
    const char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool Lexer::match(char expected) noexcept {
    if (at_end() || peek() != expected) return false;
    advance();
    return true;
}

void Lexer::skip_whitespace_and_comments() {
    while (!at_end()) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!at_end() && peek() != '\n') advance();
        } else if (c == '/' && peek(1) == '*') {
            const SourceLoc start = here();
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (at_end()) throw CompileError(start, "unterminated block comment");
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token Lexer::lex_number() {
    const SourceLoc loc = here();
    const std::size_t start = pos_;
    // Hex literals: 0x1F (useful for masks and sentinel values).
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        const std::size_t digits_start = pos_;
        while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek())) != 0) advance();
        if (pos_ == digits_start) throw CompileError(loc, "hex literal needs digits after 0x");
        Token tok;
        tok.kind = TokenKind::IntLiteral;
        tok.text = std::string(source_.substr(start, pos_ - start));
        tok.loc = loc;
        const std::string_view digits = source_.substr(digits_start, pos_ - digits_start);
        const auto [p, ec] =
            std::from_chars(digits.data(), digits.data() + digits.size(), tok.int_value, 16);
        if (ec != std::errc()) {
            throw CompileError(loc, "hex literal out of range '" + tok.text + "'");
        }
        tok.float_value = static_cast<double>(tok.int_value);
        return tok;
    }
    bool is_float = false;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0) {
        is_float = true;
        advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) advance();
    }
    const std::string_view text = source_.substr(start, pos_ - start);
    Token tok;
    tok.text = std::string(text);
    tok.loc = loc;
    if (is_float) {
        tok.kind = TokenKind::FloatLiteral;
        const auto [p, ec] =
            std::from_chars(text.data(), text.data() + text.size(), tok.float_value);
        if (ec != std::errc()) throw CompileError(loc, "malformed float literal '" + tok.text + "'");
    } else {
        tok.kind = TokenKind::IntLiteral;
        const auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), tok.int_value);
        if (ec != std::errc())
            throw CompileError(loc, "integer literal out of range '" + tok.text + "'");
        tok.float_value = static_cast<double>(tok.int_value);
    }
    return tok;
}

Token Lexer::lex_identifier() {
    static const std::map<std::string_view, TokenKind> kKeywords = {
        {"symbolic", TokenKind::KwSymbolic}, {"int", TokenKind::KwInt},
        {"const", TokenKind::KwConst},       {"assume", TokenKind::KwAssume},
        {"register", TokenKind::KwRegister}, {"bit", TokenKind::KwBit},
        {"metadata", TokenKind::KwMetadata}, {"packet", TokenKind::KwPacket},
        {"action", TokenKind::KwAction},     {"control", TokenKind::KwControl},
        {"apply", TokenKind::KwApply},       {"for", TokenKind::KwFor},
        {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
        {"optimize", TokenKind::KwOptimize},
    };
    const SourceLoc loc = here();
    const std::size_t start = pos_;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_')) {
        advance();
    }
    Token tok;
    tok.text = std::string(source_.substr(start, pos_ - start));
    tok.loc = loc;
    const auto it = kKeywords.find(tok.text);
    tok.kind = it != kKeywords.end() ? it->second : TokenKind::Identifier;
    return tok;
}

std::vector<Token> Lexer::lex_all() {
    std::vector<Token> tokens;
    while (true) {
        skip_whitespace_and_comments();
        if (at_end()) break;
        const SourceLoc loc = here();
        const char c = peek();
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            tokens.push_back(lex_number());
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
            tokens.push_back(lex_identifier());
            continue;
        }
        advance();
        Token tok;
        tok.loc = loc;
        tok.text = std::string(1, c);
        switch (c) {
            case '(': tok.kind = TokenKind::LParen; break;
            case ')': tok.kind = TokenKind::RParen; break;
            case '{': tok.kind = TokenKind::LBrace; break;
            case '}': tok.kind = TokenKind::RBrace; break;
            case '[': tok.kind = TokenKind::LBracket; break;
            case ']': tok.kind = TokenKind::RBracket; break;
            case ';': tok.kind = TokenKind::Semicolon; break;
            case ',': tok.kind = TokenKind::Comma; break;
            case '.': tok.kind = TokenKind::Dot; break;
            case '+': tok.kind = TokenKind::Plus; break;
            case '-': tok.kind = TokenKind::Minus; break;
            case '*': tok.kind = TokenKind::Star; break;
            case '/': tok.kind = TokenKind::Slash; break;
            case '%': tok.kind = TokenKind::Percent; break;
            case '<':
                tok.kind = match('=') ? TokenKind::LessEq : TokenKind::Less;
                break;
            case '>':
                // Note: '>>' is deliberately lexed as two '>' tokens so that
                // nested angle brackets in register<bit<32>> parse naturally
                // (the language has no shift operator).
                tok.kind = match('=') ? TokenKind::GreaterEq : TokenKind::Greater;
                break;
            case '=':
                tok.kind = match('=') ? TokenKind::EqEq : TokenKind::Assign;
                break;
            case '!':
                tok.kind = match('=') ? TokenKind::NotEq : TokenKind::Not;
                break;
            case '&':
                if (!match('&')) throw CompileError(loc, "expected '&&'");
                tok.kind = TokenKind::AndAnd;
                break;
            case '|':
                if (!match('|')) throw CompileError(loc, "expected '||'");
                tok.kind = TokenKind::OrOr;
                break;
            default:
                throw CompileError(loc, std::string("unexpected character '") + c + "'");
        }
        if (tok.kind == TokenKind::LessEq || tok.kind == TokenKind::GreaterEq ||
            tok.kind == TokenKind::EqEq || tok.kind == TokenKind::NotEq ||
            tok.kind == TokenKind::AndAnd || tok.kind == TokenKind::OrOr) {
            tok.text += source_[pos_ - 1];
        }
        tokens.push_back(std::move(tok));
    }
    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.loc = here();
    tokens.push_back(std::move(eof));
    return tokens;
}

std::vector<Token> lex(std::string_view source, std::string file) {
    return Lexer(source, std::move(file)).lex_all();
}

}  // namespace p4all::lang
