#include "lang/printer.hpp"

#include <cstdio>

namespace p4all::lang {

namespace {

/// Precedence levels for minimal parenthesization; higher binds tighter.
int precedence(BinaryOp op) {
    switch (op) {
        case BinaryOp::Or: return 1;
        case BinaryOp::And: return 2;
        case BinaryOp::Eq:
        case BinaryOp::Ne: return 3;
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: return 4;
        case BinaryOp::Add:
        case BinaryOp::Sub: return 5;
        case BinaryOp::Mul:
        case BinaryOp::Div:
        case BinaryOp::Mod: return 6;
    }
    return 0;
}

std::string print_expr_prec(const Expr& e, int parent_prec);

struct ExprPrinter {
    int parent_prec;

    std::string operator()(const IntLit& n) const { return std::to_string(n.value); }

    std::string operator()(const FloatLit& n) const {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", n.value);
        return buf;
    }

    std::string operator()(const FieldRef& n) const {
        std::string out = n.dotted();
        if (n.index) {
            out += '[';
            out += print_expr_prec(*n.index, 0);
            out += ']';
        }
        return out;
    }

    std::string operator()(const Binary& n) const {
        const int prec = precedence(n.op);
        std::string out = print_expr_prec(*n.lhs, prec) + " " + binary_op_spelling(n.op) + " " +
                          print_expr_prec(*n.rhs, prec + 1);
        if (prec < parent_prec) return "(" + out + ")";
        return out;
    }

    std::string operator()(const Unary& n) const {
        return std::string(unary_op_spelling(n.op)) + print_expr_prec(*n.operand, 7);
    }
};

std::string print_expr_prec(const Expr& e, int parent_prec) {
    return std::visit(ExprPrinter{parent_prec}, e.node);
}

std::string indent_str(int levels) { return std::string(static_cast<std::size_t>(levels) * 4, ' '); }

void print_block_into(const Block& b, int indent, std::string& out);

struct StmtPrinter {
    int indent;
    std::string& out;

    void operator()(const ForStmt& n) const {
        out += indent_str(indent) + "for (" + n.var + " < " + n.bound + ") {\n";
        print_block_into(n.body, indent + 1, out);
        out += indent_str(indent) + "}\n";
    }

    void operator()(const IfStmt& n) const {
        out += indent_str(indent) + "if (" + print_expr(*n.cond) + ") {\n";
        print_block_into(n.then_block, indent + 1, out);
        out += indent_str(indent) + "}";
        if (!n.else_block.stmts.empty()) {
            out += " else {\n";
            print_block_into(n.else_block, indent + 1, out);
            out += indent_str(indent) + "}";
        }
        out += "\n";
    }

    void operator()(const CallStmt& n) const {
        out += indent_str(indent) + n.name + "(";
        for (std::size_t i = 0; i < n.args.size(); ++i) {
            if (i != 0) out += ", ";
            out += print_expr(*n.args[i]);
        }
        out += ")";
        if (n.iter_arg) out += "[" + print_expr(*n.iter_arg) + "]";
        out += ";\n";
    }

    void operator()(const ApplyStmt& n) const {
        out += indent_str(indent) + n.control + ".apply();\n";
    }
};

void print_block_into(const Block& b, int indent, std::string& out) {
    for (const StmtPtr& s : b.stmts) out += print_stmt(*s, indent);
}

std::string print_field(const FieldDecl& f, int indent) {
    std::string out = indent_str(indent) + "bit<" + std::to_string(f.width) + ">";
    if (f.array_size) out += "[" + print_expr(*f.array_size) + "]";
    out += " " + f.name + ";\n";
    return out;
}

struct DeclPrinter {
    std::string& out;

    void operator()(const SymbolicDecl& d) const { out += "symbolic int " + d.name + ";\n"; }

    void operator()(const ConstDecl& d) const {
        out += "const int " + d.name + " = " + print_expr(*d.value) + ";\n";
    }

    void operator()(const AssumeDecl& d) const {
        out += "assume " + print_expr(*d.cond) + ";\n";
    }

    void operator()(const RegisterDecl& d) const {
        out += "register<bit<" + std::to_string(d.width) + ">>[" + print_expr(*d.elems) + "]";
        if (d.instances) out += "[" + print_expr(*d.instances) + "]";
        out += " " + d.name + ";\n";
    }

    void operator()(const MetadataDecl& d) const {
        out += "metadata {\n";
        for (const FieldDecl& f : d.fields) out += print_field(f, 1);
        out += "}\n";
    }

    void operator()(const PacketDecl& d) const {
        out += "packet {\n";
        for (const FieldDecl& f : d.fields) out += print_field(f, 1);
        out += "}\n";
    }

    void operator()(const ActionDecl& d) const {
        out += "action " + d.name + "()";
        if (d.iter_param) out += "[int " + *d.iter_param + "]";
        out += " {\n";
        print_block_into(d.body, 1, out);
        out += "}\n";
    }

    void operator()(const ControlDecl& d) const {
        out += "control " + d.name + " {\n    apply {\n";
        print_block_into(d.apply, 2, out);
        out += "    }\n}\n";
    }

    void operator()(const OptimizeDecl& d) const {
        out += "optimize " + print_expr(*d.objective) + ";\n";
    }
};

}  // namespace

std::string print_expr(const Expr& e) { return print_expr_prec(e, 0); }

std::string print_stmt(const Stmt& s, int indent) {
    std::string out;
    std::visit(StmtPrinter{indent, out}, s.node);
    return out;
}

std::string print_program(const Program& p) {
    std::string out;
    for (const Decl& d : p.decls) {
        std::visit(DeclPrinter{out}, d.node);
    }
    return out;
}

}  // namespace p4all::lang
