// Pretty-printer: renders an AST back to P4All / concrete-P4 source text.
//
// Used for (a) parser round-trip tests, (b) emitting the concrete P4 program
// produced by the compiler (which is the same AST with loops unrolled and
// all sizes literal), and (c) the Figure 11 lines-of-code comparison.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace p4all::lang {

/// Renders an expression with minimal parentheses.
[[nodiscard]] std::string print_expr(const Expr& e);

/// Renders a statement (multi-line, `indent` leading levels of 4 spaces).
[[nodiscard]] std::string print_stmt(const Stmt& s, int indent = 0);

/// Renders a whole program.
[[nodiscard]] std::string print_program(const Program& p);

}  // namespace p4all::lang
