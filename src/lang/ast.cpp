#include "lang/ast.hpp"

namespace p4all::lang {

const char* binary_op_spelling(BinaryOp op) noexcept {
    switch (op) {
        case BinaryOp::Add: return "+";
        case BinaryOp::Sub: return "-";
        case BinaryOp::Mul: return "*";
        case BinaryOp::Div: return "/";
        case BinaryOp::Mod: return "%";
        case BinaryOp::Lt: return "<";
        case BinaryOp::Le: return "<=";
        case BinaryOp::Gt: return ">";
        case BinaryOp::Ge: return ">=";
        case BinaryOp::Eq: return "==";
        case BinaryOp::Ne: return "!=";
        case BinaryOp::And: return "&&";
        case BinaryOp::Or: return "||";
    }
    return "?";
}

const char* unary_op_spelling(UnaryOp op) noexcept {
    switch (op) {
        case UnaryOp::Neg: return "-";
        case UnaryOp::Not: return "!";
    }
    return "?";
}

std::string FieldRef::dotted() const {
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i != 0) out += '.';
        out += path[i];
    }
    return out;
}

ExprPtr make_expr(support::SourceLoc loc,
                  std::variant<IntLit, FloatLit, FieldRef, Binary, Unary> node) {
    auto e = std::make_unique<Expr>();
    e->loc = std::move(loc);
    e->node = std::move(node);
    return e;
}

StmtPtr make_stmt(support::SourceLoc loc,
                  std::variant<ForStmt, IfStmt, CallStmt, ApplyStmt> node) {
    auto s = std::make_unique<Stmt>();
    s->loc = std::move(loc);
    s->node = std::move(node);
    return s;
}

ExprPtr clone_expr(const Expr& e) {
    struct Cloner {
        const support::SourceLoc& loc;
        ExprPtr operator()(const IntLit& n) const { return make_expr(loc, n); }
        ExprPtr operator()(const FloatLit& n) const { return make_expr(loc, n); }
        ExprPtr operator()(const FieldRef& n) const {
            FieldRef copy;
            copy.path = n.path;
            if (n.index) copy.index = clone_expr(*n.index);
            return make_expr(loc, std::move(copy));
        }
        ExprPtr operator()(const Binary& n) const {
            Binary copy;
            copy.op = n.op;
            copy.lhs = clone_expr(*n.lhs);
            copy.rhs = clone_expr(*n.rhs);
            return make_expr(loc, std::move(copy));
        }
        ExprPtr operator()(const Unary& n) const {
            Unary copy;
            copy.op = n.op;
            copy.operand = clone_expr(*n.operand);
            return make_expr(loc, std::move(copy));
        }
    };
    return std::visit(Cloner{e.loc}, e.node);
}

Block clone_block(const Block& b) {
    Block out;
    out.stmts.reserve(b.stmts.size());
    for (const StmtPtr& s : b.stmts) out.stmts.push_back(clone_stmt(*s));
    return out;
}

StmtPtr clone_stmt(const Stmt& s) {
    struct Cloner {
        const support::SourceLoc& loc;
        StmtPtr operator()(const ForStmt& n) const {
            ForStmt copy;
            copy.var = n.var;
            copy.bound = n.bound;
            copy.body = clone_block(n.body);
            return make_stmt(loc, std::move(copy));
        }
        StmtPtr operator()(const IfStmt& n) const {
            IfStmt copy;
            copy.cond = clone_expr(*n.cond);
            copy.then_block = clone_block(n.then_block);
            copy.else_block = clone_block(n.else_block);
            return make_stmt(loc, std::move(copy));
        }
        StmtPtr operator()(const CallStmt& n) const {
            CallStmt copy;
            copy.name = n.name;
            for (const ExprPtr& a : n.args) copy.args.push_back(clone_expr(*a));
            if (n.iter_arg) copy.iter_arg = clone_expr(*n.iter_arg);
            return make_stmt(loc, std::move(copy));
        }
        StmtPtr operator()(const ApplyStmt& n) const { return make_stmt(loc, n); }
    };
    return std::visit(Cloner{s.loc}, s.node);
}

const ActionDecl* Program::find_action(std::string_view name) const {
    for (const Decl& d : decls) {
        if (const auto* a = std::get_if<ActionDecl>(&d.node); a != nullptr && a->name == name) {
            return a;
        }
    }
    return nullptr;
}

const ControlDecl* Program::find_control(std::string_view name) const {
    for (const Decl& d : decls) {
        if (const auto* c = std::get_if<ControlDecl>(&d.node); c != nullptr && c->name == name) {
            return c;
        }
    }
    return nullptr;
}

}  // namespace p4all::lang
