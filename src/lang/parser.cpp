#include "lang/parser.hpp"

#include "lang/lexer.hpp"
#include "support/error.hpp"

namespace p4all::lang {

namespace {
/// Local shadow of support::CompileError: every frontend throw in this file
/// carries the stable ParseError code from the error taxonomy.
struct CompileError : support::Error {
    CompileError(support::SourceLoc loc, const std::string& msg)
        : support::Error(support::Errc::ParseError, std::move(loc), msg) {}
    explicit CompileError(const std::string& msg)
        : support::Error(support::Errc::ParseError, msg) {}
};
}  // namespace

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

const Token& Parser::peek(std::size_t ahead) const noexcept {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() noexcept {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
}

bool Parser::match(TokenKind kind) noexcept {
    if (!check(kind)) return false;
    advance();
    return true;
}

const Token& Parser::expect(TokenKind kind, std::string_view context) {
    if (!check(kind)) {
        throw CompileError(peek().loc, "expected " + std::string(token_kind_name(kind)) +
                                           " in " + std::string(context) + ", found " +
                                           std::string(token_kind_name(peek().kind)));
    }
    return advance();
}

void Parser::fail(std::string_view message) const {
    throw CompileError(peek().loc, std::string(message));
}

Program Parser::parse_program() {
    Program prog;
    while (!check(TokenKind::EndOfFile)) prog.decls.push_back(parse_decl());
    return prog;
}

Decl Parser::parse_decl() {
    Decl d;
    d.loc = peek().loc;
    switch (peek().kind) {
        case TokenKind::KwSymbolic: d.node = parse_symbolic(); break;
        case TokenKind::KwConst: d.node = parse_const(); break;
        case TokenKind::KwAssume: d.node = parse_assume(); break;
        case TokenKind::KwRegister: d.node = parse_register(); break;
        case TokenKind::KwMetadata: d.node = parse_metadata(); break;
        case TokenKind::KwPacket: d.node = parse_packet(); break;
        case TokenKind::KwAction: d.node = parse_action(); break;
        case TokenKind::KwControl: d.node = parse_control(); break;
        case TokenKind::KwOptimize: d.node = parse_optimize(); break;
        default:
            fail("expected a declaration (symbolic, const, assume, register, metadata, packet, "
                 "action, control, or optimize)");
    }
    return d;
}

SymbolicDecl Parser::parse_symbolic() {
    expect(TokenKind::KwSymbolic, "symbolic declaration");
    expect(TokenKind::KwInt, "symbolic declaration");
    SymbolicDecl s;
    s.name = expect(TokenKind::Identifier, "symbolic declaration").text;
    expect(TokenKind::Semicolon, "symbolic declaration");
    return s;
}

ConstDecl Parser::parse_const() {
    expect(TokenKind::KwConst, "const declaration");
    expect(TokenKind::KwInt, "const declaration");
    ConstDecl c;
    c.name = expect(TokenKind::Identifier, "const declaration").text;
    expect(TokenKind::Assign, "const declaration");
    c.value = parse_expr();
    expect(TokenKind::Semicolon, "const declaration");
    return c;
}

AssumeDecl Parser::parse_assume() {
    expect(TokenKind::KwAssume, "assume statement");
    AssumeDecl a;
    a.cond = parse_expr();
    expect(TokenKind::Semicolon, "assume statement");
    return a;
}

int Parser::parse_bit_width() {
    expect(TokenKind::KwBit, "bit type");
    expect(TokenKind::Less, "bit type");
    const Token& w = expect(TokenKind::IntLiteral, "bit type");
    expect(TokenKind::Greater, "bit type");
    if (w.int_value <= 0 || w.int_value > 128) {
        throw CompileError(w.loc, "bit width must be in [1, 128], got " + w.text);
    }
    return static_cast<int>(w.int_value);
}

RegisterDecl Parser::parse_register() {
    expect(TokenKind::KwRegister, "register declaration");
    expect(TokenKind::Less, "register declaration");
    RegisterDecl r;
    r.width = parse_bit_width();
    expect(TokenKind::Greater, "register declaration");
    expect(TokenKind::LBracket, "register declaration");
    r.elems = parse_expr();
    expect(TokenKind::RBracket, "register declaration");
    if (match(TokenKind::LBracket)) {
        r.instances = parse_expr();
        expect(TokenKind::RBracket, "register declaration");
    }
    r.name = expect(TokenKind::Identifier, "register declaration").text;
    expect(TokenKind::Semicolon, "register declaration");
    return r;
}

FieldDecl Parser::parse_field_decl() {
    FieldDecl f;
    f.loc = peek().loc;
    f.width = parse_bit_width();
    if (match(TokenKind::LBracket)) {
        f.array_size = parse_expr();
        expect(TokenKind::RBracket, "field declaration");
    }
    f.name = expect(TokenKind::Identifier, "field declaration").text;
    expect(TokenKind::Semicolon, "field declaration");
    return f;
}

MetadataDecl Parser::parse_metadata() {
    expect(TokenKind::KwMetadata, "metadata block");
    expect(TokenKind::LBrace, "metadata block");
    MetadataDecl m;
    while (!match(TokenKind::RBrace)) m.fields.push_back(parse_field_decl());
    return m;
}

PacketDecl Parser::parse_packet() {
    expect(TokenKind::KwPacket, "packet block");
    expect(TokenKind::LBrace, "packet block");
    PacketDecl p;
    while (!match(TokenKind::RBrace)) {
        FieldDecl f = parse_field_decl();
        if (f.array_size) {
            throw CompileError(f.loc, "packet fields cannot be symbolic arrays");
        }
        p.fields.push_back(std::move(f));
    }
    return p;
}

ActionDecl Parser::parse_action() {
    expect(TokenKind::KwAction, "action declaration");
    ActionDecl a;
    a.name = expect(TokenKind::Identifier, "action declaration").text;
    expect(TokenKind::LParen, "action declaration");
    expect(TokenKind::RParen, "action declaration");
    if (match(TokenKind::LBracket)) {
        expect(TokenKind::KwInt, "action iteration parameter");
        a.iter_param = expect(TokenKind::Identifier, "action iteration parameter").text;
        expect(TokenKind::RBracket, "action iteration parameter");
    }
    a.body = parse_block();
    return a;
}

ControlDecl Parser::parse_control() {
    expect(TokenKind::KwControl, "control declaration");
    ControlDecl c;
    c.name = expect(TokenKind::Identifier, "control declaration").text;
    // Optional (possibly empty) parameter list for P4 compatibility.
    if (match(TokenKind::LParen)) {
        while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) advance();
        expect(TokenKind::RParen, "control declaration");
    }
    expect(TokenKind::LBrace, "control declaration");
    expect(TokenKind::KwApply, "control declaration");
    c.apply = parse_block();
    expect(TokenKind::RBrace, "control declaration");
    return c;
}

OptimizeDecl Parser::parse_optimize() {
    expect(TokenKind::KwOptimize, "optimize declaration");
    OptimizeDecl o;
    o.objective = parse_expr();
    expect(TokenKind::Semicolon, "optimize declaration");
    return o;
}

Block Parser::parse_block() {
    expect(TokenKind::LBrace, "block");
    Block b;
    while (!match(TokenKind::RBrace)) b.stmts.push_back(parse_stmt());
    return b;
}

StmtPtr Parser::parse_stmt() {
    const support::SourceLoc loc = peek().loc;
    if (check(TokenKind::KwFor)) {
        advance();
        expect(TokenKind::LParen, "for statement");
        ForStmt f;
        f.var = expect(TokenKind::Identifier, "for statement").text;
        expect(TokenKind::Less, "for statement");
        f.bound = expect(TokenKind::Identifier, "for statement").text;
        expect(TokenKind::RParen, "for statement");
        f.body = parse_block();
        return make_stmt(loc, std::move(f));
    }
    if (check(TokenKind::KwIf)) {
        advance();
        expect(TokenKind::LParen, "if statement");
        IfStmt s;
        s.cond = parse_expr();
        expect(TokenKind::RParen, "if statement");
        s.then_block = parse_block();
        if (match(TokenKind::KwElse)) s.else_block = parse_block();
        return make_stmt(loc, std::move(s));
    }
    // Either `name.apply();` or `name(args)[iter];`
    const Token& name = expect(TokenKind::Identifier, "statement");
    if (check(TokenKind::Dot) && peek(1).is(TokenKind::KwApply)) {
        advance();  // '.'
        advance();  // 'apply'
        expect(TokenKind::LParen, "apply statement");
        expect(TokenKind::RParen, "apply statement");
        expect(TokenKind::Semicolon, "apply statement");
        return make_stmt(loc, ApplyStmt{name.text});
    }
    CallStmt call;
    call.name = name.text;
    expect(TokenKind::LParen, "call statement");
    if (!check(TokenKind::RParen)) {
        call.args.push_back(parse_expr());
        while (match(TokenKind::Comma)) call.args.push_back(parse_expr());
    }
    expect(TokenKind::RParen, "call statement");
    if (match(TokenKind::LBracket)) {
        call.iter_arg = parse_expr();
        expect(TokenKind::RBracket, "call statement");
    }
    expect(TokenKind::Semicolon, "call statement");
    return make_stmt(loc, std::move(call));
}

ExprPtr Parser::parse_expr() { return parse_or(); }

ExprPtr Parser::parse_or() {
    ExprPtr lhs = parse_and();
    while (check(TokenKind::OrOr)) {
        const support::SourceLoc loc = advance().loc;
        Binary b{BinaryOp::Or, std::move(lhs), parse_and()};
        lhs = make_expr(loc, std::move(b));
    }
    return lhs;
}

ExprPtr Parser::parse_and() {
    ExprPtr lhs = parse_equality();
    while (check(TokenKind::AndAnd)) {
        const support::SourceLoc loc = advance().loc;
        Binary b{BinaryOp::And, std::move(lhs), parse_equality()};
        lhs = make_expr(loc, std::move(b));
    }
    return lhs;
}

ExprPtr Parser::parse_equality() {
    ExprPtr lhs = parse_relational();
    while (check(TokenKind::EqEq) || check(TokenKind::NotEq)) {
        const Token& op = advance();
        Binary b{op.is(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne, std::move(lhs),
                 parse_relational()};
        lhs = make_expr(op.loc, std::move(b));
    }
    return lhs;
}

ExprPtr Parser::parse_relational() {
    ExprPtr lhs = parse_additive();
    while (check(TokenKind::Less) || check(TokenKind::LessEq) || check(TokenKind::Greater) ||
           check(TokenKind::GreaterEq)) {
        const Token& op = advance();
        BinaryOp kind = BinaryOp::Lt;
        if (op.is(TokenKind::LessEq)) kind = BinaryOp::Le;
        if (op.is(TokenKind::Greater)) kind = BinaryOp::Gt;
        if (op.is(TokenKind::GreaterEq)) kind = BinaryOp::Ge;
        Binary b{kind, std::move(lhs), parse_additive()};
        lhs = make_expr(op.loc, std::move(b));
    }
    return lhs;
}

ExprPtr Parser::parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
        const Token& op = advance();
        Binary b{op.is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub, std::move(lhs),
                 parse_multiplicative()};
        lhs = make_expr(op.loc, std::move(b));
    }
    return lhs;
}

ExprPtr Parser::parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (check(TokenKind::Star) || check(TokenKind::Slash) || check(TokenKind::Percent)) {
        const Token& op = advance();
        BinaryOp kind = BinaryOp::Mul;
        if (op.is(TokenKind::Slash)) kind = BinaryOp::Div;
        if (op.is(TokenKind::Percent)) kind = BinaryOp::Mod;
        Binary b{kind, std::move(lhs), parse_unary()};
        lhs = make_expr(op.loc, std::move(b));
    }
    return lhs;
}

ExprPtr Parser::parse_unary() {
    if (check(TokenKind::Minus)) {
        const support::SourceLoc loc = advance().loc;
        return make_expr(loc, Unary{UnaryOp::Neg, parse_unary()});
    }
    if (check(TokenKind::Not)) {
        const support::SourceLoc loc = advance().loc;
        return make_expr(loc, Unary{UnaryOp::Not, parse_unary()});
    }
    return parse_primary();
}

ExprPtr Parser::parse_primary() {
    const Token& t = peek();
    if (t.is(TokenKind::IntLiteral)) {
        advance();
        return make_expr(t.loc, IntLit{t.int_value});
    }
    if (t.is(TokenKind::FloatLiteral)) {
        advance();
        return make_expr(t.loc, FloatLit{t.float_value});
    }
    if (t.is(TokenKind::LParen)) {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::RParen, "parenthesized expression");
        return inner;
    }
    if (t.is(TokenKind::Identifier)) {
        FieldRef ref;
        ref.path.push_back(advance().text);
        while (match(TokenKind::Dot)) {
            ref.path.push_back(expect(TokenKind::Identifier, "field reference").text);
        }
        if (match(TokenKind::LBracket)) {
            ref.index = parse_expr();
            expect(TokenKind::RBracket, "field reference");
        }
        return make_expr(t.loc, std::move(ref));
    }
    fail("expected an expression");
}

Program parse(std::string_view source, std::string file) {
    return Parser(lex(source, std::move(file))).parse_program();
}

}  // namespace p4all::lang
