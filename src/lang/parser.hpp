// Recursive-descent parser for P4All.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"

namespace p4all::lang {

/// Parses a token stream into a Program. Throws support::CompileError with a
/// source location on the first syntax error.
class Parser {
public:
    explicit Parser(std::vector<Token> tokens);

    [[nodiscard]] Program parse_program();

private:
    [[nodiscard]] const Token& peek(std::size_t ahead = 0) const noexcept;
    [[nodiscard]] bool check(TokenKind kind) const noexcept { return peek().is(kind); }
    const Token& advance() noexcept;
    bool match(TokenKind kind) noexcept;
    const Token& expect(TokenKind kind, std::string_view context);

    [[noreturn]] void fail(std::string_view message) const;

    Decl parse_decl();
    SymbolicDecl parse_symbolic();
    ConstDecl parse_const();
    AssumeDecl parse_assume();
    RegisterDecl parse_register();
    MetadataDecl parse_metadata();
    PacketDecl parse_packet();
    ActionDecl parse_action();
    ControlDecl parse_control();
    OptimizeDecl parse_optimize();

    FieldDecl parse_field_decl();
    int parse_bit_width();

    Block parse_block();
    StmtPtr parse_stmt();

    // Precedence-climbing expression grammar:
    //   or > and > equality > relational > additive > multiplicative > unary
    ExprPtr parse_expr();
    ExprPtr parse_or();
    ExprPtr parse_and();
    ExprPtr parse_equality();
    ExprPtr parse_relational();
    ExprPtr parse_additive();
    ExprPtr parse_multiplicative();
    ExprPtr parse_unary();
    ExprPtr parse_primary();

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

/// Lexes and parses `source` in one step.
[[nodiscard]] Program parse(std::string_view source, std::string file = "<input>");

}  // namespace p4all::lang
