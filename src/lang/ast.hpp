// Abstract syntax tree for P4All.
//
// The same AST represents both elastic P4All programs (with symbolic values,
// symbolic arrays, and for-loops) and the concrete P4 programs the compiler
// emits (no symbolic declarations, loops fully unrolled, all sizes literal).
// The printer in printer.hpp renders either form.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/source_location.hpp"

namespace p4all::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators. Arithmetic operators appear in sizes, indices, and
/// utility functions; comparisons and logical operators appear in `if`
/// conditions and `assume` constraints.
enum class BinaryOp { Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnaryOp { Neg, Not };

/// Operator spelling, e.g. "&&" for BinaryOp::And.
[[nodiscard]] const char* binary_op_spelling(BinaryOp op) noexcept;
[[nodiscard]] const char* unary_op_spelling(UnaryOp op) noexcept;

struct IntLit {
    std::int64_t value = 0;
};

struct FloatLit {
    double value = 0.0;
};

/// A possibly-dotted, possibly-indexed name: `rows`, `i`, `pkt.key`,
/// `meta.count[i]`, `cms[i]`. Elaboration resolves what the path denotes
/// (symbolic value, loop variable, metadata field, packet field, register).
struct FieldRef {
    std::vector<std::string> path;
    ExprPtr index;  // may be null

    [[nodiscard]] std::string dotted() const;
};

struct Binary {
    BinaryOp op = BinaryOp::Add;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct Unary {
    UnaryOp op = UnaryOp::Neg;
    ExprPtr operand;
};

struct Expr {
    support::SourceLoc loc;
    std::variant<IntLit, FloatLit, FieldRef, Binary, Unary> node;
};

/// Allocates an expression node.
[[nodiscard]] ExprPtr make_expr(support::SourceLoc loc,
                                std::variant<IntLit, FloatLit, FieldRef, Binary, Unary> node);

/// Deep copy (expressions are move-only otherwise).
[[nodiscard]] ExprPtr clone_expr(const Expr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Block {
    std::vector<StmtPtr> stmts;
};

/// `for (i < rows) { ... }` — the elastic loop; `bound` must name a symbolic
/// value (or, in concrete programs, loops are already unrolled away).
struct ForStmt {
    std::string var;
    std::string bound;
    Block body;
};

struct IfStmt {
    ExprPtr cond;
    Block then_block;
    Block else_block;  // may be empty
};

/// `name(args...)[iter];` — either an action invocation (args empty, iter
/// optional) or a primitive operation (hash, reg_add, set, ...). Elaboration
/// disambiguates by name.
struct CallStmt {
    std::string name;
    std::vector<ExprPtr> args;
    ExprPtr iter_arg;  // may be null
};

/// `name.apply();` — invocation of another control block.
struct ApplyStmt {
    std::string control;
};

struct Stmt {
    support::SourceLoc loc;
    std::variant<ForStmt, IfStmt, CallStmt, ApplyStmt> node;
};

[[nodiscard]] StmtPtr make_stmt(support::SourceLoc loc,
                                std::variant<ForStmt, IfStmt, CallStmt, ApplyStmt> node);

[[nodiscard]] Block clone_block(const Block& b);
[[nodiscard]] StmtPtr clone_stmt(const Stmt& s);

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

/// `symbolic int name;`
struct SymbolicDecl {
    std::string name;
};

/// `const int name = expr;` — expr must fold to a constant.
struct ConstDecl {
    std::string name;
    ExprPtr value;
};

/// `assume expr;`
struct AssumeDecl {
    ExprPtr cond;
};

/// `register<bit<W>>[elems][instances] name;` — `instances` omitted means a
/// single register array; with both brackets this is a symbolic matrix of
/// register arrays (e.g. the rows of a count-min sketch).
struct RegisterDecl {
    int width = 32;
    ExprPtr elems;
    ExprPtr instances;  // may be null (single instance)
    std::string name;
};

/// One field inside a metadata or packet block; `array_size` non-null makes
/// it a symbolic metadata array (`bit<32>[rows] count;`).
struct FieldDecl {
    support::SourceLoc loc;
    int width = 32;
    ExprPtr array_size;  // may be null
    std::string name;
};

/// `metadata { ... }` — per-packet scratch carried in the PHV.
struct MetadataDecl {
    std::vector<FieldDecl> fields;
};

/// `packet { ... }` — parsed header fields available in the PHV.
struct PacketDecl {
    std::vector<FieldDecl> fields;
};

/// `action name()[int i] { ... }` — `iter_param` present makes the action a
/// per-iteration template instantiated once per unrolled loop iteration.
struct ActionDecl {
    std::string name;
    std::optional<std::string> iter_param;
    Block body;
};

/// `control name { apply { ... } }`
struct ControlDecl {
    std::string name;
    Block apply;
};

/// `optimize expr;` — the utility function the compiler maximizes.
struct OptimizeDecl {
    ExprPtr objective;
};

struct Decl {
    support::SourceLoc loc;
    std::variant<SymbolicDecl, ConstDecl, AssumeDecl, RegisterDecl, MetadataDecl, PacketDecl,
                 ActionDecl, ControlDecl, OptimizeDecl>
        node;
};

/// A parsed P4All translation unit. Declaration order is preserved; the
/// entry point is the control named `ingress`.
struct Program {
    std::vector<Decl> decls;

    /// Finds the first declaration of kind T with the given name (actions,
    /// controls); returns nullptr if absent.
    [[nodiscard]] const ActionDecl* find_action(std::string_view name) const;
    [[nodiscard]] const ControlDecl* find_control(std::string_view name) const;
};

}  // namespace p4all::lang
