// The PISA target specification (the paper's Figure 3).
//
// A target is described by five scalar resources per Figure 3 — stages S,
// per-stage register memory M, per-stage stateful ALUs F, per-stage
// stateless ALUs L, and total PHV bits P — plus per-stage hash units and
// the per-primitive ALU cost functions H_f / H_l the dependency analysis
// and the ILP charge against those budgets. Specs are loaded from JSON
// files (see examples/targets/) or taken from the built-in presets.
#pragma once

#include <cstdint>
#include <string>

#include "ir/types.hpp"
#include "support/json.hpp"

namespace p4all::target {

struct TargetSpec {
    std::string name = "tofino-like";

    /// Pipeline stages (S).
    int stages = 10;
    /// Register memory per stage in bits (M).
    std::int64_t memory_bits = 1'750'000;
    /// Stateful ALUs per stage (F).
    int stateful_alus = 4;
    /// Stateless ALUs per stage (L).
    int stateless_alus = 100;
    /// Hash units per stage.
    int hash_units = 8;
    /// Total PHV bits across the pipeline (P).
    int phv_bits = 4096;

    /// Total ALUs of either kind across the pipeline: (F + L) · S.
    [[nodiscard]] std::int64_t total_alus() const noexcept {
        return static_cast<std::int64_t>(stateful_alus + stateless_alus) * stages;
    }

    /// Total register memory across the pipeline: M · S.
    [[nodiscard]] std::int64_t total_memory_bits() const noexcept {
        return memory_bits * stages;
    }

    /// Per-primitive cost functions (H_f, H_l, hash units). Register
    /// read-modify-write primitives occupy one stateful ALU; everything
    /// else (including the hash computation itself) is stateless.
    [[nodiscard]] int stateful_cost(ir::PrimKind kind) const noexcept;
    [[nodiscard]] int stateless_cost(ir::PrimKind kind) const noexcept;
    [[nodiscard]] int hash_cost(ir::PrimKind kind) const noexcept;

    /// Loads a spec from a JSON object (see examples/targets/*.json for the
    /// accepted keys). Missing keys keep their preset defaults; non-positive
    /// resources throw support::CompileError.
    [[nodiscard]] static TargetSpec from_json(const support::Json& json);

    /// Serializes with the same keys from_json accepts.
    [[nodiscard]] support::Json to_json() const;
};

/// The Tofino-like PISA target used throughout the paper's evaluation:
/// S=10, M=1.75 Mb, F=4, L=100, P=4096, 8 hash units.
[[nodiscard]] TargetSpec tofino_like();

/// The paper's §4.1 running-example target: S=3, M=2048 b, F=L=2.
[[nodiscard]] TargetSpec running_example();

/// A deliberately tiny target for unit tests: S=4, M=8192 b, F=2, L=8,
/// P=1024, 2 hash units.
[[nodiscard]] TargetSpec small_test();

}  // namespace p4all::target
