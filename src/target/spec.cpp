#include "target/spec.hpp"

#include "support/error.hpp"

namespace p4all::target {

int TargetSpec::stateful_cost(ir::PrimKind kind) const noexcept {
    switch (kind) {
        case ir::PrimKind::RegAdd:
        case ir::PrimKind::RegRead:
        case ir::PrimKind::RegWrite:
        case ir::PrimKind::RegMin:
        case ir::PrimKind::RegMax:
            return 1;
        default:
            return 0;
    }
}

int TargetSpec::stateless_cost(ir::PrimKind kind) const noexcept {
    switch (kind) {
        case ir::PrimKind::Hash:
        case ir::PrimKind::Set:
        case ir::PrimKind::Add:
        case ir::PrimKind::Sub:
        case ir::PrimKind::Min:
        case ir::PrimKind::Max:
            return 1;
        default:
            return 0;
    }
}

int TargetSpec::hash_cost(ir::PrimKind kind) const noexcept {
    return kind == ir::PrimKind::Hash ? 1 : 0;
}

TargetSpec TargetSpec::from_json(const support::Json& json) {
    if (!json.is_object()) {
        throw support::CompileError("target spec must be a JSON object");
    }
    TargetSpec spec;
    spec.name = json.get_string("name", spec.name);
    spec.stages = static_cast<int>(json.get_int("stages", spec.stages));
    spec.memory_bits = json.get_int("memory_bits_per_stage", spec.memory_bits);
    spec.stateful_alus =
        static_cast<int>(json.get_int("stateful_alus_per_stage", spec.stateful_alus));
    spec.stateless_alus =
        static_cast<int>(json.get_int("stateless_alus_per_stage", spec.stateless_alus));
    spec.hash_units = static_cast<int>(json.get_int("hash_units_per_stage", spec.hash_units));
    spec.phv_bits = static_cast<int>(json.get_int("phv_bits", spec.phv_bits));

    const auto positive = [&](std::int64_t v, const char* what) {
        if (v <= 0) {
            throw support::CompileError("target spec '" + spec.name + "': " + what +
                                        " must be positive");
        }
    };
    positive(spec.stages, "stages");
    positive(spec.memory_bits, "memory_bits_per_stage");
    positive(spec.stateful_alus, "stateful_alus_per_stage");
    positive(spec.stateless_alus, "stateless_alus_per_stage");
    positive(spec.hash_units, "hash_units_per_stage");
    positive(spec.phv_bits, "phv_bits");
    return spec;
}

support::Json TargetSpec::to_json() const {
    support::Json out = support::Json::object();
    out.set("name", name);
    out.set("stages", stages);
    out.set("memory_bits_per_stage", memory_bits);
    out.set("stateful_alus_per_stage", stateful_alus);
    out.set("stateless_alus_per_stage", stateless_alus);
    out.set("phv_bits", phv_bits);
    out.set("hash_units_per_stage", hash_units);
    return out;
}

TargetSpec tofino_like() { return TargetSpec{}; }

TargetSpec running_example() {
    TargetSpec spec;
    spec.name = "running-example";
    spec.stages = 3;
    spec.memory_bits = 2048;
    spec.stateful_alus = 2;
    spec.stateless_alus = 2;
    spec.hash_units = 2;
    spec.phv_bits = 4096;
    return spec;
}

TargetSpec small_test() {
    TargetSpec spec;
    spec.name = "small-test";
    spec.stages = 4;
    spec.memory_bits = 8192;
    spec.stateful_alus = 2;
    spec.stateless_alus = 8;
    spec.hash_units = 2;
    spec.phv_bits = 1024;
    return spec;
}

}  // namespace p4all::target
