#include "ilp/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p4all::ilp {

CscMatrix CscMatrix::from_triplets(int rows, int cols, std::vector<Triplet> triplets) {
    std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
        if (a.col != b.col) return a.col < b.col;
        return a.row < b.row;
    });
    CscMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
    m.row_idx_.reserve(triplets.size());
    m.values_.reserve(triplets.size());
    std::size_t k = 0;
    for (int j = 0; j < cols; ++j) {
        while (k < triplets.size() && triplets[k].col == j) {
            const int row = triplets[k].row;
            double sum = 0.0;
            while (k < triplets.size() && triplets[k].col == j && triplets[k].row == row) {
                sum += triplets[k].value;
                ++k;
            }
            if (sum != 0.0) {
                m.row_idx_.push_back(row);
                m.values_.push_back(sum);
            }
        }
        m.col_ptr_[static_cast<std::size_t>(j) + 1] = m.row_idx_.size();
    }
    return m;
}

CscMatrix CscMatrix::from_dense(int rows, int cols, const std::vector<double>& row_major) {
    std::vector<Triplet> triplets;
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            const double v =
                row_major[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols) +
                          static_cast<std::size_t>(j)];
            if (v != 0.0) triplets.push_back({i, j, v});
        }
    }
    return from_triplets(rows, cols, std::move(triplets));
}

std::vector<double> CscMatrix::to_dense() const {
    std::vector<double> dense(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_),
                              0.0);
    for (int j = 0; j < cols_; ++j) {
        for (std::size_t k = col_begin(j); k < col_end(j); ++k) {
            dense[static_cast<std::size_t>(row_idx_[k]) * static_cast<std::size_t>(cols_) +
                  static_cast<std::size_t>(j)] = values_[k];
        }
    }
    return dense;
}

double CscMatrix::dot_col(int j, const std::vector<double>& y) const {
    double sum = 0.0;
    for (std::size_t k = col_begin(j); k < col_end(j); ++k) {
        sum += values_[k] * y[static_cast<std::size_t>(row_idx_[k])];
    }
    return sum;
}

void CscMatrix::axpy_col(int j, double scale, std::vector<double>& dense) const {
    for (std::size_t k = col_begin(j); k < col_end(j); ++k) {
        dense[static_cast<std::size_t>(row_idx_[k])] += scale * values_[k];
    }
}

void CscMatrix::scatter_col(int j, std::vector<double>& dense) const {
    std::fill(dense.begin(), dense.end(), 0.0);
    for (std::size_t k = col_begin(j); k < col_end(j); ++k) {
        dense[static_cast<std::size_t>(row_idx_[k])] = values_[k];
    }
}

bool BasisFactorization::refactorize(const CscMatrix& A, const std::vector<int>& basis) {
    m_ = static_cast<int>(basis.size());
    etas_.clear();
    peel_.clear();
    bump_rows_.clear();
    bump_pos_.clear();
    bump_in_peel_.clear();
    bump_lu_.clear();
    bump_perm_.clear();
    if (m_ == 0) {
        factorized_empty_ = true;
        bump_row_slot_.clear();
        return true;
    }
    const std::size_t ms = static_cast<std::size_t>(m_);

    // Gather the basis columns once (row-sorted, straight from the CSC) and
    // a row → basis-position adjacency for the singleton cascade.
    std::vector<std::vector<std::pair<int, double>>> cols(ms);
    std::vector<std::vector<int>> row_cols(ms);
    for (int j = 0; j < m_; ++j) {
        const int col = basis[static_cast<std::size_t>(j)];
        auto& entries = cols[static_cast<std::size_t>(j)];
        entries.reserve(A.col_end(col) - A.col_begin(col));
        for (std::size_t k = A.col_begin(col); k < A.col_end(col); ++k) {
            entries.emplace_back(A.entry_row(k), A.entry_value(k));
            row_cols[static_cast<std::size_t>(A.entry_row(k))].push_back(j);
        }
    }

    // Peel the column-singleton cascade: a column with exactly one entry in
    // a still-active row pivots there, which deactivates the row and may
    // expose new singletons. Queue processing is FIFO over deterministic
    // push order, so the peel sequence depends only on the basis.
    std::vector<int> active_in_col(ms);
    std::vector<char> row_active(ms, 1);
    std::vector<char> col_done(ms, 0);
    std::vector<int> queue;
    queue.reserve(ms);
    for (int j = 0; j < m_; ++j) {
        active_in_col[static_cast<std::size_t>(j)] =
            static_cast<int>(cols[static_cast<std::size_t>(j)].size());
        if (active_in_col[static_cast<std::size_t>(j)] == 1) queue.push_back(j);
    }
    peel_.reserve(ms);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int c = queue[head];
        if (col_done[static_cast<std::size_t>(c)] ||
            active_in_col[static_cast<std::size_t>(c)] != 1) {
            continue;  // stale queue entry
        }
        int pivot_row = -1;
        double pivot_val = 0.0;
        for (const auto& [r, v] : cols[static_cast<std::size_t>(c)]) {
            if (row_active[static_cast<std::size_t>(r)]) {
                pivot_row = r;
                pivot_val = v;
                break;
            }
        }
        // Numerically tiny singleton: leave it for the bump, where partial
        // pivoting (or a singularity report) handles it.
        if (pivot_row < 0 || std::abs(pivot_val) < 1e-12) continue;
        col_done[static_cast<std::size_t>(c)] = 1;
        row_active[static_cast<std::size_t>(pivot_row)] = 0;
        PeelPivot pp;
        pp.row = pivot_row;
        pp.pos = c;
        pp.pivot = pivot_val;
        for (const auto& [r, v] : cols[static_cast<std::size_t>(c)]) {
            if (r != pivot_row) pp.above.emplace_back(r, v);
        }
        peel_.push_back(std::move(pp));
        for (const int j : row_cols[static_cast<std::size_t>(pivot_row)]) {
            if (col_done[static_cast<std::size_t>(j)]) continue;
            if (--active_in_col[static_cast<std::size_t>(j)] == 1) queue.push_back(j);
        }
    }

    // Whatever survived the cascade is the bump; dense-LU it.
    bump_row_slot_.assign(ms, -1);
    for (int i = 0; i < m_; ++i) {
        if (row_active[static_cast<std::size_t>(i)]) {
            bump_row_slot_[static_cast<std::size_t>(i)] = static_cast<int>(bump_rows_.size());
            bump_rows_.push_back(i);
        }
    }
    for (int j = 0; j < m_; ++j) {
        if (!col_done[static_cast<std::size_t>(j)]) bump_pos_.push_back(j);
    }
    const int s = static_cast<int>(bump_rows_.size());
    if (static_cast<int>(bump_pos_.size()) != s) return false;  // structurally singular
    const std::size_t ss = static_cast<std::size_t>(s);
    bump_in_peel_.assign(ss, {});
    bump_lu_.assign(ss * ss, 0.0);
    for (int t = 0; t < s; ++t) {
        for (const auto& [r, v] : cols[static_cast<std::size_t>(bump_pos_[static_cast<std::size_t>(t)])]) {
            const int slot = bump_row_slot_[static_cast<std::size_t>(r)];
            if (slot >= 0) {
                bump_lu_[static_cast<std::size_t>(slot) * ss + static_cast<std::size_t>(t)] = v;
            } else {
                bump_in_peel_[static_cast<std::size_t>(t)].emplace_back(r, v);
            }
        }
    }
    // Dense LU with partial pivoting on the bump: P·B22 = LU, bump_perm_
    // records the (bump-local) row order.
    bump_perm_.resize(ss);
    for (int i = 0; i < s; ++i) bump_perm_[static_cast<std::size_t>(i)] = i;
    for (int k = 0; k < s; ++k) {
        int pivot_row = k;
        double pivot_mag =
            std::abs(bump_lu_[static_cast<std::size_t>(k) * ss + static_cast<std::size_t>(k)]);
        for (int i = k + 1; i < s; ++i) {
            const double mag =
                std::abs(bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(k)]);
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if (pivot_mag < 1e-12) return false;  // singular to working precision
        if (pivot_row != k) {
            for (int j = 0; j < s; ++j) {
                std::swap(bump_lu_[static_cast<std::size_t>(k) * ss + static_cast<std::size_t>(j)],
                          bump_lu_[static_cast<std::size_t>(pivot_row) * ss +
                                   static_cast<std::size_t>(j)]);
            }
            std::swap(bump_perm_[static_cast<std::size_t>(k)],
                      bump_perm_[static_cast<std::size_t>(pivot_row)]);
        }
        const double inv =
            1.0 / bump_lu_[static_cast<std::size_t>(k) * ss + static_cast<std::size_t>(k)];
        for (int i = k + 1; i < s; ++i) {
            double& lik = bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(k)];
            if (lik == 0.0) continue;
            lik *= inv;
            const double f = lik;
            for (int j = k + 1; j < s; ++j) {
                bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(j)] -=
                    f * bump_lu_[static_cast<std::size_t>(k) * ss + static_cast<std::size_t>(j)];
            }
        }
    }
    return true;
}

void BasisFactorization::ftran(std::vector<double>& x) const {
    if (m_ == 0) return;
    // x arrives as the row-indexed rhs b and leaves as the basis-position-
    // indexed solution z of B·z = b. Under the peel permutation B is
    // [U11 B12; 0 B22]: solve the bump first (its rows see only bump
    // columns), push its contribution into the peeled rows, then back-
    // substitute the triangular peel in reverse order.
    const int s = static_cast<int>(bump_rows_.size());
    const std::size_t ss = static_cast<std::size_t>(s);
    std::vector<double> zb(ss);
    if (s > 0) {
        std::vector<double> rhs(ss);
        for (int t = 0; t < s; ++t) {
            rhs[static_cast<std::size_t>(t)] =
                x[static_cast<std::size_t>(bump_rows_[static_cast<std::size_t>(t)])];
        }
        // P·B22 = LU: permute, forward (unit L), backward (U).
        for (int i = 0; i < s; ++i) {
            zb[static_cast<std::size_t>(i)] =
                rhs[static_cast<std::size_t>(bump_perm_[static_cast<std::size_t>(i)])];
        }
        for (int i = 1; i < s; ++i) {
            double sum = zb[static_cast<std::size_t>(i)];
            for (int j = 0; j < i; ++j) {
                sum -= bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(j)] *
                       zb[static_cast<std::size_t>(j)];
            }
            zb[static_cast<std::size_t>(i)] = sum;
        }
        for (int i = s - 1; i >= 0; --i) {
            double sum = zb[static_cast<std::size_t>(i)];
            for (int j = i + 1; j < s; ++j) {
                sum -= bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(j)] *
                       zb[static_cast<std::size_t>(j)];
            }
            zb[static_cast<std::size_t>(i)] =
                sum / bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(i)];
        }
        // B12 contribution: bump columns' entries that land in peeled rows.
        for (int t = 0; t < s; ++t) {
            const double zt = zb[static_cast<std::size_t>(t)];
            if (zt == 0.0) continue;
            for (const auto& [r, v] : bump_in_peel_[static_cast<std::size_t>(t)]) {
                x[static_cast<std::size_t>(r)] -= v * zt;
            }
        }
    }
    std::vector<double> z(static_cast<std::size_t>(m_));
    for (auto it = peel_.rbegin(); it != peel_.rend(); ++it) {
        const double zk = x[static_cast<std::size_t>(it->row)] / it->pivot;
        z[static_cast<std::size_t>(it->pos)] = zk;
        if (zk == 0.0) continue;
        for (const auto& [r, v] : it->above) {
            x[static_cast<std::size_t>(r)] -= v * zk;
        }
    }
    for (int t = 0; t < s; ++t) {
        z[static_cast<std::size_t>(bump_pos_[static_cast<std::size_t>(t)])] =
            zb[static_cast<std::size_t>(t)];
    }
    x = std::move(z);
    // Eta file, in creation order: x ← E_k⁻¹ x.
    for (const Eta& e : etas_) {
        const double t = x[static_cast<std::size_t>(e.pos)];
        if (t == 0.0) continue;
        x[static_cast<std::size_t>(e.pos)] = e.pivot_inv * t;
        for (const auto& [i, eta_i] : e.terms) {
            x[static_cast<std::size_t>(i)] += eta_i * t;
        }
    }
}

void BasisFactorization::btran(std::vector<double>& y) const {
    if (m_ == 0) return;
    // Eta transposes in reverse creation order: y_pos ← η·y.
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
        double dot = it->pivot_inv * y[static_cast<std::size_t>(it->pos)];
        for (const auto& [i, eta_i] : it->terms) {
            dot += eta_i * y[static_cast<std::size_t>(i)];
        }
        y[static_cast<std::size_t>(it->pos)] = dot;
    }
    // y now holds the basis-position-indexed rhs c; solve B0ᵀ·w = c into the
    // row-indexed dual vector w. Transposing [U11 B12; 0 B22] makes the peel
    // lower triangular: forward-substitute it in peel order (each pivot's
    // `above` rows were peeled earlier, hence already solved), then the
    // dense bump picks up the B12ᵀ coupling.
    std::vector<double> w(static_cast<std::size_t>(m_), 0.0);
    for (const PeelPivot& pp : peel_) {
        double sum = y[static_cast<std::size_t>(pp.pos)];
        for (const auto& [r, v] : pp.above) {
            sum -= v * w[static_cast<std::size_t>(r)];
        }
        w[static_cast<std::size_t>(pp.row)] = sum / pp.pivot;
    }
    const int s = static_cast<int>(bump_rows_.size());
    if (s > 0) {
        const std::size_t ss = static_cast<std::size_t>(s);
        std::vector<double> b(ss);
        for (int t = 0; t < s; ++t) {
            double sum = y[static_cast<std::size_t>(bump_pos_[static_cast<std::size_t>(t)])];
            for (const auto& [r, v] : bump_in_peel_[static_cast<std::size_t>(t)]) {
                sum -= v * w[static_cast<std::size_t>(r)];
            }
            b[static_cast<std::size_t>(t)] = sum;
        }
        // Solve B22ᵀ·u = b via P·B22 = LU: Uᵀ forward, Lᵀ (unit) backward,
        // then un-permute the bump-local rows.
        for (int i = 0; i < s; ++i) {
            double sum = b[static_cast<std::size_t>(i)];
            for (int j = 0; j < i; ++j) {
                sum -= bump_lu_[static_cast<std::size_t>(j) * ss + static_cast<std::size_t>(i)] *
                       b[static_cast<std::size_t>(j)];
            }
            b[static_cast<std::size_t>(i)] =
                sum / bump_lu_[static_cast<std::size_t>(i) * ss + static_cast<std::size_t>(i)];
        }
        for (int i = s - 2; i >= 0; --i) {
            double sum = b[static_cast<std::size_t>(i)];
            for (int j = i + 1; j < s; ++j) {
                sum -= bump_lu_[static_cast<std::size_t>(j) * ss + static_cast<std::size_t>(i)] *
                       b[static_cast<std::size_t>(j)];
            }
            b[static_cast<std::size_t>(i)] = sum;
        }
        for (int i = 0; i < s; ++i) {
            w[static_cast<std::size_t>(
                bump_rows_[static_cast<std::size_t>(bump_perm_[static_cast<std::size_t>(i)])])] =
                b[static_cast<std::size_t>(i)];
        }
    }
    y = std::move(w);
}

bool BasisFactorization::update(const std::vector<double>& w, int pos) {
    const double pivot = w[static_cast<std::size_t>(pos)];
    if (std::abs(pivot) < options_.pivot_tol) return false;
    Eta e;
    e.pos = pos;
    e.pivot_inv = 1.0 / pivot;
    for (int i = 0; i < m_; ++i) {
        if (i == pos) continue;
        const double wi = w[static_cast<std::size_t>(i)];
        if (wi != 0.0) e.terms.emplace_back(i, -wi * e.pivot_inv);
    }
    etas_.push_back(std::move(e));
    return true;
}

double BasisFactorization::residual_inf(const CscMatrix& A, const std::vector<int>& basis) const {
    double worst = 0.0;
    std::vector<double> x(static_cast<std::size_t>(m_));
    for (int j = 0; j < m_; ++j) {
        A.scatter_col(basis[static_cast<std::size_t>(j)], x);
        ftran(x);
        for (int i = 0; i < m_; ++i) {
            const double expect = i == j ? 1.0 : 0.0;
            worst = std::max(worst, std::abs(x[static_cast<std::size_t>(i)] - expect));
        }
    }
    return worst;
}

}  // namespace p4all::ilp
