// Root presolve: activity-based bound tightening + coefficient cleanup.
//
// Runs once before branch-and-bound. Bound tightening is exact inference —
// for each row, the minimum activity of the other terms bounds what any one
// variable can contribute — so no feasible point (integer or continuous) is
// ever removed; integer bounds are additionally rounded inward. The result
// is expressed as tightened *root bounds* rather than a mutated model, so
// audit certificates keep referring to the original rows and bounds.
// Coefficient cleanup is limited to semantically-neutral normalization
// (merging duplicate terms, dropping exact zeros); anything lossier would
// break the solver's "incumbents are feasible for the original model"
// contract.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ilp/model.hpp"

namespace p4all::ilp {

struct PresolveResult {
    /// Tightened root bounds, indexed by variable id. Always valid (equal
    /// to the model bounds where nothing tightened).
    std::vector<double> lb;
    std::vector<double> ub;
    /// Bound inference crossed (lb > ub) or a row cannot reach its rhs:
    /// the model is integer-infeasible before any search.
    bool infeasible = false;
    std::string infeasible_reason;
    int bounds_tightened = 0;
    /// Set only when cleanup changed anything: a row-for-row copy of the
    /// model with normalized constraint expressions (same row count/order,
    /// so dual indexing is preserved).
    std::optional<Model> cleaned;
    int coefficients_cleaned = 0;
};

/// Runs up to `max_passes` sweeps of bound tightening (fixpoint usually in
/// 1–2 passes on placement models) plus one normalization sweep.
[[nodiscard]] PresolveResult presolve(const Model& model, int max_passes = 4);

}  // namespace p4all::ilp
