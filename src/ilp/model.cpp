#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include "support/error.hpp"

namespace p4all::ilp {

LinExpr& LinExpr::add(Var v, double coeff) {
    if (!v.valid()) throw support::Error(support::Errc::InvalidModel,
                             "LinExpr::add: invalid variable");
    if (coeff != 0.0) terms_.emplace_back(v.id, coeff);
    return *this;
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
    terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
    constant_ += rhs.constant_;
    return *this;
}

void LinExpr::normalize() {
    std::sort(terms_.begin(), terms_.end());
    std::vector<std::pair<int, double>> merged;
    for (const auto& [id, c] : terms_) {
        if (!merged.empty() && merged.back().first == id) {
            merged.back().second += c;
        } else {
            merged.emplace_back(id, c);
        }
    }
    std::erase_if(merged, [](const auto& t) { return t.second == 0.0; });
    terms_ = std::move(merged);
}

double LinExpr::evaluate(const std::vector<double>& values) const {
    double total = constant_;
    for (const auto& [id, c] : terms_) total += c * values.at(static_cast<std::size_t>(id));
    return total;
}

Var Model::add_var(std::string name, VarType type, double lb, double ub) {
    if (lb > ub) throw support::Error(support::Errc::InvalidModel,
                             "Model::add_var: lb > ub for " + name);
    const Var v{static_cast<int>(types_.size())};
    types_.push_back(type);
    lb_.push_back(lb);
    ub_.push_back(ub);
    priority_.push_back(0);
    names_.push_back(std::move(name));
    return v;
}

void Model::set_branch_priority(Var v, int priority) {
    priority_.at(static_cast<std::size_t>(v.id)) = priority;
}

void Model::add_constraint(LinExpr expr, CmpSense sense, double rhs, std::string name) {
    expr.normalize();
    rhs -= expr.constant();
    Constraint c;
    c.expr = std::move(expr);
    c.expr.add_constant(-c.expr.constant());  // fold constant into rhs
    c.sense = sense;
    c.rhs = rhs;
    c.name = std::move(name);
    constraints_.push_back(std::move(c));
}

void Model::add_le(LinExpr expr, double rhs, std::string name) {
    add_constraint(std::move(expr), CmpSense::Le, rhs, std::move(name));
}

void Model::add_ge(LinExpr expr, double rhs, std::string name) {
    add_constraint(std::move(expr), CmpSense::Ge, rhs, std::move(name));
}

void Model::add_eq(LinExpr expr, double rhs, std::string name) {
    add_constraint(std::move(expr), CmpSense::Eq, rhs, std::move(name));
}

void Model::set_objective(LinExpr objective) {
    objective.normalize();
    objective_ = std::move(objective);
}

int Model::num_integer_vars() const noexcept {
    int n = 0;
    for (const VarType t : types_) n += t != VarType::Continuous ? 1 : 0;
    return n;
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
    if (values.size() != types_.size()) return false;
    for (std::size_t i = 0; i < types_.size(); ++i) {
        const double v = values[i];
        if (v < lb_[i] - tol || v > ub_[i] + tol) return false;
        if (types_[i] != VarType::Continuous && std::abs(v - std::round(v)) > tol) return false;
    }
    for (const Constraint& c : constraints_) {
        const double lhs = c.expr.evaluate(values);
        switch (c.sense) {
            case CmpSense::Le:
                if (lhs > c.rhs + tol) return false;
                break;
            case CmpSense::Ge:
                if (lhs < c.rhs - tol) return false;
                break;
            case CmpSense::Eq:
                if (std::abs(lhs - c.rhs) > tol) return false;
                break;
        }
    }
    return true;
}

namespace {
std::string num_str(double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

void append_expr(std::string& out, const LinExpr& e, const Model& m) {
    bool first = true;
    for (const auto& [id, c] : e.terms()) {
        if (c >= 0 && !first) out += " + ";
        if (c < 0) out += first ? "- " : " - ";
        if (std::abs(c) != 1.0) {
            out += num_str(std::abs(c));
            out += ' ';
        }
        out += m.var_name(id);
        first = false;
    }
    if (first) out += "0";
}
}  // namespace

std::string Model::to_lp_format() const {
    std::string out = "Maximize\n obj: ";
    append_expr(out, objective_, *this);
    out += "\nSubject To\n";
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
        const Constraint& c = constraints_[i];
        out += ' ';
        out += c.name.empty() ? "c" + std::to_string(i) : c.name;
        out += ": ";
        append_expr(out, c.expr, *this);
        switch (c.sense) {
            case CmpSense::Le: out += " <= "; break;
            case CmpSense::Ge: out += " >= "; break;
            case CmpSense::Eq: out += " = "; break;
        }
        out += num_str(c.rhs);
        out += '\n';
    }
    out += "Bounds\n";
    for (int i = 0; i < num_vars(); ++i) {
        const std::size_t idx = static_cast<std::size_t>(i);
        out += ' ' + num_str(lb_[idx]) + " <= " + names_[idx];
        if (ub_[idx] != kInfinity) out += " <= " + num_str(ub_[idx]);
        out += '\n';
    }
    std::string generals;
    std::string binaries;
    for (int i = 0; i < num_vars(); ++i) {
        const std::size_t idx = static_cast<std::size_t>(i);
        if (types_[idx] == VarType::Integer) generals += ' ' + names_[idx];
        if (types_[idx] == VarType::Binary) binaries += ' ' + names_[idx];
    }
    if (!generals.empty()) out += "Generals\n" + generals + "\n";
    if (!binaries.empty()) out += "Binaries\n" + binaries + "\n";
    out += "End\n";
    return out;
}

}  // namespace p4all::ilp
