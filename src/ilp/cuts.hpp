// Certified cutting planes for the branch-and-bound root.
//
// Two families attack the root integrality gap of placement MILPs:
//
//  * Chvátal–Gomory fractional cuts, seeded by the tableau row of a
//    fractional basic integer variable (LpOptions::gomory_probe). The float
//    multipliers are only a heuristic suggestion: the cut itself is rebuilt
//    from quantized exact rationals, so validity — "no integer-feasible
//    point is ever removed" — holds by construction, independent of solver
//    floating point.
//
//  * Knapsack cover cuts on nonnegative Le rows with binary variables: a
//    set C whose coefficients exactly exceed the rhs cannot be all-ones, so
//    Σ_C x_j ≤ |C|−1.
//
// Every cut carries a machine-checkable certificate (the exact multipliers
// / the cover set) that rides through CompileArtifacts; the audit layer
// re-derives the aggregation in its own rational arithmetic and rejects
// forged, tampered, or misrounded cuts (src/audit/cuts.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "support/rational.hpp"

namespace p4all::ilp {

/// Validity proof of one cut, checkable in exact arithmetic against the
/// original model only (node bounds never enter: cuts are globally valid).
struct CutCertificate {
    enum class Kind { Gomory, Cover };

    /// One bound-row term of a Gomory aggregation: adds mult·(x_var ≤ ub)
    /// when `upper`, else mult·(−x_var ≤ −lb); mult ≥ 0.
    struct BoundMult {
        int var = -1;
        bool upper = false;
        support::Rat mult;
    };

    Kind kind = Kind::Gomory;
    /// Gomory: sign-constrained aggregation multipliers, sparse over the
    /// extended row space — model rows first, then previously derived cuts
    /// in Solution::cuts order (later cuts may aggregate earlier ones, so
    /// the audit verifies cuts in sequence). Sign rules: ≥ 0 on Le rows,
    /// ≤ 0 on Ge rows, free on Eq rows.
    std::vector<std::pair<int, support::Rat>> row_mult;
    /// Gomory: bound substitutions used to eliminate variables that cannot
    /// legally be floored (continuous type or negative lower bound).
    std::vector<BoundMult> bound_mult;
    /// Cover: the source row (extended space) and the cover variable set.
    int cover_row = -1;
    std::vector<int> cover_vars;
};

/// A globally valid inequality expr ≤ rhs: every integer-feasible point of
/// the model satisfies it (the LP relaxation generally does not — that is
/// the point). expr has constant 0 and integer coefficients on
/// integer-typed variables with nonnegative lower bounds.
struct CertifiedCut {
    LinExpr expr;
    double rhs = 0.0;
    CutCertificate cert;
    std::string name;
};

struct CutLimits {
    int max_rounds = 8;
    int max_per_round = 16;
    int max_total = 64;
    /// Minimum violation g·x* − g0 at the current LP point for a cut to be
    /// worth pooling.
    double min_violation = 1e-4;
    /// Tailing-off guard: separation stops once a round's cuts improve the
    /// root bound by less than this fraction of |bound| (cuts that merely
    /// chase the LP vertex around a degenerate face cost a full re-solve
    /// per round and win nothing for the search).
    double min_round_improvement = 1e-6;
};

/// Builds an exact Chvátal–Gomory cut from float multiplier suggestions
/// (`mult`, sized model rows + prior cuts). Returns nullopt when the cut
/// cannot be made valid (needed bounds infinite, rational overflow) or is
/// not violated by `point` by at least `min_violation`.
[[nodiscard]] std::optional<CertifiedCut> build_gomory_cut(
    const Model& model, const std::vector<CertifiedCut>& prior,
    const std::vector<double>& mult, const std::vector<double>& point, double min_violation);

/// Builds a cover cut from model row `row` (extended space index allowed,
/// but separation only proposes original rows). Greedy cover by descending
/// LP value. Returns nullopt when the row does not qualify or the cut is
/// not violated.
[[nodiscard]] std::optional<CertifiedCut> build_cover_cut(const Model& model,
                                                          const std::vector<CertifiedCut>& prior,
                                                          int row, const std::vector<double>& point,
                                                          double min_violation);

/// One separation round at LP point `point`: Gomory cuts from the tableau
/// probe (empty for the dense backend) plus cover cuts from qualifying
/// rows, deduplicated against `prior` and each other, capped by `limits`
/// (`total_so_far` counts cuts already pooled). Deterministic: output order
/// is a pure function of the inputs.
[[nodiscard]] std::vector<CertifiedCut> separate_cuts(const Model& model,
                                                      const std::vector<CertifiedCut>& prior,
                                                      const std::vector<double>& point,
                                                      const std::vector<TableauRow>& probe,
                                                      const CutLimits& limits, int total_so_far);

}  // namespace p4all::ilp
