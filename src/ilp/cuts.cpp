#include "ilp/cuts.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/error.hpp"

namespace p4all::ilp {

namespace {

using support::Rat;

/// Coefficient magnitudes above this no longer convert exactly through
/// double (2^50 leaves headroom under the 53-bit mantissa); a cut that
/// needs them is abandoned rather than rounded.
const Rat kCoeffCap(std::int64_t{1} << 50);

/// Uniform view over the extended row space: model rows, then prior cuts
/// (always Le with constant-free expressions).
struct RowView {
    const LinExpr* expr = nullptr;
    CmpSense sense = CmpSense::Le;
    double rhs = 0.0;
};

RowView row_at(const Model& model, const std::vector<CertifiedCut>& prior, int r) {
    if (r < model.num_constraints()) {
        const Constraint& c = model.constraints()[static_cast<std::size_t>(r)];
        return {&c.expr, c.sense, c.rhs};
    }
    const CertifiedCut& c = prior[static_cast<std::size_t>(r - model.num_constraints())];
    return {&c.expr, CmpSense::Le, c.rhs};
}

/// Exact right-hand side of a row with its expression constant folded in.
Rat row_rhs(const RowView& row) {
    return Rat::from_double(row.rhs) - Rat::from_double(row.expr->constant());
}

/// True when the row's slack is integral at every integer point: integer
/// coefficients and rhs over integer-typed variables. Only such rows admit
/// the mod-1 multiplier reduction of the Gomory derivation.
bool row_is_integral(const Model& model, const RowView& row) {
    if (!row_rhs(row).is_integer()) return false;
    for (const auto& [id, a] : row.expr->terms()) {
        if (model.var_type(id) == VarType::Continuous) return false;
        if (!Rat::from_double(a).is_integer()) return false;
    }
    return true;
}

/// Canonical (sorted) term list for duplicate detection.
std::vector<std::pair<int, double>> sorted_terms(const LinExpr& e) {
    std::vector<std::pair<int, double>> t = e.terms();
    std::sort(t.begin(), t.end());
    return t;
}

bool same_cut(const CertifiedCut& a, const CertifiedCut& b) {
    return a.rhs == b.rhs && sorted_terms(a.expr) == sorted_terms(b.expr);
}

bool is_duplicate(const CertifiedCut& cut, const std::vector<CertifiedCut>& prior,
                  const std::vector<CertifiedCut>& round) {
    for (const CertifiedCut& p : prior) {
        if (same_cut(cut, p)) return true;
    }
    for (const CertifiedCut& p : round) {
        if (same_cut(cut, p)) return true;
    }
    return false;
}

}  // namespace

std::optional<CertifiedCut> build_gomory_cut(const Model& model,
                                             const std::vector<CertifiedCut>& prior,
                                             const std::vector<double>& mult,
                                             const std::vector<double>& point,
                                             double min_violation) {
    const int nrows = model.num_constraints() + static_cast<int>(prior.size());
    if (static_cast<int>(mult.size()) != nrows) return std::nullopt;
    try {
        // 1. Quantize and sign-fix the multiplier suggestions. Legal signs:
        // ≥ 0 on Le rows, ≤ 0 on Ge rows, free on Eq rows. Integral rows
        // additionally admit the mod-1 reduction (shifting a multiplier by
        // an integer changes the aggregation by an integer combination,
        // which the final flooring absorbs) — that is both how a
        // wrong-signed tableau multiplier becomes legal and how magnitudes
        // stay small; non-integral rows with illegal sign are dropped.
        std::vector<std::pair<int, Rat>> lam;
        for (int r = 0; r < nrows; ++r) {
            const double u = mult[static_cast<std::size_t>(r)];
            if (std::abs(u) < 1e-9 || std::abs(u) > 1e8 || !std::isfinite(u)) continue;
            Rat l = Rat::from_double_quantized(u, 40);
            if (l.is_zero()) continue;
            const RowView row = row_at(model, prior, r);
            if (row_is_integral(model, row)) {
                switch (row.sense) {
                    case CmpSense::Le: l = l.frac(); break;                  // → [0, 1)
                    case CmpSense::Ge: l = l + (-l).floor(); break;          // → (−1, 0]
                    case CmpSense::Eq: l = l.frac(); break;                  // magnitude only
                }
            } else if ((row.sense == CmpSense::Le && l.negative()) ||
                       (row.sense == CmpSense::Ge && l.positive())) {
                continue;  // illegal sign, no legal reduction
            }
            if (!l.is_zero()) lam.emplace_back(r, l);
        }
        if (lam.empty()) return std::nullopt;

        // 2. Exact aggregation d·x ≤ d0 (valid for every feasible point).
        std::vector<Rat> d(static_cast<std::size_t>(model.num_vars()));
        Rat d0;
        for (const auto& [r, l] : lam) {
            const RowView row = row_at(model, prior, r);
            for (const auto& [id, a] : row.expr->terms()) {
                d[static_cast<std::size_t>(id)] += l * Rat::from_double(a);
            }
            d0 += l * row_rhs(row);
        }

        // 3. Per-variable treatment. Integer-typed variables keep an integer
        // coefficient via the CG step, rounded in whichever direction loses
        // the least violation at the separation point: flooring (sound when
        // x_j ≥ 0) costs f_j·x*_j, ceiling — complementing through a finite
        // upper bound with multiplier ⌈d_j⌉ − d_j — costs (1−f_j)(ub − x*_j).
        // Without the ceiling option every nonbasic variable resting at a
        // large upper bound buries the cut in slack. Continuous variables
        // (and integers with neither rounding legal) are eliminated through
        // a finite bound; an infinite needed bound abandons the cut.
        LinExpr g;
        Rat g0 = d0;
        std::vector<CutCertificate::BoundMult> bounds;
        for (int j = 0; j < model.num_vars(); ++j) {
            const Rat& dj = d[static_cast<std::size_t>(j)];
            if (dj.is_zero()) continue;
            const double lbj = model.lower_bound(j);
            const double ubj = model.upper_bound(j);
            if (model.var_type(j) != VarType::Continuous && dj.is_integer()) {
                // Exact integer coefficient: g_j = D_j needs no rounding and
                // no sign condition on the variable.
                if (dj.abs() > kCoeffCap) return std::nullopt;
                g.add(Var{j}, dj.to_double());
                continue;
            }
            const bool can_floor =
                model.var_type(j) != VarType::Continuous && lbj >= 0.0;
            const bool can_ceil =
                model.var_type(j) != VarType::Continuous && ubj != kInfinity;
            if (can_floor || can_ceil) {
                const double xj = point[static_cast<std::size_t>(j)];
                const double f = (dj - dj.floor()).to_double();
                const double loss_floor = can_floor ? f * xj : kInfinity;
                const double loss_ceil = can_ceil ? (1.0 - f) * (ubj - xj) : kInfinity;
                if (loss_floor <= loss_ceil) {
                    const Rat gj = dj.floor();
                    if (gj.abs() > kCoeffCap) return std::nullopt;
                    if (!gj.is_zero()) g.add(Var{j}, gj.to_double());
                } else {
                    const Rat gj = dj.floor() + Rat(std::int64_t{1});
                    if (gj.abs() > kCoeffCap) return std::nullopt;
                    const Rat w = gj - dj;  // ∈ (0, 1): multiplier on x_j ≤ ub_j
                    bounds.push_back({j, true, w});
                    g0 += w * Rat::from_double(ubj);
                    if (!gj.is_zero()) g.add(Var{j}, gj.to_double());
                }
            } else if (dj.positive()) {
                const double lb = model.lower_bound(j);
                if (lb == -kInfinity) return std::nullopt;
                bounds.push_back({j, false, dj});
                g0 -= dj * Rat::from_double(lb);
            } else {
                const double ub = model.upper_bound(j);
                if (ub == kInfinity) return std::nullopt;
                bounds.push_back({j, true, -dj});
                g0 += (-dj) * Rat::from_double(ub);
            }
        }
        // Every kept coefficient is an integer on an integer-typed
        // variable, so the left side is integral at integer points and the
        // rhs may be floored.
        g0 = g0.floor();
        if (g0.abs() > kCoeffCap) return std::nullopt;
        g.normalize();
        if (g.terms().empty()) return std::nullopt;

        // 4. Only violated cuts are worth pooling.
        const double violation = g.evaluate(point) - g0.to_double();
        if (!(violation >= min_violation)) return std::nullopt;

        CertifiedCut cut;
        cut.expr = std::move(g);
        cut.rhs = g0.to_double();
        cut.cert.kind = CutCertificate::Kind::Gomory;
        cut.cert.row_mult = std::move(lam);
        cut.cert.bound_mult = std::move(bounds);
        return cut;
    } catch (const support::CompileError&) {
        return std::nullopt;  // rational overflow: abandon, never round
    }
}

std::optional<CertifiedCut> build_cover_cut(const Model& model,
                                            const std::vector<CertifiedCut>& prior, int row,
                                            const std::vector<double>& point,
                                            double min_violation) {
    const int nrows = model.num_constraints() + static_cast<int>(prior.size());
    if (row < 0 || row >= nrows) return std::nullopt;
    const RowView rv = row_at(model, prior, row);
    if (rv.sense != CmpSense::Le) return std::nullopt;
    try {
        // Qualification: all per-variable coefficients ≥ 0 and all
        // participating variables ≥ 0, so that forcing the cover to all-ones
        // bounds the row activity from below. Duplicate terms are summed
        // exactly first — the audit-side re-derivation aggregates the same
        // way, so builder and verifier always agree.
        std::map<int, Rat> coeff;
        for (const auto& [id, a] : rv.expr->terms()) coeff[id] += Rat::from_double(a);
        std::vector<int> binaries;
        for (const auto& [id, a] : coeff) {
            if (a.negative() || model.lower_bound(id) < 0.0) return std::nullopt;
            const bool binary = model.var_type(id) != VarType::Continuous &&
                                model.upper_bound(id) <= 1.0 && a.positive();
            if (binary) binaries.push_back(id);
        }
        if (binaries.size() < 2) return std::nullopt;

        // Greedy cover: take binaries by descending LP value (index
        // ascending on ties — determinism) until the exact coefficient sum
        // exceeds the rhs.
        std::sort(binaries.begin(), binaries.end(), [&](int a, int b) {
            const double xa = point[static_cast<std::size_t>(a)];
            const double xb = point[static_cast<std::size_t>(b)];
            if (xa != xb) return xa > xb;
            return a < b;
        });
        const Rat b = row_rhs(rv);
        Rat acc;
        std::vector<int> cover;
        for (const int id : binaries) {
            cover.push_back(id);
            acc += coeff.at(id);
            if (acc > b) break;
        }
        if (!(acc > b)) return std::nullopt;  // row admits the all-ones cover point

        double lhs = 0.0;
        for (const int id : cover) lhs += point[static_cast<std::size_t>(id)];
        const double rhs = static_cast<double>(cover.size()) - 1.0;
        if (!(lhs - rhs >= min_violation)) return std::nullopt;

        std::sort(cover.begin(), cover.end());
        CertifiedCut cut;
        for (const int id : cover) cut.expr.add(Var{id}, 1.0);
        cut.rhs = rhs;
        cut.cert.kind = CutCertificate::Kind::Cover;
        cut.cert.cover_row = row;
        cut.cert.cover_vars = std::move(cover);
        return cut;
    } catch (const support::CompileError&) {
        return std::nullopt;
    }
}

std::vector<CertifiedCut> separate_cuts(const Model& model,
                                        const std::vector<CertifiedCut>& prior,
                                        const std::vector<double>& point,
                                        const std::vector<TableauRow>& probe,
                                        const CutLimits& limits, int total_so_far) {
    std::vector<CertifiedCut> out;
    const int budget = std::min(limits.max_per_round, limits.max_total - total_so_far);
    if (budget <= 0) return out;

    // Gomory cuts first (probe order == basis row order: deterministic).
    // Each probe row yields up to two candidates: the raw tableau
    // multipliers, and — when those fail or are unviolated — the same
    // multipliers projected onto the integral rows only. Dropping the
    // non-integral multipliers removes every continuous variable from the
    // aggregation, so no bound-elimination slack is paid for them; on
    // placement models whose tableaus mix big-M rows with combinatorial
    // ones, the projection is often the only violated variant.
    for (const TableauRow& tr : probe) {
        if (static_cast<int>(out.size()) >= budget) break;
        auto cut = build_gomory_cut(model, prior, tr.mult, point, limits.min_violation);
        if (!cut) {
            std::vector<double> proj = tr.mult;
            bool changed = false;
            for (int r = 0; r < static_cast<int>(proj.size()); ++r) {
                if (proj[static_cast<std::size_t>(r)] == 0.0) continue;
                if (!row_is_integral(model, row_at(model, prior, r))) {
                    proj[static_cast<std::size_t>(r)] = 0.0;
                    changed = true;
                }
            }
            if (changed) {
                cut = build_gomory_cut(model, prior, proj, point, limits.min_violation);
            }
        }
        if (!cut || is_duplicate(*cut, prior, out)) continue;
        cut->name = "gomory(" + model.var_name(tr.var) + ")";
        out.push_back(std::move(*cut));
    }
    // Cover cuts from qualifying original rows.
    for (int r = 0; r < model.num_constraints(); ++r) {
        if (static_cast<int>(out.size()) >= budget) break;
        auto cut = build_cover_cut(model, prior, r, point, limits.min_violation);
        if (!cut || is_duplicate(*cut, prior, out)) continue;
        const std::string& rn = model.constraints()[static_cast<std::size_t>(r)].name;
        cut->name = "cover(" + (rn.empty() ? "row" + std::to_string(r) : rn) + ")";
        out.push_back(std::move(*cut));
    }
    return out;
}

}  // namespace p4all::ilp
