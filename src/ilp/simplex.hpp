// Dense two-phase primal simplex for LP relaxations.
//
// Solves  maximize c'x  s.t. model constraints and variable bounds,
// with optional per-call bound overrides so branch-and-bound can tighten
// bounds without copying the model. All lower bounds must be finite (true
// for every model the compiler builds: placements and sizes are ≥ 0).
//
// Implementation: variables are shifted to y = x - lb ≥ 0; finite upper
// bounds become explicit rows; Ge/Eq rows get artificial variables; phase 1
// minimizes the artificial sum, phase 2 optimizes the real objective.
// Dantzig pricing with an automatic switch to Bland's rule guards against
// cycling.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace p4all::ilp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterLimit };

struct LpResult {
    LpStatus status = LpStatus::IterLimit;
    double objective = 0.0;
    /// Valid upper bound on the true LP optimum: `objective` plus the exact
    /// cost-perturbation budget (== objective when perturbation is off).
    /// Branch-and-bound must prune against this, not `objective`.
    double bound = 0.0;
    std::vector<double> values;  // indexed by model variable id
    /// Dual multipliers, one per model constraint row, in the maximize
    /// convention: y ≥ 0 for Le rows, y ≤ 0 for Ge rows, free for Eq rows.
    /// Any sign-correct vector certifies the upper bound
    ///   Σ y_i·rhs_i + Σ_j max(d_j·lb_j, d_j·ub_j),  d_j = c_j − Σ_i y_i·A_ij,
    /// which the audit layer re-derives in exact rational arithmetic
    /// (audit/certificate.hpp). Empty unless status == Optimal.
    std::vector<double> duals;
    /// Exact objective error budget of the deterministic cost perturbation
    /// (== bound − objective; kept separately so certificate checks need not
    /// reconstruct it from two rounded doubles).
    double bound_slack = 0.0;
    int iterations = 0;
    /// True when IterLimit was caused by the deadline/cancellation rather
    /// than the iteration budget.
    bool deadline_hit = false;
    /// Structured diagnostic for non-Optimal statuses: DeadlineExceeded /
    /// Cancelled / ResourceLimit / NumericalTrouble (detected or injected).
    support::Errc error = support::Errc::None;
};

struct LpOptions {
    int max_iterations = 0;  // 0 ⇒ automatic (scales with model size)
    double tol = 1e-9;
    /// Deterministic cost perturbation scale. Placement LPs have huge
    /// optimal faces (stage symmetry); a tiny per-column cost tilt collapses
    /// the face to a vertex and avoids degenerate crawling. The induced
    /// bound error is accounted exactly in LpResult::bound. 0 disables.
    double perturbation = 1e-7;
    /// Extra entropy mixed into the deterministic perturbation: restarting a
    /// numerically stuck solve with a different seed tilts the face along a
    /// different direction. 0 reproduces the historical tilt; every value is
    /// fully reproducible (log the seed, replay the solve).
    std::uint64_t perturb_seed = 0;
    /// Run Bland's rule from the first iteration instead of engaging it only
    /// after a degenerate stall — slower but cycle-proof; the fallback
    /// driver's restart profile.
    bool force_bland = false;
    /// Cooperative wall-clock budget, polled inside the iteration loop (so a
    /// single long solve cannot overshoot a caller's time limit). Expiry
    /// returns IterLimit with deadline_hit set.
    support::Deadline deadline;
};

/// Solves the LP relaxation (integrality ignored). `lb`/`ub` override the
/// model bounds when non-null (must have size == model.num_vars()).
/// Implementation: bounded-variable primal simplex — variable bounds are
/// handled implicitly (nonbasic-at-lower/upper with bound flips), so the
/// tableau has one row per constraint only.
[[nodiscard]] LpResult solve_lp(const Model& model, const std::vector<double>* lb = nullptr,
                                const std::vector<double>* ub = nullptr,
                                const LpOptions& options = {});

/// Reference textbook implementation (explicit upper-bound rows, two-phase).
/// Much slower; used by tests as an independent oracle for solve_lp.
[[nodiscard]] LpResult solve_lp_textbook(const Model& model,
                                         const std::vector<double>* lb = nullptr,
                                         const std::vector<double>* ub = nullptr,
                                         const LpOptions& options = {});

}  // namespace p4all::ilp
