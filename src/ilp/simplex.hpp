// Dense two-phase primal simplex for LP relaxations.
//
// Solves  maximize c'x  s.t. model constraints and variable bounds,
// with optional per-call bound overrides so branch-and-bound can tighten
// bounds without copying the model. All lower bounds must be finite (true
// for every model the compiler builds: placements and sizes are ≥ 0).
//
// Implementation: variables are shifted to y = x - lb ≥ 0; finite upper
// bounds become explicit rows; Ge/Eq rows get artificial variables; phase 1
// minimizes the artificial sum, phase 2 optimizes the real objective.
// Dantzig pricing with an automatic switch to Bland's rule guards against
// cycling.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace p4all::ilp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterLimit };

/// A captured simplex basis: for each standard-form row the basic column
/// index, plus the nonbasic-at-upper flag of every standard-form column.
/// Column identities live in the producing backend's own standard form
/// (structurals, then slacks, then artificials), so a basis is only
/// meaningful when re-imported into the same backend for the same model —
/// possibly with different variable bounds, which is exactly the
/// branch-and-bound warm-start case: a child differs from its parent by one
/// bound, the parent's optimal basis stays dual-feasible, and the dual
/// simplex repairs primal feasibility in a handful of pivots.
struct SimplexBasis {
    std::vector<int> basic;               // standard-form row -> basic column
    std::vector<std::uint8_t> at_upper;   // standard-form column -> at upper bound
    /// Where the artificial block started when this basis was captured.
    /// Lets a later import remap column identities after rows were APPENDED
    /// to the model (the root cut loop): structural and slack indices are
    /// stable under row appends, artificials shift as a block. −1 on a
    /// default-constructed basis (import then requires an exact shape match).
    int artificial_start = -1;
    [[nodiscard]] bool empty() const noexcept { return basic.empty(); }
};

/// Raw material for deriving one Gomory fractional cut: the tableau-row
/// multipliers of a basic structural variable with fractional value, mapped
/// back to original model rows (folded singleton rows get multiplier 0).
/// These are heuristic float suggestions only — the cut itself is rebuilt in
/// exact rational arithmetic by ilp/cuts.cpp, so nothing downstream depends
/// on their accuracy.
struct TableauRow {
    int var = -1;               // model variable id (basic and fractional)
    double value = 0.0;         // its value in the optimal solution
    std::vector<double> mult;   // one multiplier per model constraint row
};

struct LpResult {
    LpStatus status = LpStatus::IterLimit;
    double objective = 0.0;
    /// Valid upper bound on the true LP optimum: `objective` plus the exact
    /// cost-perturbation budget (== objective when perturbation is off).
    /// Branch-and-bound must prune against this, not `objective`.
    double bound = 0.0;
    std::vector<double> values;  // indexed by model variable id
    /// Dual multipliers, one per model constraint row, in the maximize
    /// convention: y ≥ 0 for Le rows, y ≤ 0 for Ge rows, free for Eq rows.
    /// Any sign-correct vector certifies the upper bound
    ///   Σ y_i·rhs_i + Σ_j max(d_j·lb_j, d_j·ub_j),  d_j = c_j − Σ_i y_i·A_ij,
    /// which the audit layer re-derives in exact rational arithmetic
    /// (audit/certificate.hpp). Empty unless status == Optimal.
    std::vector<double> duals;
    /// Exact objective error budget of the deterministic cost perturbation
    /// (== bound − objective; kept separately so certificate checks need not
    /// reconstruct it from two rounded doubles).
    double bound_slack = 0.0;
    int iterations = 0;
    /// True when IterLimit was caused by the deadline/cancellation rather
    /// than the iteration budget.
    bool deadline_hit = false;
    /// Structured diagnostic for non-Optimal statuses: DeadlineExceeded /
    /// Cancelled / ResourceLimit / NumericalTrouble (detected or injected).
    support::Errc error = support::Errc::None;
};

struct LpOptions {
    int max_iterations = 0;  // 0 ⇒ automatic (scales with model size)
    double tol = 1e-9;
    /// Deterministic cost perturbation scale. Placement LPs have huge
    /// optimal faces (stage symmetry); a tiny per-column cost tilt collapses
    /// the face to a vertex and avoids degenerate crawling. The induced
    /// bound error is accounted exactly in LpResult::bound. 0 disables.
    double perturbation = 1e-7;
    /// Extra entropy mixed into the deterministic perturbation: restarting a
    /// numerically stuck solve with a different seed tilts the face along a
    /// different direction. 0 reproduces the historical tilt; every value is
    /// fully reproducible (log the seed, replay the solve).
    std::uint64_t perturb_seed = 0;
    /// Run Bland's rule from the first iteration instead of engaging it only
    /// after a degenerate stall — slower but cycle-proof; the fallback
    /// driver's restart profile.
    bool force_bland = false;
    /// Cooperative wall-clock budget, polled inside the iteration loop (so a
    /// single long solve cannot overshoot a caller's time limit). Expiry
    /// returns IterLimit with deadline_hit set.
    support::Deadline deadline;
    /// Warm-start basis (sparse backend only; dense ignores it). Installed
    /// before phase 1; when it proves dual-feasible under the current costs,
    /// the dual simplex restores primal feasibility directly and phase 1 is
    /// skipped entirely. A basis that fails to factorize or is not
    /// dual-feasible falls back to the cold two-phase path — a warm start
    /// can never change the result, only the route to it.
    const SimplexBasis* warm_basis = nullptr;
    /// When non-null and the solve ends Optimal, the optimal basis is
    /// written here (sparse backend only) for reuse by child nodes.
    SimplexBasis* capture_basis = nullptr;
    /// Frozen reference bounds for the deterministic cost perturbation
    /// (size == model.num_vars() when set). The perturbation magnitude is
    /// derived from these spans instead of the per-call bounds, making the
    /// perturbed cost vector constant across an entire branch-and-bound tree
    /// — the invariant that keeps a parent's optimal basis dual-feasible in
    /// its children. The exact bound_slack accounting still uses the
    /// per-call spans (which only shrink under branching), so LpResult::bound
    /// stays a valid upper bound at every node. Both backends honor this so
    /// their perturbed optima remain comparable.
    const std::vector<double>* perturb_ref_lb = nullptr;
    const std::vector<double>* perturb_ref_ub = nullptr;
    /// When non-null and the solve ends Optimal, the sparse backend deposits
    /// one TableauRow per fractional basic integer-typed structural variable
    /// (cut separation input). Dense backend ignores it.
    std::vector<TableauRow>* gomory_probe = nullptr;
    /// When non-null, the engine appends the (scaled, perturbed,
    /// minimize-form) objective value after every dual simplex pivot — the
    /// dual_simplex_test property suite asserts this sequence is monotone
    /// nondecreasing (equivalently: the certified upper bound on the true
    /// maximum never increases while dual feasibility is maintained).
    std::vector<double>* dual_pivot_trace = nullptr;
};

/// Solves the LP relaxation (integrality ignored). `lb`/`ub` override the
/// model bounds when non-null (must have size == model.num_vars()).
/// Implementation: bounded-variable primal simplex — variable bounds are
/// handled implicitly (nonbasic-at-lower/upper with bound flips), so the
/// tableau has one row per constraint only.
[[nodiscard]] LpResult solve_lp(const Model& model, const std::vector<double>* lb = nullptr,
                                const std::vector<double>* ub = nullptr,
                                const LpOptions& options = {});

/// Reference textbook implementation (explicit upper-bound rows, two-phase).
/// Much slower; used by tests as an independent oracle for solve_lp.
[[nodiscard]] LpResult solve_lp_textbook(const Model& model,
                                         const std::vector<double>* lb = nullptr,
                                         const std::vector<double>* ub = nullptr,
                                         const LpOptions& options = {});

}  // namespace p4all::ilp
