#include "ilp/simplex.hpp"

// Reference implementation: the straightforward textbook two-phase simplex
// with explicit upper-bound rows. Slower than the bounded-variable solver in
// simplex.cpp; kept as an independent oracle for randomized cross-checks.

#include <cmath>

#include "support/error.hpp"
#include "support/faultpoint.hpp"

namespace p4all::ilp {

namespace {

/// Dense tableau simplex working on the shifted problem.
class Tableau {
public:
    Tableau(const Model& model, const std::vector<double>& lb, const std::vector<double>& ub,
            const LpOptions& options)
        : model_(model), lb_(lb), ub_(ub), options_(options), n_(model.num_vars()) {
        build();
    }

    LpResult solve() {
        LpResult result;
        // Phase 1: minimize artificial sum (only if artificials exist).
        if (num_artificial_ > 0) {
            load_phase1_objective();
            const LpStatus st = iterate(result.iterations, /*phase1=*/true);
            if (st == LpStatus::IterLimit) {
                result.status = LpStatus::IterLimit;
                result.deadline_hit = deadline_hit_;
                result.error = error_;
                return result;
            }
            if (current_objective() > 1e-6) {
                result.status = LpStatus::Infeasible;
                return result;
            }
            pivot_out_artificials();
        }
        load_phase2_objective();
        const LpStatus st = iterate(result.iterations, /*phase1=*/false);
        result.status = st;
        if (st != LpStatus::Optimal) {
            result.deadline_hit = deadline_hit_;
            result.error = error_;
            return result;
        }

        result.values.assign(static_cast<std::size_t>(n_), 0.0);
        for (int i = 0; i < m_; ++i) {
            const int j = basis_[static_cast<std::size_t>(i)];
            if (j < n_) {
                result.values[static_cast<std::size_t>(j)] = rhs(i);
            }
        }
        for (int j = 0; j < n_; ++j) {
            result.values[static_cast<std::size_t>(j)] += lb_[static_cast<std::size_t>(j)];
        }
        // Maximize-convention duals for the model rows, read off the final
        // reduced costs of each row's slack/artificial column (see the
        // bounded solver for the sign derivation).
        const std::size_t model_rows = model_.constraints().size();
        result.duals.assign(model_rows, 0.0);
        for (std::size_t i = 0; i < model_rows; ++i) {
            result.duals[i] =
                static_cast<double>(dual_sign_[i]) * obj_[static_cast<std::size_t>(aux_col_[i])];
        }
        result.objective = model_.objective().evaluate(result.values);
        result.bound = result.objective;
        return result;
    }

private:
    // Column layout: [0, n_) structural (shifted), then slack/artificial.
    double& at(int row, int col) {
        return data_[static_cast<std::size_t>(row) * stride_ + static_cast<std::size_t>(col)];
    }
    [[nodiscard]] double get(int row, int col) const {
        return data_[static_cast<std::size_t>(row) * stride_ + static_cast<std::size_t>(col)];
    }
    double& rhs_ref(int row) { return at(row, cols_); }
    [[nodiscard]] double rhs(int row) const { return get(row, cols_); }
    double& obj(int col) { return obj_[static_cast<std::size_t>(col)]; }
    [[nodiscard]] double current_objective() const { return -obj_[static_cast<std::size_t>(cols_)]; }

    struct Row {
        std::vector<std::pair<int, double>> terms;  // structural coefficients
        CmpSense sense;
        bool negated = false;  // true if normalization flipped the row's sign
        double rhs;
    };

    void build() {
        // Collect rows: model constraints (shifted) + upper-bound rows.
        std::vector<Row> rows;
        for (const Constraint& c : model_.constraints()) {
            Row r;
            r.sense = c.sense;
            double shift = 0.0;
            for (const auto& [id, coeff] : c.expr.terms()) {
                shift += coeff * lb_[static_cast<std::size_t>(id)];
                r.terms.emplace_back(id, coeff);
            }
            r.rhs = c.rhs - shift;
            rows.push_back(std::move(r));
        }
        for (int j = 0; j < n_; ++j) {
            const double span =
                ub_[static_cast<std::size_t>(j)] - lb_[static_cast<std::size_t>(j)];
            if (span == kInfinity) continue;
            if (span < 0) {
                throw support::Error(support::Errc::InvalidModel,
                                     "simplex: lb > ub for variable '" + model_.var_name(j) + "'");
            }
            Row r;
            r.sense = CmpSense::Le;
            r.terms.emplace_back(j, 1.0);
            r.rhs = span;
            rows.push_back(std::move(r));
        }

        m_ = static_cast<int>(rows.size());
        // Count slack columns (Le and Ge rows each get one) and artificials
        // (Ge and Eq rows, plus Le rows with negative rhs).
        int num_slack = 0;
        num_artificial_ = 0;
        for (Row& r : rows) {
            if (r.rhs < 0) {
                // Normalize rhs ≥ 0 by negating the row.
                for (auto& [id, c] : r.terms) c = -c;
                r.rhs = -r.rhs;
                r.negated = true;
                if (r.sense == CmpSense::Le) r.sense = CmpSense::Ge;
                else if (r.sense == CmpSense::Ge) r.sense = CmpSense::Le;
            }
            if (r.sense != CmpSense::Eq) ++num_slack;
            if (r.sense != CmpSense::Le) ++num_artificial_;
        }
        cols_ = n_ + num_slack + num_artificial_;
        stride_ = static_cast<std::size_t>(cols_) + 1;
        data_.assign(static_cast<std::size_t>(m_) * stride_, 0.0);
        obj_.assign(stride_, 0.0);
        basis_.assign(static_cast<std::size_t>(m_), -1);
        aux_col_.assign(static_cast<std::size_t>(m_), 0);
        dual_sign_.assign(static_cast<std::size_t>(m_), 1);
        artificial_start_ = n_ + num_slack;

        int next_slack = n_;
        int next_artificial = artificial_start_;
        for (int i = 0; i < m_; ++i) {
            const Row& r = rows[static_cast<std::size_t>(i)];
            const std::size_t is = static_cast<std::size_t>(i);
            const int sigma_row = r.negated ? -1 : 1;
            for (const auto& [id, c] : r.terms) at(i, id) += c;
            rhs_ref(i) = r.rhs;
            switch (r.sense) {
                case CmpSense::Le:
                    at(i, next_slack) = 1.0;
                    aux_col_[is] = next_slack;
                    dual_sign_[is] = sigma_row;
                    basis_[static_cast<std::size_t>(i)] = next_slack++;
                    break;
                case CmpSense::Ge:
                    at(i, next_slack) = -1.0;
                    aux_col_[is] = next_slack;
                    dual_sign_[is] = -sigma_row;
                    ++next_slack;
                    at(i, next_artificial) = 1.0;
                    basis_[static_cast<std::size_t>(i)] = next_artificial++;
                    break;
                case CmpSense::Eq:
                    at(i, next_artificial) = 1.0;
                    aux_col_[is] = next_artificial;
                    dual_sign_[is] = sigma_row;
                    basis_[static_cast<std::size_t>(i)] = next_artificial++;
                    break;
            }
        }
    }

    /// Phase-1 objective: minimize Σ artificials. Expressed in reduced form
    /// by subtracting the rows whose basic variable is artificial.
    void load_phase1_objective() {
        std::fill(obj_.begin(), obj_.end(), 0.0);
        for (int j = artificial_start_; j < cols_; ++j) obj(j) = 1.0;
        for (int i = 0; i < m_; ++i) {
            if (basis_[static_cast<std::size_t>(i)] >= artificial_start_) {
                for (int j = 0; j <= cols_; ++j) {
                    obj_[static_cast<std::size_t>(j)] -= get(i, j);
                }
            }
        }
        phase1_ = true;
    }

    /// Phase-2 objective: minimize -c'y (i.e. maximize c'y), reduced
    /// against the current basis.
    void load_phase2_objective() {
        std::fill(obj_.begin(), obj_.end(), 0.0);
        for (const auto& [id, c] : model_.objective().terms()) obj(id) = -c;
        for (int i = 0; i < m_; ++i) {
            const int jb = basis_[static_cast<std::size_t>(i)];
            const double cb = obj_[static_cast<std::size_t>(jb)];
            if (cb == 0.0) continue;
            for (int j = 0; j <= cols_; ++j) {
                obj_[static_cast<std::size_t>(j)] -= cb * get(i, j);
            }
            // Restore exact zero on the basic column to fight drift.
            obj_[static_cast<std::size_t>(jb)] = 0.0;
        }
        phase1_ = false;
    }

    /// After phase 1, pivots remaining basic artificials out where possible
    /// (degenerate rows); rows that cannot pivot are redundant and harmless
    /// since the artificial is 0 and banned from re-entering.
    void pivot_out_artificials() {
        for (int i = 0; i < m_; ++i) {
            if (basis_[static_cast<std::size_t>(i)] < artificial_start_) continue;
            for (int j = 0; j < artificial_start_; ++j) {
                if (std::abs(get(i, j)) > 1e-7) {
                    pivot(i, j);
                    break;
                }
            }
        }
    }

    LpStatus iterate(int& iterations, bool phase1) {
        const int limit = options_.max_iterations > 0
                              ? options_.max_iterations
                              : 200 + 40 * (m_ + cols_);
        const double tol = options_.tol;
        int stall = 0;
        double last_obj = current_objective();
        bool bland = options_.force_bland;
        while (true) {
            if (iterations++ > limit) {
                error_ = support::Errc::ResourceLimit;
                return LpStatus::IterLimit;
            }
            // Deadline poll (amortized), mirroring the bounded solver: the
            // caller's wall budget binds inside a single solve, not only at
            // branch-and-bound node boundaries.
            if ((iterations & 15) == 1 && !options_.deadline.unlimited() &&
                options_.deadline.expired()) {
                deadline_hit_ = true;
                error_ = options_.deadline.cancelled() ? support::Errc::Cancelled
                                                       : support::Errc::DeadlineExceeded;
                return LpStatus::IterLimit;
            }
            // Entering column: reduced cost < -tol. Artificials never
            // re-enter; in phase 2 they are banned entirely.
            int enter = -1;
            double best = -tol;
            const int scan_end = phase1 ? cols_ : artificial_start_;
            for (int j = 0; j < scan_end; ++j) {
                if (j >= artificial_start_) continue;  // never re-enter
                const double r = obj_[static_cast<std::size_t>(j)];
                if (r < (bland ? -tol : best)) {
                    enter = j;
                    if (bland) break;  // first eligible (Bland)
                    best = r;
                }
            }
            if (enter < 0) return LpStatus::Optimal;

            // Ratio test.
            int leave = -1;
            double best_ratio = 0.0;
            for (int i = 0; i < m_; ++i) {
                const double a = get(i, enter);
                if (a <= tol) continue;
                const double ratio = rhs(i) / a;
                if (leave < 0 || ratio < best_ratio - 1e-12 ||
                    (std::abs(ratio - best_ratio) <= 1e-12 &&
                     basis_[static_cast<std::size_t>(i)] <
                         basis_[static_cast<std::size_t>(leave)])) {
                    leave = i;
                    best_ratio = ratio;
                }
            }
            if (leave < 0) return phase1 ? LpStatus::Infeasible : LpStatus::Unbounded;

            // Shared fault point with the bounded solver: simulates a pivot
            // breakdown so both implementations exercise the same path.
            if (support::fault_fires("simplex.pivot")) {
                error_ = support::Errc::NumericalTrouble;
                return LpStatus::IterLimit;
            }

            pivot(leave, enter);

            const double now = current_objective();
            if (std::abs(now - last_obj) < 1e-12) {
                if (++stall > 2 * (m_ + 8)) bland = true;  // anti-cycling
            } else {
                stall = 0;
                last_obj = now;
            }
        }
    }

    void pivot(int prow, int pcol) {
        const double p = get(prow, pcol);
        const double inv = 1.0 / p;
        for (int j = 0; j <= cols_; ++j) at(prow, j) *= inv;
        at(prow, pcol) = 1.0;
        for (int i = 0; i < m_; ++i) {
            if (i == prow) continue;
            const double f = get(i, pcol);
            if (f == 0.0) continue;
            for (int j = 0; j <= cols_; ++j) at(i, j) -= f * get(prow, j);
            at(i, pcol) = 0.0;
        }
        const double f = obj_[static_cast<std::size_t>(pcol)];
        if (f != 0.0) {
            for (int j = 0; j <= cols_; ++j) {
                obj_[static_cast<std::size_t>(j)] -= f * get(prow, j);
            }
            obj_[static_cast<std::size_t>(pcol)] = 0.0;
        }
        basis_[static_cast<std::size_t>(prow)] = pcol;
    }

    const Model& model_;
    const std::vector<double>& lb_;
    const std::vector<double>& ub_;
    const LpOptions& options_;

    int n_ = 0;     // structural variables
    int m_ = 0;     // tableau rows
    int cols_ = 0;  // total columns (structural + slack + artificial)
    std::size_t stride_ = 0;
    int artificial_start_ = 0;
    int num_artificial_ = 0;
    bool phase1_ = false;

    std::vector<double> data_;  // m_ rows × (cols_+1), last col = rhs
    std::vector<double> obj_;   // objective row, cols_+1 entries
    std::vector<int> basis_;
    std::vector<int> aux_col_;   // row -> slack/artificial column (duals)
    std::vector<int> dual_sign_; // row -> σrow·σcol sign for dual readout
    bool deadline_hit_ = false;  // IterLimit caused by deadline/cancel
    support::Errc error_ = support::Errc::None;
};

}  // namespace

LpResult solve_lp_textbook(const Model& model, const std::vector<double>* lb,
                  const std::vector<double>* ub, const LpOptions& options) {
    std::vector<double> lb_local;
    std::vector<double> ub_local;
    if (lb == nullptr) {
        lb_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            lb_local[static_cast<std::size_t>(j)] = model.lower_bound(j);
        }
        lb = &lb_local;
    }
    if (ub == nullptr) {
        ub_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            ub_local[static_cast<std::size_t>(j)] = model.upper_bound(j);
        }
        ub = &ub_local;
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        if ((*lb)[static_cast<std::size_t>(j)] == -kInfinity) {
            throw support::Error(support::Errc::InvalidModel,
                                 "simplex: variable '" + model.var_name(j) +
                                     "' has an infinite lower bound (unsupported)");
        }
    }
    Tableau tableau(model, *lb, *ub, options);
    return tableau.solve();
}

}  // namespace p4all::ilp
