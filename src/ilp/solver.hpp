// MILP solving: branch-and-bound over the simplex relaxation, plus an
// exhaustive reference solver used to cross-validate on small models.
// This stack replaces the Gurobi optimizer used by the paper's prototype.
#pragma once

#include <cstdint>
#include <string>

#include "ilp/cuts.hpp"
#include "ilp/model.hpp"
#include "ilp/revised_simplex.hpp"
#include "ilp/simplex.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace p4all::ilp {

/// Which search engine explores the branch-and-bound tree.
enum class SearchMode {
    /// Serial depth-first dive (the historical engine): minimal memory,
    /// reaches incumbents fast on placement models.
    Dfs,
    /// Deterministic parallel best-first search. Nodes carry a global
    /// best-first order (bound desc, then newest-first so bound plateaus
    /// are dived depth-first rather than swept breadth-first); each round the
    /// engine pops a fixed-size batch, relaxes the batch's LPs on a
    /// work-stealing std::jthread pool, and commits the results serially in
    /// batch order (incumbent updates, pruning, branching). Because the
    /// batch composition and the commit order depend only on the model —
    /// never on thread timing — the search tree, the incumbent, the node
    /// count, and the LP iteration total are bit-identical for any thread
    /// count, including 1.
    BestFirst,
};

enum class SolveStatus { Optimal, Infeasible, Unbounded, Limit };

struct Solution {
    SolveStatus status = SolveStatus::Limit;
    double objective = 0.0;
    std::vector<double> values;  // indexed by model variable id

    /// Root-relaxation certificate: the duals of the root LP (maximize
    /// convention, one per model constraint) and the perturbation budget of
    /// that solve. Any sign-correct dual vector witnesses a global upper
    /// bound on the MILP optimum; the audit layer re-derives that bound in
    /// exact rational arithmetic and checks it against the incumbent
    /// (audit/certificate.hpp). Empty when the root LP was not solved to
    /// optimality.
    /// One entry per model constraint, then one per entry of `cuts` (the
    /// root certificate is taken over the cut-extended root relaxation).
    std::vector<double> root_duals;
    double root_bound = 0.0;        // solver's float view of the root bound
    double root_bound_slack = 0.0;  // root LP perturbation budget

    /// Cutting planes active in the root relaxation that produced
    /// root_duals, in derivation order, each with its exact-rational
    /// validity certificate. The audit layer re-verifies every certificate
    /// independently and extends the model by the verified rows before
    /// re-deriving the weak-duality bound (src/audit/cuts.cpp).
    std::vector<CertifiedCut> cuts;

    // Statistics.
    std::int64_t nodes = 0;
    std::int64_t lp_iterations = 0;
    double seconds = 0.0;

    /// Structured diagnostic for Limit (and other non-Optimal) statuses:
    /// DeadlineExceeded / Cancelled / ResourceLimit / NumericalTrouble /
    /// DomainTooLarge, with a human-readable detail. None when Optimal.
    support::Errc error = support::Errc::None;
    std::string error_detail;

    [[nodiscard]] bool optimal() const noexcept { return status == SolveStatus::Optimal; }
    /// Rounded value of an integer/binary variable.
    [[nodiscard]] std::int64_t value_int(Var v) const;
};

struct SolveOptions {
    double time_limit_seconds = 120.0;
    std::int64_t max_nodes = 2'000'000;
    double int_tol = 1e-6;
    /// Optimality gap: a node is pruned when its bound is within
    /// max(gap_absolute, gap_relative·|incumbent|) of the incumbent.
    /// Mirrors production MILP-solver defaults; also absorbs the simplex
    /// cost-perturbation slack so proof trees close.
    double gap_absolute = 1e-5;
    double gap_relative = 1e-6;
    LpOptions lp;
    /// Which simplex implementation relaxes every node (and therefore which
    /// backend produces Solution::root_duals / root_bound_slack — the root
    /// certificate is routed through the backend-agnostic LpResult contract,
    /// so the audit layer never needs to know which solver ran).
    LpBackend lp_backend = LpBackend::Dense;
    /// Search engine; Dfs preserves the historical serial behavior.
    SearchMode search = SearchMode::Dfs;
    /// Worker threads for SearchMode::BestFirst (ignored by Dfs). 0 picks
    /// the hardware concurrency. Results are identical for every value —
    /// threads only split the LP work inside a batch.
    int threads = 1;
    /// Optional known-feasible assignment (e.g. from a heuristic) used as
    /// the initial incumbent; ignored if it fails the feasibility check.
    std::vector<double> warm_start;
    /// Root cutting planes (certified Gomory + knapsack covers). When on,
    /// the root relaxation is tightened by separation rounds before
    /// branch-and-bound starts; every pooled cut carries an exact-rational
    /// validity certificate in Solution::cuts. Off restores the plain root
    /// relaxation (the portfolio's numerically-conservative rungs use this).
    bool cuts_enabled = true;
    CutLimits cut_limits;
    /// Warm-start each branch-and-bound child LP from its parent's optimal
    /// basis via dual simplex (sparse backend only; the dense backend and
    /// cold solves are unaffected). A child differs from its parent by one
    /// variable bound, so the parent basis is dual-feasible and typically a
    /// handful of pivots from the child optimum. Never changes any result —
    /// only the route to it — so determinism and the differential oracle are
    /// preserved; off forces every node to solve from scratch.
    bool warm_start_lp = true;
    /// Cooperative wall-clock budget / cancellation, combined with
    /// time_limit_seconds (the tighter bound wins) and threaded into every
    /// LP solve so no single simplex run can overshoot it.
    support::Deadline deadline;
};

/// Exact branch-and-bound. Returns Optimal with the best solution, or
/// Infeasible/Unbounded, or Limit (with the incumbent, if any, in `values`).
[[nodiscard]] Solution solve_milp(const Model& model, const SolveOptions& options = {});

/// Reference solver: enumerates every integer assignment within bounds,
/// solving an LP for the continuous remainder. Exact but exponential —
/// tests and tiny-model fallback only. Unbounded integer domains or a
/// combination count above `max_combinations` yield SolveStatus::Limit with
/// error == Errc::DomainTooLarge (never a throw), so portfolio drivers can
/// fall through; an expired deadline yields Limit with the best-so-far
/// incumbent.
[[nodiscard]] Solution solve_exhaustive(const Model& model,
                                        std::int64_t max_combinations = 1 << 22,
                                        const support::Deadline& deadline = {});

}  // namespace p4all::ilp
