#include "ilp/lp_format.hpp"

#include <cctype>
#include <charconv>
#include <map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace p4all::ilp {

namespace {

enum class Section { None, Objective, Constraints, Bounds, Generals, Binaries, End };

/// Incremental parser state: variables are created on first mention with
/// default bounds [0, inf) and patched by Bounds/Generals/Binaries lines.
class LpReader {
public:
    Model finish(std::string_view text) {
        int line_no = 0;
        bool minimize = false;
        for (const std::string& raw : support::split(text, '\n')) {
            ++line_no;
            std::string_view line = support::trim(raw);
            if (line.empty() || line.front() == '\\') continue;  // LP comments
            const std::string lower = to_lower(line);
            if (lower == "maximize" || lower == "max") {
                section_ = Section::Objective;
                minimize = false;
                continue;
            }
            if (lower == "minimize" || lower == "min") {
                section_ = Section::Objective;
                minimize = true;
                continue;
            }
            if (lower == "subject to" || lower == "st" || lower == "s.t.") {
                section_ = Section::Constraints;
                continue;
            }
            if (lower == "bounds") {
                section_ = Section::Bounds;
                continue;
            }
            if (lower == "generals" || lower == "general") {
                section_ = Section::Generals;
                continue;
            }
            if (lower == "binaries" || lower == "binary") {
                section_ = Section::Binaries;
                continue;
            }
            if (lower == "end") {
                section_ = Section::End;
                continue;
            }
            handle_line(line, line_no);
        }
        // Apply integrality and bounds patches.
        Model model;
        std::map<std::string, Var> built;
        for (const std::string& name : order_) {
            const VarInfo& info = vars_.at(name);
            built[name] = model.add_var(name, info.type, info.lb, info.ub);
        }
        for (const PendingRow& row : rows_) {
            LinExpr e;
            for (const auto& [name, coeff] : row.terms) e.add(built.at(name), coeff);
            switch (row.sense) {
                case CmpSense::Le: model.add_le(std::move(e), row.rhs, row.name); break;
                case CmpSense::Ge: model.add_ge(std::move(e), row.rhs, row.name); break;
                case CmpSense::Eq: model.add_eq(std::move(e), row.rhs, row.name); break;
            }
        }
        LinExpr obj;
        for (const auto& [name, coeff] : objective_) {
            obj.add(built.at(name), minimize ? -coeff : coeff);
        }
        model.set_objective(std::move(obj));
        return model;
    }

private:
    struct VarInfo {
        VarType type = VarType::Continuous;
        double lb = 0.0;
        double ub = kInfinity;
    };
    struct PendingRow {
        std::string name;
        std::vector<std::pair<std::string, double>> terms;
        CmpSense sense = CmpSense::Le;
        double rhs = 0.0;
    };

    static std::string to_lower(std::string_view s) {
        std::string out(s);
        for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        return out;
    }

    [[noreturn]] static void fail(int line_no, const std::string& why) {
        throw support::Error(support::Errc::ParseError,
                             "lp parse error at line " + std::to_string(line_no) +
                                 ": " + why);
    }

    void touch(const std::string& name) {
        if (vars_.emplace(name, VarInfo{}).second) order_.push_back(name);
    }

    /// Parses "±c x ±c y ± k ..." into (name, coeff) pairs plus a constant
    /// sum (numbers with no variable); returns the rest (relational operator
    /// onwards) via `tail`.
    std::vector<std::pair<std::string, double>> parse_terms(std::string_view text, int line_no,
                                                            std::string_view& tail,
                                                            double& constant) {
        std::vector<std::pair<std::string, double>> terms;
        constant = 0.0;
        std::size_t i = 0;
        const auto skip_ws = [&] {
            while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
        };
        while (true) {
            skip_ws();
            if (i >= text.size() || text[i] == '<' || text[i] == '>' || text[i] == '=') break;
            double sign = 1.0;
            bool seen_sign = false;
            if (text[i] == '+' || text[i] == '-') {
                sign = text[i] == '-' ? -1.0 : 1.0;
                seen_sign = true;
                ++i;
                skip_ws();
            }
            double coeff = 1.0;
            bool seen_number = false;
            if (i < text.size() &&
                (std::isdigit(static_cast<unsigned char>(text[i])) != 0 || text[i] == '.')) {
                const char* begin = text.data() + i;
                const char* end = text.data() + text.size();
                const auto [p, ec] = std::from_chars(begin, end, coeff);
                if (ec != std::errc()) fail(line_no, "bad coefficient");
                i = static_cast<std::size_t>(p - text.data());
                seen_number = true;
                skip_ws();
            }
            const std::size_t name_start = i;
            while (i < text.size() && ((std::isalnum(static_cast<unsigned char>(text[i])) != 0 &&
                                        (i > name_start ||
                                         std::isdigit(static_cast<unsigned char>(text[i])) == 0)) ||
                                       text[i] == '_')) {
                ++i;
            }
            if (i == name_start) {
                if (seen_number) {
                    constant += sign * coeff;  // standalone constant term
                    continue;
                }
                if (seen_sign) fail(line_no, "dangling sign");
                break;
            }
            std::string name(text.substr(name_start, i - name_start));
            touch(name);
            terms.emplace_back(std::move(name), sign * coeff);
        }
        tail = text.substr(i);
        return terms;
    }

    void handle_line(std::string_view line, int line_no) {
        switch (section_) {
            case Section::Objective: {
                std::string body(line);
                if (const auto colon = body.find(':'); colon != std::string::npos) {
                    body = body.substr(colon + 1);
                }
                std::string_view tail;
                double ignored_constant = 0.0;
                const auto terms = parse_terms(body, line_no, tail, ignored_constant);
                objective_.insert(objective_.end(), terms.begin(), terms.end());
                if (!support::trim(tail).empty()) fail(line_no, "trailing objective text");
                return;
            }
            case Section::Constraints: {
                PendingRow row;
                std::string body(line);
                if (const auto colon = body.find(':'); colon != std::string::npos) {
                    row.name = std::string(support::trim(body.substr(0, colon)));
                    body = body.substr(colon + 1);
                }
                std::string_view tail;
                double lhs_constant = 0.0;
                row.terms = parse_terms(body, line_no, tail, lhs_constant);
                tail = support::trim(tail);
                if (support::starts_with(tail, "<=")) {
                    row.sense = CmpSense::Le;
                    tail.remove_prefix(2);
                } else if (support::starts_with(tail, ">=")) {
                    row.sense = CmpSense::Ge;
                    tail.remove_prefix(2);
                } else if (support::starts_with(tail, "=")) {
                    row.sense = CmpSense::Eq;
                    tail.remove_prefix(1);
                } else {
                    fail(line_no, "missing relational operator");
                }
                tail = support::trim(tail);
                const auto [p, ec] =
                    std::from_chars(tail.data(), tail.data() + tail.size(), row.rhs);
                if (ec != std::errc() || p != tail.data() + tail.size()) {
                    fail(line_no, "bad right-hand side");
                }
                row.rhs -= lhs_constant;  // fold constant lhs terms across
                rows_.push_back(std::move(row));
                return;
            }
            case Section::Bounds: {
                // Forms: "lo <= var", "lo <= var <= hi".
                const auto parts = support::split(std::string(line), ' ');
                std::vector<std::string> tokens;
                for (const std::string& part : parts) {
                    if (!support::trim(part).empty()) tokens.emplace_back(support::trim(part));
                }
                if (tokens.size() != 3 && tokens.size() != 5) fail(line_no, "bad bounds line");
                if (tokens[1] != "<=") fail(line_no, "bad bounds line");
                double lo = 0.0;
                {
                    const auto [p, ec] =
                        std::from_chars(tokens[0].data(), tokens[0].data() + tokens[0].size(), lo);
                    if (ec != std::errc()) fail(line_no, "bad lower bound");
                }
                const std::string& var = tokens[2];
                touch(var);
                vars_[var].lb = lo;
                if (tokens.size() == 5) {
                    if (tokens[3] != "<=") fail(line_no, "bad bounds line");
                    double hi = 0.0;
                    const auto [p, ec] =
                        std::from_chars(tokens[4].data(), tokens[4].data() + tokens[4].size(), hi);
                    if (ec != std::errc()) fail(line_no, "bad upper bound");
                    vars_[var].ub = hi;
                }
                return;
            }
            case Section::Generals:
            case Section::Binaries: {
                for (const std::string& part : support::split(std::string(line), ' ')) {
                    const std::string name(support::trim(part));
                    if (name.empty()) continue;
                    touch(name);
                    VarInfo& info = vars_[name];
                    if (section_ == Section::Binaries) {
                        info.type = VarType::Binary;
                        info.lb = std::max(info.lb, 0.0);
                        info.ub = std::min(info.ub, 1.0);
                    } else {
                        info.type = VarType::Integer;
                    }
                }
                return;
            }
            case Section::None:
            case Section::End:
                fail(line_no, "content outside any section");
        }
    }

    Section section_ = Section::None;
    std::map<std::string, VarInfo> vars_;
    std::vector<std::string> order_;
    std::vector<std::pair<std::string, double>> objective_;
    std::vector<PendingRow> rows_;
};

}  // namespace

Model parse_lp_format(std::string_view text) {
    LpReader reader;
    return reader.finish(text);
}

}  // namespace p4all::ilp
