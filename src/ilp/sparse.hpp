// Sparse linear algebra for the revised simplex.
//
// Two pieces, both deliberately small and fully deterministic:
//
//   CscMatrix            compressed-sparse-column storage of the standard-
//                        form constraint matrix. Placement MILPs are very
//                        sparse (each placement column touches a handful of
//                        rows), so per-iteration work priced against nnz
//                        instead of m·n is the main speed lever over the
//                        dense tableau in simplex.cpp.
//
//   BasisFactorization   factors of the current basis B with an eta file
//                        (product-form updates) layered on top. Simplex
//                        bases of placement LPs are dominated by slack and
//                        near-unit columns, so refactorization first peels
//                        the cascade of column singletons into a permuted
//                        triangular factor (pure bookkeeping, no fill) and
//                        only LU-factorizes the small dense "bump" that
//                        remains — FTRAN/BTRAN then cost O(nnz + bump²)
//                        instead of O(m²). Each pivot appends one sparse
//                        eta vector on top; periodic refactorization
//                        (eta-file length cap) bounds both the per-solve
//                        cost and the accumulated rounding error;
//                        residual_inf() measures ‖B·B⁻¹−I‖∞ so tests can
//                        assert the factorization never degrades.
#pragma once

#include <cstdint>
#include <vector>

namespace p4all::ilp {

/// Compressed-sparse-column matrix (double entries, int indices).
/// Immutable after construction; rows within a column are sorted.
class CscMatrix {
public:
    struct Triplet {
        int row = 0;
        int col = 0;
        double value = 0.0;
    };

    CscMatrix() = default;

    /// Builds from (row, col, value) triplets. Duplicate (row, col) entries
    /// are summed; exact zeros (including sums that cancel) are dropped.
    [[nodiscard]] static CscMatrix from_triplets(int rows, int cols,
                                                 std::vector<Triplet> triplets);

    /// Builds from a dense row-major matrix, dropping exact zeros.
    [[nodiscard]] static CscMatrix from_dense(int rows, int cols,
                                              const std::vector<double>& row_major);

    /// Dense row-major rendering (tests: dense ↔ sparse round trips).
    [[nodiscard]] std::vector<double> to_dense() const;

    [[nodiscard]] int rows() const noexcept { return rows_; }
    [[nodiscard]] int cols() const noexcept { return cols_; }
    [[nodiscard]] std::int64_t nonzeros() const noexcept {
        return static_cast<std::int64_t>(values_.size());
    }

    /// Column j's entries live at indices [col_begin(j), col_end(j)).
    [[nodiscard]] std::size_t col_begin(int j) const {
        return col_ptr_[static_cast<std::size_t>(j)];
    }
    [[nodiscard]] std::size_t col_end(int j) const {
        return col_ptr_[static_cast<std::size_t>(j) + 1];
    }
    [[nodiscard]] int entry_row(std::size_t k) const { return row_idx_[k]; }
    [[nodiscard]] double entry_value(std::size_t k) const { return values_[k]; }

    /// Sparse dot of column j with a dense vector: Σ_i A_ij · y_i.
    [[nodiscard]] double dot_col(int j, const std::vector<double>& y) const;

    /// dense += scale · A_j (scatter; `dense` must have size rows()).
    void axpy_col(int j, double scale, std::vector<double>& dense) const;

    /// Writes column j into `dense` (zeroing it first; size rows()).
    void scatter_col(int j, std::vector<double>& dense) const;

private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<std::size_t> col_ptr_;  // cols+1 entries
    std::vector<int> row_idx_;
    std::vector<double> values_;
};

/// Factors of the simplex basis plus a product-form eta file.
///
/// refactorize() peels the cascade of column singletons: any basis column
/// with exactly one entry in a still-active row pivots there, deactivating
/// the row and often exposing new singletons (slack, artificial, and
/// near-unit placement columns all peel this way). Under the induced
/// permutation the peeled block is upper triangular with no entries in the
/// remaining rows, so B factors as [U11 B12; 0 B22] and only the dense
/// "bump" B22 needs an LU with partial pivoting — on placement bases the
/// bump is typically a few percent of m.
/// update() appends one eta per pivot: with w = B⁻¹a for the entering
/// column a replacing basis position p, B' = B·E where E is the identity
/// with column p replaced by w, so B'⁻¹ = E⁻¹B⁻¹ and E⁻¹ is stored as the
/// sparse eta vector η (η_p = 1/w_p, η_i = −w_i/w_p).
class BasisFactorization {
public:
    struct Options {
        /// Eta vectors accumulated before needs_refactorization() trips.
        int max_etas = 64;
        /// |w_p| below this refuses the update (caller refactorizes).
        double pivot_tol = 1e-11;
    };

    BasisFactorization() = default;
    explicit BasisFactorization(Options options) : options_(options) {}

    /// Factorizes B = A[:, basis]. Returns false when the basis is singular
    /// (to working precision); the factorization is then unusable.
    [[nodiscard]] bool refactorize(const CscMatrix& A, const std::vector<int>& basis);

    /// Solves B·x = b in place (b must have size m).
    void ftran(std::vector<double>& x) const;

    /// Solves Bᵀ·y = c in place (c must have size m).
    void btran(std::vector<double>& y) const;

    /// Applies the rank-one basis change at position `pos`, where `w` is the
    /// FTRAN image B⁻¹a of the incoming column. Returns false when the
    /// pivot element |w[pos]| is below pivot_tol (no state change).
    [[nodiscard]] bool update(const std::vector<double>& w, int pos);

    [[nodiscard]] int eta_count() const noexcept { return static_cast<int>(etas_.size()); }
    [[nodiscard]] bool needs_refactorization() const noexcept {
        return eta_count() >= options_.max_etas;
    }
    [[nodiscard]] bool factorized() const noexcept { return m_ > 0 || factorized_empty_; }

    /// ‖B·B⁻¹ − I‖∞ witnessed column-by-column: max_j ‖FTRAN(A_bj) − e_j‖∞
    /// over the basis columns. The property/fuzz suite bounds this after
    /// randomized pivot sequences.
    [[nodiscard]] double residual_inf(const CscMatrix& A, const std::vector<int>& basis) const;

private:
    Options options_;
    int m_ = 0;
    bool factorized_empty_ = false;

    /// One peeled pivot: basis position `pos` pivots row `row`; `above`
    /// holds the column's remaining entries, all in rows peeled strictly
    /// earlier (the column had exactly one active entry when peeled, and
    /// bump rows stay active throughout, so none land in the bump).
    struct PeelPivot {
        int row;
        int pos;
        double pivot;
        std::vector<std::pair<int, double>> above;  // (earlier-peeled row, value)
    };
    std::vector<PeelPivot> peel_;          // in peel order
    std::vector<int> bump_rows_;           // row ids of the bump, ascending
    std::vector<int> bump_pos_;            // basis positions of the bump, ascending
    std::vector<int> bump_row_slot_;       // row id → index in bump_rows_, or -1
    std::vector<std::vector<std::pair<int, double>>> bump_in_peel_;  // per bump col:
                                           // entries landing in peeled rows (B12)
    std::vector<double> bump_lu_;          // s×s row-major, L unit-lower + U packed
    std::vector<int> bump_perm_;           // partial-pivoting row order (bump-local)

    struct Eta {
        int pos;
        double pivot_inv;                            // η_pos
        std::vector<std::pair<int, double>> terms;   // (i, η_i), i ≠ pos
    };
    std::vector<Eta> etas_;
};

}  // namespace p4all::ilp
