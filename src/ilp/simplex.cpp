#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ilp/scaling.hpp"
#include "support/error.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"

namespace p4all::ilp {

namespace {

/// Consecutive degenerate pivots tolerated before Bland's rule engages.
/// Scales with the row count: short degenerate runs are routine on
/// placement LPs and Devex resolves them faster than Bland would.
constexpr int kDegeneratePivotLimit(int rows) { return 2 * (rows + 16); }

/// Bounded-variable primal simplex on a dense tableau.
///
/// Variables are shifted to y = x − lb ∈ [0, d]; constraint rows become
/// equalities with a slack (Le) or an artificial (Eq / negative-rhs) basic
/// variable. Nonbasic variables rest at their lower (0) or upper (d) bound;
/// the ratio test includes the entering variable's own opposite bound, so a
/// "bound flip" moves a variable across its range with no pivot at all.
/// Compared with the textbook formulation this removes one tableau row per
/// finite upper bound — the dominant row count in placement models, where
/// almost every variable is binary.
class BoundedSimplex {
public:
    BoundedSimplex(const Model& model, const std::vector<double>& lb,
                   const std::vector<double>& ub, const LpOptions& options)
        : model_(model), lb_(lb), ub_(ub), options_(options), n_(model.num_vars()) {
        build();
    }

    LpResult solve() {
        LpResult result;
        if (num_artificial_ > 0) {
            load_phase1_objective();
            const LpStatus st = iterate(result.iterations, /*phase1=*/true);
            if (st == LpStatus::IterLimit) {
                result.status = st;
                result.deadline_hit = deadline_hit_;
                result.error = error_;
                return result;
            }
            double artificial_sum = 0.0;
            for (int i = 0; i < m_; ++i) {
                if (basis_[static_cast<std::size_t>(i)] >= artificial_start_) {
                    artificial_sum += xb_[static_cast<std::size_t>(i)];
                }
            }
            if (artificial_sum > 1e-6) {
                result.status = LpStatus::Infeasible;
                return result;
            }
            // Pin artificials to zero for phase 2.
            for (int j = artificial_start_; j < cols_; ++j) {
                span_[static_cast<std::size_t>(j)] = 0.0;
            }
        }
        load_phase2_objective();
        const LpStatus st = iterate(result.iterations, /*phase1=*/false);
        result.status = st;
        if (st != LpStatus::Optimal) {
            result.deadline_hit = deadline_hit_;
            result.error = error_;
            return result;
        }

        // Dual extraction. The tableau's objective row holds the reduced
        // costs r_j = ĉ_j − w'A_j of the shifted minimization problem; the
        // auxiliary (slack/artificial) column of row i has cost 0 and
        // coefficient σcol, so w_i = −σcol·r_aux. Mapping back through the
        // row normalization (σrow) and the min(−c) ⇄ max(c) flip gives the
        // maximize-convention dual y_i = σrow·σcol·r_aux.
        result.duals.assign(static_cast<std::size_t>(m_), 0.0);
        for (int i = 0; i < m_; ++i) {
            const std::size_t is = static_cast<std::size_t>(i);
            // ·ρ maps the scaled row's dual back to the original row's unit.
            result.duals[is] = static_cast<double>(dual_sign_[is]) *
                               obj_[static_cast<std::size_t>(aux_col_[is])] * row_scale_[is];
        }

        result.values.assign(static_cast<std::size_t>(n_), 0.0);
        for (int j = 0; j < n_; ++j) {
            if (at_upper_[static_cast<std::size_t>(j)]) {
                result.values[static_cast<std::size_t>(j)] = span_[static_cast<std::size_t>(j)];
            }
        }
        for (int i = 0; i < m_; ++i) {
            const int j = basis_[static_cast<std::size_t>(i)];
            if (j < n_) result.values[static_cast<std::size_t>(j)] = xb_[static_cast<std::size_t>(i)];
        }
        for (int j = 0; j < n_; ++j) {
            // ·s undoes the column scaling, then the lb shift.
            const std::size_t js = static_cast<std::size_t>(j);
            result.values[js] = result.values[js] * col_scale_[js] + lb_[js];
        }
        result.objective = model_.objective().evaluate(result.values);
        result.bound_slack = bound_slack_;
        result.bound = result.objective + bound_slack_;
        return result;
    }

private:
    double& at(int row, int col) {
        return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(col)];
    }
    [[nodiscard]] double get(int row, int col) const {
        return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(col)];
    }

    void build() {
        struct Row {
            std::vector<std::pair<int, double>> terms;
            bool eq;
            bool negated = false;
            int sense_sign = 1;  // −1 for Ge rows (normalized to Le)
            double rhs;
        };
        std::vector<Row> rows;
        rows.reserve(model_.constraints().size());
        for (const Constraint& c : model_.constraints()) {
            Row r;
            r.eq = c.sense == CmpSense::Eq;
            double shift = 0.0;
            const double sign = c.sense == CmpSense::Ge ? -1.0 : 1.0;
            r.sense_sign = c.sense == CmpSense::Ge ? -1 : 1;
            for (const auto& [id, coeff] : c.expr.terms()) {
                shift += coeff * lb_[static_cast<std::size_t>(id)];
                r.terms.emplace_back(id, sign * coeff);
            }
            r.rhs = sign * (c.rhs - shift);
            rows.push_back(std::move(r));
        }
        m_ = static_cast<int>(rows.size());

        // Equilibrate (scaling.hpp): power-of-two row/column factors keep
        // every tableau entry near 1 so the absolute pricing and ratio-test
        // tolerances stay meaningful on models mixing O(1) utility rows
        // with O(10^6) memory rows. Values and duals are mapped back on
        // extraction; the objective value is unchanged by construction.
        {
            std::vector<std::vector<std::pair<int, double>>> term_rows;
            term_rows.reserve(rows.size());
            for (const Row& r : rows) term_rows.push_back(r.terms);
            Equilibration eq = equilibrate(term_rows, n_);
            row_scale_ = std::move(eq.row);
            col_scale_ = std::move(eq.col);
            for (int i = 0; i < m_; ++i) {
                Row& r = rows[static_cast<std::size_t>(i)];
                const double rho = row_scale_[static_cast<std::size_t>(i)];
                for (auto& [id, c] : r.terms) {
                    c *= rho * col_scale_[static_cast<std::size_t>(id)];
                }
                r.rhs *= rho;
            }
        }

        // Count columns. Le rows with rhs ≥ 0 start with a basic slack;
        // Le rows with rhs < 0 are negated (slack coeff −1) and need an
        // artificial; Eq rows (rhs normalized ≥ 0) need an artificial.
        int num_slack = 0;
        num_artificial_ = 0;
        for (Row& r : rows) {
            if (!r.eq) ++num_slack;
            if (r.rhs < 0) {
                r.negated = true;
                for (auto& [id, c] : r.terms) c = -c;
                r.rhs = -r.rhs;
            }
            if (r.eq || r.negated) ++num_artificial_;
        }
        artificial_start_ = n_ + num_slack;
        cols_ = artificial_start_ + num_artificial_;
        data_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(cols_), 0.0);
        obj_.assign(static_cast<std::size_t>(cols_), 0.0);
        span_.assign(static_cast<std::size_t>(cols_), kInfinity);
        at_upper_.assign(static_cast<std::size_t>(cols_), false);
        basis_.assign(static_cast<std::size_t>(m_), -1);
        xb_.assign(static_cast<std::size_t>(m_), 0.0);
        in_basis_.assign(static_cast<std::size_t>(cols_), false);

        for (int j = 0; j < n_; ++j) {
            const double d = ub_[static_cast<std::size_t>(j)] - lb_[static_cast<std::size_t>(j)];
            if (d < -1e-12) {
                throw support::Error(support::Errc::InvalidModel,
                                     "simplex: lb > ub for variable '" + model_.var_name(j) + "'");
            }
            span_[static_cast<std::size_t>(j)] =
                std::max(d, 0.0) / col_scale_[static_cast<std::size_t>(j)];
        }

        aux_col_.assign(static_cast<std::size_t>(m_), -1);
        dual_sign_.assign(static_cast<std::size_t>(m_), 1);
        int next_slack = n_;
        int next_artificial = artificial_start_;
        for (int i = 0; i < m_; ++i) {
            const Row& r = rows[static_cast<std::size_t>(i)];
            for (const auto& [id, c] : r.terms) at(i, id) += c;
            xb_[static_cast<std::size_t>(i)] = r.rhs;
            int basic = -1;
            // Dual bookkeeping: σrow is the net sign applied to the original
            // constraint's coefficients; σcol is the auxiliary column's
            // coefficient in this row.
            const int sigma_row = r.sense_sign * (r.negated ? -1 : 1);
            if (!r.eq) {
                // Negated rows carry their slack with coefficient −1, so the
                // slack cannot serve as the starting basic variable.
                at(i, next_slack) = r.negated ? -1.0 : 1.0;
                if (!r.negated) basic = next_slack;
                aux_col_[static_cast<std::size_t>(i)] = next_slack;
                dual_sign_[static_cast<std::size_t>(i)] = sigma_row * (r.negated ? -1 : 1);
                ++next_slack;
            }
            if (basic < 0) {
                at(i, next_artificial) = 1.0;
                if (r.eq) {
                    aux_col_[static_cast<std::size_t>(i)] = next_artificial;
                    dual_sign_[static_cast<std::size_t>(i)] = sigma_row;
                }
                basic = next_artificial++;
            }
            basis_[static_cast<std::size_t>(i)] = basic;
            in_basis_[static_cast<std::size_t>(basic)] = true;
        }
        tab0_ = data_;
        rhs0_ = xb_;
    }

    /// Rebuilds the tableau, the reduced-cost row, and the basic values from
    /// the pristine (scaled) data and the current basis — the tableau
    /// analogue of the revised method's refactorization. Incremental row
    /// operations accumulate error (a single near-tolerance pivot can
    /// inflate a row by ~1/tol), and the only symptom is silent: pricing
    /// stops seeing improving columns and the solver declares a premature
    /// optimum. iterate() therefore re-verifies every terminal claim against
    /// a fresh rebuild. Returns false when a basis pivot collapses (the
    /// basis has become numerically singular).
    bool rebuild_from_basis() {
        data_ = tab0_;
        obj_ = cost0_;
        std::vector<double> rhsred = rhs0_;
        // Gauss-Jordan over the basis pairs (i, basis_[i]), processed in
        // partial-pivoting order: each step eliminates the unprocessed pair
        // with the largest current pivot magnitude, which keeps the rebuild
        // stable on bases whose natural row order would hit tiny pivots.
        std::vector<bool> done(static_cast<std::size_t>(m_), false);
        for (int step = 0; step < m_; ++step) {
            int i = -1;
            double best = 0.0;
            for (int k = 0; k < m_; ++k) {
                if (done[static_cast<std::size_t>(k)]) continue;
                const double v = std::abs(get(k, basis_[static_cast<std::size_t>(k)]));
                if (i < 0 || v > best) {
                    best = v;
                    i = k;
                }
            }
            done[static_cast<std::size_t>(i)] = true;
            const int jb = basis_[static_cast<std::size_t>(i)];
            if (std::abs(get(i, jb)) < 1e-8) {
                // The pairing's own entry vanished (think permuted identity:
                // every diagonal is zero though the basis is invertible).
                // Any still-unclaimed row has zeros in all claimed columns,
                // so adding one into row i is a legal row operation that
                // cannot disturb the unit columns already established —
                // pick the one that best restores the pivot.
                int r = -1;
                double rbest = 0.0;
                for (int k = 0; k < m_; ++k) {
                    if (k == i || done[static_cast<std::size_t>(k)]) continue;
                    const double v = std::abs(get(k, jb));
                    if (v > rbest) {
                        rbest = v;
                        r = k;
                    }
                }
                if (r >= 0 && rbest > std::abs(get(i, jb))) {
                    for (int j = 0; j < cols_; ++j) at(i, j) += get(r, j);
                    rhsred[static_cast<std::size_t>(i)] +=
                        rhsred[static_cast<std::size_t>(r)];
                }
            }
            const double pivot = get(i, jb);
            if (std::abs(pivot) < 1e-11) return false;
            const double inv = 1.0 / pivot;
            for (int j = 0; j < cols_; ++j) at(i, j) *= inv;
            at(i, jb) = 1.0;
            rhsred[static_cast<std::size_t>(i)] *= inv;
            for (int k = 0; k < m_; ++k) {
                if (k == i) continue;
                const double f = get(k, jb);
                if (f == 0.0) continue;
                for (int j = 0; j < cols_; ++j) at(k, j) -= f * get(i, j);
                at(k, jb) = 0.0;
                rhsred[static_cast<std::size_t>(k)] -=
                    f * rhsred[static_cast<std::size_t>(i)];
            }
            const double f = obj_[static_cast<std::size_t>(jb)];
            if (f != 0.0) {
                for (int j = 0; j < cols_; ++j) {
                    obj_[static_cast<std::size_t>(j)] -= f * get(i, j);
                }
                obj_[static_cast<std::size_t>(jb)] = 0.0;
            }
        }
        // xb = B⁻¹b − Σ_{nonbasic at upper} span_j·(B⁻¹A_j).
        xb_ = std::move(rhsred);
        for (int j = 0; j < cols_; ++j) {
            const std::size_t js = static_cast<std::size_t>(j);
            if (in_basis_[js] || !at_upper_[js]) continue;
            if (span_[js] == kInfinity || span_[js] <= 0.0) continue;
            for (int i = 0; i < m_; ++i) {
                xb_[static_cast<std::size_t>(i)] -= span_[js] * get(i, j);
            }
        }
        return true;
    }

    void load_phase1_objective() {
        std::fill(obj_.begin(), obj_.end(), 0.0);
        for (int j = artificial_start_; j < cols_; ++j) obj_[static_cast<std::size_t>(j)] = 1.0;
        cost0_ = obj_;  // pristine costs for rebuild_from_basis()
        reduce_objective();
    }

    void load_phase2_objective() {
        std::fill(obj_.begin(), obj_.end(), 0.0);
        for (const auto& [id, c] : model_.objective().terms()) {
            // maximize ⇒ minimize −c, in column-scaled units (ĉ = s·c keeps
            // the scaled objective value equal to the true one).
            obj_[static_cast<std::size_t>(id)] = -c * col_scale_[static_cast<std::size_t>(id)];
        }
        // Deterministic cost perturbation on finite-span structural columns:
        // discourage each slightly (positive in the minimization objective),
        // scaled so each column's worst-case objective error is at most
        // `perturbation`. The total is returned via bound_slack_. With
        // caller-frozen reference bounds (LpOptions::perturb_ref_*) the
        // magnitude derives from the reference span — same policy as the
        // sparse backend, so both produce identical perturbed cost vectors
        // across a branch-and-bound tree.
        bound_slack_ = 0.0;
        if (options_.perturbation > 0.0) {
            const bool has_ref =
                options_.perturb_ref_lb != nullptr && options_.perturb_ref_ub != nullptr;
            for (int j = 0; j < n_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                double ref_span = span_[js];
                if (has_ref) {
                    const double d = (*options_.perturb_ref_ub)[js] - (*options_.perturb_ref_lb)[js];
                    ref_span = d == kInfinity ? kInfinity : std::max(d, 0.0) / col_scale_[js];
                }
                if (ref_span == kInfinity || ref_span <= 0.0) continue;
                // perturb_seed == 0 reproduces the historical tilt exactly;
                // any other seed gives a different (still deterministic) one.
                std::uint64_t state =
                    (0x9E3779B97F4A7C15ULL +
                     options_.perturb_seed * 0xD1342543DE82EF95ULL) ^
                    (static_cast<std::uint64_t>(j) << 17);
                const double xi =
                    0.5 + 0.5 * static_cast<double>(support::splitmix64(state) >> 11) * 0x1.0p-53;
                const double eps = options_.perturbation * xi / ref_span;
                obj_[js] += eps;
                const double slack_span = span_[js] == kInfinity ? ref_span : span_[js];
                bound_slack_ += eps * slack_span;
            }
        }
        cost0_ = obj_;  // pristine costs for rebuild_from_basis()
        reduce_objective();
    }

    /// Eliminates basic columns from the objective row.
    void reduce_objective() {
        for (int i = 0; i < m_; ++i) {
            const int jb = basis_[static_cast<std::size_t>(i)];
            const double cb = obj_[static_cast<std::size_t>(jb)];
            if (cb == 0.0) continue;
            for (int j = 0; j < cols_; ++j) {
                obj_[static_cast<std::size_t>(j)] -= cb * get(i, j);
            }
            obj_[static_cast<std::size_t>(jb)] = 0.0;
        }
    }

    LpStatus iterate(int& iterations, bool phase1) {
        const int limit =
            options_.max_iterations > 0 ? options_.max_iterations : 400 + 60 * (m_ + cols_);
        const double tol = options_.tol;
        int stall = 0;
        bool bland = options_.force_bland;
        // True while the tableau is freshly rebuilt from the basis (no
        // incremental updates since): terminal claims are only trusted when
        // fresh, otherwise they trigger rebuild_from_basis() and a re-price.
        bool fresh = false;
        // Devex reference weights: pricing by r_j²/w_j needs far fewer
        // iterations than plain Dantzig on degenerate placement LPs.
        std::vector<double> devex(static_cast<std::size_t>(cols_), 1.0);

        while (true) {
            if (++iterations > limit) {
                error_ = support::Errc::ResourceLimit;
                return LpStatus::IterLimit;
            }
            // Deadline poll, amortized: one clock read per 16 iterations
            // (including the very first, so an already-expired budget does
            // no pivoting at all) keeps the worst-case overshoot of a
            // caller's wall budget to a handful of pivots.
            if ((iterations & 15) == 1 && !options_.deadline.unlimited() &&
                options_.deadline.expired()) {
                deadline_hit_ = true;
                error_ = options_.deadline.cancelled() ? support::Errc::Cancelled
                                                       : support::Errc::DeadlineExceeded;
                return LpStatus::IterLimit;
            }

            // Periodic refresh: rebuilding every 128 pivots bounds the
            // incremental-update drift window, so pivot selection never runs
            // on badly corrupted data (which could walk the basis into
            // numerical singularity before the terminal check fires).
            if (!fresh && (iterations & 127) == 0) {
                if (!rebuild_from_basis()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                fresh = true;
            }

            // Pricing: nonbasic at lower wants r < 0; at upper wants r > 0.
            int enter = -1;
            double best = 0.0;
            double enter_dir = 1.0;
            for (int j = 0; j < cols_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (in_basis_[js]) continue;
                if (j >= artificial_start_) continue;  // artificials never re-enter
                if (span_[js] <= tol) continue;        // fixed variable
                const double r = obj_[js];
                double dir = 1.0;
                if (!at_upper_[js] && r < -tol) {
                    dir = 1.0;
                } else if (at_upper_[js] && r > tol) {
                    dir = -1.0;
                } else {
                    continue;
                }
                if (bland) {
                    enter = j;
                    enter_dir = dir;
                    break;
                }
                const double score = r * r / devex[js];
                if (score > best) {
                    best = score;
                    enter = j;
                    enter_dir = dir;
                }
            }
            if (enter < 0) {
                if (!fresh) {
                    if (!rebuild_from_basis()) {
                        error_ = support::Errc::NumericalTrouble;
                        return LpStatus::IterLimit;
                    }
                    fresh = true;
                    continue;  // re-price against exact reduced costs
                }
                return LpStatus::Optimal;
            }
            const std::size_t es = static_cast<std::size_t>(enter);

            // Ratio test, two passes: pass 1 finds the tightest step t; pass
            // 2 picks, among rows within a tolerance of t, the one with the
            // largest pivot magnitude (Harris-style) — numerically safer and
            // far less prone to long degenerate pivot chains. Under Bland,
            // smallest basic index wins instead.
            double t = span_[es];  // own opposite bound ⇒ bound flip
            for (int i = 0; i < m_; ++i) {
                const double beta = enter_dir * get(i, enter);
                const std::size_t bi =
                    static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                if (beta > tol) {
                    t = std::min(t, std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0));
                } else if (beta < -tol && span_[bi] != kInfinity) {
                    t = std::min(
                        t, std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0));
                }
            }
            if (t == kInfinity) {
                if (!fresh) {
                    if (!rebuild_from_basis()) {
                        error_ = support::Errc::NumericalTrouble;
                        return LpStatus::IterLimit;
                    }
                    fresh = true;
                    continue;  // re-price: the unbounded ray may be drift
                }
                return phase1 ? LpStatus::Infeasible : LpStatus::Unbounded;
            }
            int leave = -1;
            bool leave_at_upper = false;
            double best_pivot = 0.0;
            if (bland) {
                // Bland's anti-cycling rule: exact minimal ratio (no Harris
                // tolerance window — a widened tie set would break the
                // termination guarantee), smallest basic index among exact
                // ties. Combined with first-eligible entering selection
                // above, no basis can repeat, so degenerate pivot chains
                // always terminate.
                double exact_t = span_[es];
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * get(i, enter);
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    if (ratio < exact_t ||
                        (leave >= 0 && ratio == exact_t &&
                         basis_[static_cast<std::size_t>(i)] <
                             basis_[static_cast<std::size_t>(leave)]) ||
                        (leave < 0 && ratio <= exact_t)) {
                        exact_t = ratio;
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
                t = leave >= 0 ? exact_t : t;
            } else {
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * get(i, enter);
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    // Harris-style: among rows within a tolerance of the
                    // tightest step, prefer the largest pivot magnitude.
                    if (ratio > t + 1e-9) continue;
                    if (std::abs(beta) > best_pivot) {
                        best_pivot = std::abs(beta);
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
            }

            // Tiny-pivot recovery (mirrors the revised backend): dividing by
            // a near-tolerance pivot inflates the whole tableau by ~1/|β|
            // and one such step can corrupt every later pivot choice. Retry
            // the iteration against freshly rebuilt data; only a pivot that
            // is still tiny on exact data is genuinely unavoidable.
            if (leave >= 0 && !fresh && std::abs(get(leave, enter)) < 1e-6) {
                if (!rebuild_from_basis()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                fresh = true;
                continue;
            }

            // Anti-cycling guard: a long run of consecutive degenerate
            // steps (no objective movement) can only mean the solver is
            // crawling an optimal/degenerate face — or cycling. Engage
            // Bland's rule, whose lowest-index pivot selection provably
            // terminates; disengage as soon as real progress resumes (a
            // strict improvement breaks any cycle, so the guarantee holds).
            const double delta = obj_[es] * enter_dir * t;
            if (std::abs(delta) < 1e-12) {
                if (++stall > kDegeneratePivotLimit(m_)) bland = true;
            } else {
                stall = 0;
                bland = options_.force_bland;
            }

            if (leave < 0) {
                // Bound flip: entering crosses to its other bound.
                for (int i = 0; i < m_; ++i) {
                    xb_[static_cast<std::size_t>(i)] -= enter_dir * get(i, enter) * t;
                }
                at_upper_[es] = !at_upper_[es];
                fresh = false;
                continue;
            }

            // Fault point: a firing here simulates the pivot breakdown this
            // status exists for (tiny pivot magnitude corrupting the basis).
            if (support::fault_fires("simplex.pivot")) {
                error_ = support::Errc::NumericalTrouble;
                return LpStatus::IterLimit;
            }

            // Pivot: update basic values, then eliminate the column.
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                xb_[static_cast<std::size_t>(i)] -= enter_dir * get(i, enter) * t;
            }
            const double enter_value = at_upper_[es] ? span_[es] - t : t;
            const int old_basic = basis_[static_cast<std::size_t>(leave)];
            in_basis_[static_cast<std::size_t>(old_basic)] = false;
            at_upper_[static_cast<std::size_t>(old_basic)] = leave_at_upper;
            basis_[static_cast<std::size_t>(leave)] = enter;
            in_basis_[es] = true;
            at_upper_[es] = false;  // basic status; flag unused while basic
            xb_[static_cast<std::size_t>(leave)] = enter_value;

            const double pivot = get(leave, enter);
            const double inv = 1.0 / pivot;
            for (int j = 0; j < cols_; ++j) at(leave, j) *= inv;
            at(leave, enter) = 1.0;
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                const double f = get(i, enter);
                if (f == 0.0) continue;
                for (int j = 0; j < cols_; ++j) at(i, j) -= f * get(leave, j);
                at(i, enter) = 0.0;
            }
            const double f = obj_[es];
            if (f != 0.0) {
                for (int j = 0; j < cols_; ++j) {
                    obj_[static_cast<std::size_t>(j)] -= f * get(leave, j);
                }
                obj_[es] = 0.0;
            }

            // Devex weight update against the (normalized) pivot row: the
            // entry at(leave, j) equals α_rj / α_rq, exactly the reference
            // ratio the update rule needs.
            const double wq = devex[es];
            double wmax = 1.0;
            for (int j = 0; j < cols_; ++j) {
                const double a = get(leave, j);
                if (a == 0.0) continue;
                const double candidate = a * a * wq;
                std::size_t js = static_cast<std::size_t>(j);
                if (candidate > devex[js]) devex[js] = candidate;
                if (devex[js] > wmax) wmax = devex[js];
            }
            devex[static_cast<std::size_t>(old_basic)] = std::max(wq / (pivot * pivot), 1.0);
            if (wmax > 1e10) std::fill(devex.begin(), devex.end(), 1.0);  // reference reset
            fresh = false;
        }
    }

    const Model& model_;
    const std::vector<double>& lb_;
    const std::vector<double>& ub_;
    const LpOptions& options_;

    int n_ = 0;
    int m_ = 0;
    int cols_ = 0;
    int artificial_start_ = 0;
    int num_artificial_ = 0;

    std::vector<double> data_;      // m × cols tableau
    std::vector<double> tab0_;      // pristine scaled tableau (rebuild source)
    std::vector<double> rhs0_;      // pristine normalized rhs
    std::vector<double> cost0_;     // pristine phase costs (incl. perturbation)
    std::vector<double> obj_;       // reduced-cost row
    std::vector<double> span_;      // per-column width of [0, d]
    std::vector<bool> at_upper_;    // nonbasic status
    std::vector<bool> in_basis_;
    std::vector<int> basis_;        // row -> basic column
    std::vector<double> xb_;        // basic values
    std::vector<int> aux_col_;      // row -> slack/artificial column (duals)
    std::vector<int> dual_sign_;    // row -> σrow·σcol sign for dual readout
    std::vector<double> row_scale_; // equilibration factors (powers of two)
    std::vector<double> col_scale_;
    double bound_slack_ = 0.0;      // exact perturbation budget
    bool deadline_hit_ = false;     // IterLimit caused by deadline/cancel
    support::Errc error_ = support::Errc::None;
};

}  // namespace

LpResult solve_lp(const Model& model, const std::vector<double>* lb,
                  const std::vector<double>* ub, const LpOptions& options) {
    std::vector<double> lb_local;
    std::vector<double> ub_local;
    if (lb == nullptr) {
        lb_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            lb_local[static_cast<std::size_t>(j)] = model.lower_bound(j);
        }
        lb = &lb_local;
    }
    if (ub == nullptr) {
        ub_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            ub_local[static_cast<std::size_t>(j)] = model.upper_bound(j);
        }
        ub = &ub_local;
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        if ((*lb)[static_cast<std::size_t>(j)] == -kInfinity) {
            throw support::Error(support::Errc::InvalidModel,
                                 "simplex: variable '" + model.var_name(j) +
                                     "' has an infinite lower bound (unsupported)");
        }
    }
    BoundedSimplex solver(model, *lb, *ub, options);
    return solver.solve();
}

}  // namespace p4all::ilp
