#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"

namespace p4all::ilp {

namespace {

/// Consecutive degenerate pivots tolerated before Bland's rule engages.
/// Scales with the row count: short degenerate runs are routine on
/// placement LPs and Devex resolves them faster than Bland would.
constexpr int kDegeneratePivotLimit(int rows) { return 2 * (rows + 16); }

/// Bounded-variable primal simplex on a dense tableau.
///
/// Variables are shifted to y = x − lb ∈ [0, d]; constraint rows become
/// equalities with a slack (Le) or an artificial (Eq / negative-rhs) basic
/// variable. Nonbasic variables rest at their lower (0) or upper (d) bound;
/// the ratio test includes the entering variable's own opposite bound, so a
/// "bound flip" moves a variable across its range with no pivot at all.
/// Compared with the textbook formulation this removes one tableau row per
/// finite upper bound — the dominant row count in placement models, where
/// almost every variable is binary.
class BoundedSimplex {
public:
    BoundedSimplex(const Model& model, const std::vector<double>& lb,
                   const std::vector<double>& ub, const LpOptions& options)
        : model_(model), lb_(lb), ub_(ub), options_(options), n_(model.num_vars()) {
        build();
    }

    LpResult solve() {
        LpResult result;
        if (num_artificial_ > 0) {
            load_phase1_objective();
            const LpStatus st = iterate(result.iterations, /*phase1=*/true);
            if (st == LpStatus::IterLimit) {
                result.status = st;
                result.deadline_hit = deadline_hit_;
                result.error = error_;
                return result;
            }
            double artificial_sum = 0.0;
            for (int i = 0; i < m_; ++i) {
                if (basis_[static_cast<std::size_t>(i)] >= artificial_start_) {
                    artificial_sum += xb_[static_cast<std::size_t>(i)];
                }
            }
            if (artificial_sum > 1e-6) {
                result.status = LpStatus::Infeasible;
                return result;
            }
            // Pin artificials to zero for phase 2.
            for (int j = artificial_start_; j < cols_; ++j) {
                span_[static_cast<std::size_t>(j)] = 0.0;
            }
        }
        load_phase2_objective();
        const LpStatus st = iterate(result.iterations, /*phase1=*/false);
        result.status = st;
        if (st != LpStatus::Optimal) {
            result.deadline_hit = deadline_hit_;
            result.error = error_;
            return result;
        }

        // Dual extraction. The tableau's objective row holds the reduced
        // costs r_j = ĉ_j − w'A_j of the shifted minimization problem; the
        // auxiliary (slack/artificial) column of row i has cost 0 and
        // coefficient σcol, so w_i = −σcol·r_aux. Mapping back through the
        // row normalization (σrow) and the min(−c) ⇄ max(c) flip gives the
        // maximize-convention dual y_i = σrow·σcol·r_aux.
        result.duals.assign(static_cast<std::size_t>(m_), 0.0);
        for (int i = 0; i < m_; ++i) {
            const std::size_t is = static_cast<std::size_t>(i);
            result.duals[is] = static_cast<double>(dual_sign_[is]) *
                               obj_[static_cast<std::size_t>(aux_col_[is])];
        }

        result.values.assign(static_cast<std::size_t>(n_), 0.0);
        for (int j = 0; j < n_; ++j) {
            if (at_upper_[static_cast<std::size_t>(j)]) {
                result.values[static_cast<std::size_t>(j)] = span_[static_cast<std::size_t>(j)];
            }
        }
        for (int i = 0; i < m_; ++i) {
            const int j = basis_[static_cast<std::size_t>(i)];
            if (j < n_) result.values[static_cast<std::size_t>(j)] = xb_[static_cast<std::size_t>(i)];
        }
        for (int j = 0; j < n_; ++j) {
            result.values[static_cast<std::size_t>(j)] += lb_[static_cast<std::size_t>(j)];
        }
        result.objective = model_.objective().evaluate(result.values);
        result.bound_slack = bound_slack_;
        result.bound = result.objective + bound_slack_;
        return result;
    }

private:
    double& at(int row, int col) {
        return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(col)];
    }
    [[nodiscard]] double get(int row, int col) const {
        return data_[static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(col)];
    }

    void build() {
        struct Row {
            std::vector<std::pair<int, double>> terms;
            bool eq;
            bool negated = false;
            int sense_sign = 1;  // −1 for Ge rows (normalized to Le)
            double rhs;
        };
        std::vector<Row> rows;
        rows.reserve(model_.constraints().size());
        for (const Constraint& c : model_.constraints()) {
            Row r;
            r.eq = c.sense == CmpSense::Eq;
            double shift = 0.0;
            const double sign = c.sense == CmpSense::Ge ? -1.0 : 1.0;
            r.sense_sign = c.sense == CmpSense::Ge ? -1 : 1;
            for (const auto& [id, coeff] : c.expr.terms()) {
                shift += coeff * lb_[static_cast<std::size_t>(id)];
                r.terms.emplace_back(id, sign * coeff);
            }
            r.rhs = sign * (c.rhs - shift);
            rows.push_back(std::move(r));
        }
        m_ = static_cast<int>(rows.size());

        // Count columns. Le rows with rhs ≥ 0 start with a basic slack;
        // Le rows with rhs < 0 are negated (slack coeff −1) and need an
        // artificial; Eq rows (rhs normalized ≥ 0) need an artificial.
        int num_slack = 0;
        num_artificial_ = 0;
        for (Row& r : rows) {
            if (!r.eq) ++num_slack;
            if (r.rhs < 0) {
                r.negated = true;
                for (auto& [id, c] : r.terms) c = -c;
                r.rhs = -r.rhs;
            }
            if (r.eq || r.negated) ++num_artificial_;
        }
        artificial_start_ = n_ + num_slack;
        cols_ = artificial_start_ + num_artificial_;
        data_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(cols_), 0.0);
        obj_.assign(static_cast<std::size_t>(cols_), 0.0);
        span_.assign(static_cast<std::size_t>(cols_), kInfinity);
        at_upper_.assign(static_cast<std::size_t>(cols_), false);
        basis_.assign(static_cast<std::size_t>(m_), -1);
        xb_.assign(static_cast<std::size_t>(m_), 0.0);
        in_basis_.assign(static_cast<std::size_t>(cols_), false);

        for (int j = 0; j < n_; ++j) {
            const double d = ub_[static_cast<std::size_t>(j)] - lb_[static_cast<std::size_t>(j)];
            if (d < -1e-12) {
                throw support::Error(support::Errc::InvalidModel,
                                     "simplex: lb > ub for variable '" + model_.var_name(j) + "'");
            }
            span_[static_cast<std::size_t>(j)] = std::max(d, 0.0);
        }

        aux_col_.assign(static_cast<std::size_t>(m_), -1);
        dual_sign_.assign(static_cast<std::size_t>(m_), 1);
        int next_slack = n_;
        int next_artificial = artificial_start_;
        for (int i = 0; i < m_; ++i) {
            const Row& r = rows[static_cast<std::size_t>(i)];
            for (const auto& [id, c] : r.terms) at(i, id) += c;
            xb_[static_cast<std::size_t>(i)] = r.rhs;
            int basic = -1;
            // Dual bookkeeping: σrow is the net sign applied to the original
            // constraint's coefficients; σcol is the auxiliary column's
            // coefficient in this row.
            const int sigma_row = r.sense_sign * (r.negated ? -1 : 1);
            if (!r.eq) {
                // Negated rows carry their slack with coefficient −1, so the
                // slack cannot serve as the starting basic variable.
                at(i, next_slack) = r.negated ? -1.0 : 1.0;
                if (!r.negated) basic = next_slack;
                aux_col_[static_cast<std::size_t>(i)] = next_slack;
                dual_sign_[static_cast<std::size_t>(i)] = sigma_row * (r.negated ? -1 : 1);
                ++next_slack;
            }
            if (basic < 0) {
                at(i, next_artificial) = 1.0;
                if (r.eq) {
                    aux_col_[static_cast<std::size_t>(i)] = next_artificial;
                    dual_sign_[static_cast<std::size_t>(i)] = sigma_row;
                }
                basic = next_artificial++;
            }
            basis_[static_cast<std::size_t>(i)] = basic;
            in_basis_[static_cast<std::size_t>(basic)] = true;
        }
    }

    void load_phase1_objective() {
        std::fill(obj_.begin(), obj_.end(), 0.0);
        for (int j = artificial_start_; j < cols_; ++j) obj_[static_cast<std::size_t>(j)] = 1.0;
        reduce_objective();
    }

    void load_phase2_objective() {
        std::fill(obj_.begin(), obj_.end(), 0.0);
        for (const auto& [id, c] : model_.objective().terms()) {
            obj_[static_cast<std::size_t>(id)] = -c;  // maximize ⇒ minimize −c
        }
        // Deterministic cost perturbation on finite-span structural columns:
        // discourage each slightly (positive in the minimization objective),
        // scaled so each column's worst-case objective error is at most
        // `perturbation`. The total is returned via bound_slack_.
        bound_slack_ = 0.0;
        if (options_.perturbation > 0.0) {
            for (int j = 0; j < n_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (span_[js] == kInfinity || span_[js] <= 0.0) continue;
                // perturb_seed == 0 reproduces the historical tilt exactly;
                // any other seed gives a different (still deterministic) one.
                std::uint64_t state =
                    (0x9E3779B97F4A7C15ULL +
                     options_.perturb_seed * 0xD1342543DE82EF95ULL) ^
                    (static_cast<std::uint64_t>(j) << 17);
                const double xi =
                    0.5 + 0.5 * static_cast<double>(support::splitmix64(state) >> 11) * 0x1.0p-53;
                const double eps = options_.perturbation * xi / span_[js];
                obj_[js] += eps;
                bound_slack_ += eps * span_[js];
            }
        }
        reduce_objective();
    }

    /// Eliminates basic columns from the objective row.
    void reduce_objective() {
        for (int i = 0; i < m_; ++i) {
            const int jb = basis_[static_cast<std::size_t>(i)];
            const double cb = obj_[static_cast<std::size_t>(jb)];
            if (cb == 0.0) continue;
            for (int j = 0; j < cols_; ++j) {
                obj_[static_cast<std::size_t>(j)] -= cb * get(i, j);
            }
            obj_[static_cast<std::size_t>(jb)] = 0.0;
        }
    }

    LpStatus iterate(int& iterations, bool phase1) {
        const int limit =
            options_.max_iterations > 0 ? options_.max_iterations : 400 + 60 * (m_ + cols_);
        const double tol = options_.tol;
        int stall = 0;
        bool bland = options_.force_bland;
        // Devex reference weights: pricing by r_j²/w_j needs far fewer
        // iterations than plain Dantzig on degenerate placement LPs.
        std::vector<double> devex(static_cast<std::size_t>(cols_), 1.0);

        while (true) {
            if (++iterations > limit) {
                error_ = support::Errc::ResourceLimit;
                return LpStatus::IterLimit;
            }
            // Deadline poll, amortized: one clock read per 16 iterations
            // (including the very first, so an already-expired budget does
            // no pivoting at all) keeps the worst-case overshoot of a
            // caller's wall budget to a handful of pivots.
            if ((iterations & 15) == 1 && !options_.deadline.unlimited() &&
                options_.deadline.expired()) {
                deadline_hit_ = true;
                error_ = options_.deadline.cancelled() ? support::Errc::Cancelled
                                                       : support::Errc::DeadlineExceeded;
                return LpStatus::IterLimit;
            }

            // Pricing: nonbasic at lower wants r < 0; at upper wants r > 0.
            int enter = -1;
            double best = 0.0;
            double enter_dir = 1.0;
            for (int j = 0; j < cols_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (in_basis_[js]) continue;
                if (j >= artificial_start_) continue;  // artificials never re-enter
                if (span_[js] <= tol) continue;        // fixed variable
                const double r = obj_[js];
                double dir = 1.0;
                if (!at_upper_[js] && r < -tol) {
                    dir = 1.0;
                } else if (at_upper_[js] && r > tol) {
                    dir = -1.0;
                } else {
                    continue;
                }
                if (bland) {
                    enter = j;
                    enter_dir = dir;
                    break;
                }
                const double score = r * r / devex[js];
                if (score > best) {
                    best = score;
                    enter = j;
                    enter_dir = dir;
                }
            }
            if (enter < 0) return LpStatus::Optimal;
            const std::size_t es = static_cast<std::size_t>(enter);

            // Ratio test, two passes: pass 1 finds the tightest step t; pass
            // 2 picks, among rows within a tolerance of t, the one with the
            // largest pivot magnitude (Harris-style) — numerically safer and
            // far less prone to long degenerate pivot chains. Under Bland,
            // smallest basic index wins instead.
            double t = span_[es];  // own opposite bound ⇒ bound flip
            for (int i = 0; i < m_; ++i) {
                const double beta = enter_dir * get(i, enter);
                const std::size_t bi =
                    static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                if (beta > tol) {
                    t = std::min(t, std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0));
                } else if (beta < -tol && span_[bi] != kInfinity) {
                    t = std::min(
                        t, std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0));
                }
            }
            if (t == kInfinity) {
                return phase1 ? LpStatus::Infeasible : LpStatus::Unbounded;
            }
            int leave = -1;
            bool leave_at_upper = false;
            double best_pivot = 0.0;
            if (bland) {
                // Bland's anti-cycling rule: exact minimal ratio (no Harris
                // tolerance window — a widened tie set would break the
                // termination guarantee), smallest basic index among exact
                // ties. Combined with first-eligible entering selection
                // above, no basis can repeat, so degenerate pivot chains
                // always terminate.
                double exact_t = span_[es];
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * get(i, enter);
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    if (ratio < exact_t ||
                        (leave >= 0 && ratio == exact_t &&
                         basis_[static_cast<std::size_t>(i)] <
                             basis_[static_cast<std::size_t>(leave)]) ||
                        (leave < 0 && ratio <= exact_t)) {
                        exact_t = ratio;
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
                t = leave >= 0 ? exact_t : t;
            } else {
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * get(i, enter);
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    // Harris-style: among rows within a tolerance of the
                    // tightest step, prefer the largest pivot magnitude.
                    if (ratio > t + 1e-9) continue;
                    if (std::abs(beta) > best_pivot) {
                        best_pivot = std::abs(beta);
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
            }

            // Anti-cycling guard: a long run of consecutive degenerate
            // steps (no objective movement) can only mean the solver is
            // crawling an optimal/degenerate face — or cycling. Engage
            // Bland's rule, whose lowest-index pivot selection provably
            // terminates; disengage as soon as real progress resumes (a
            // strict improvement breaks any cycle, so the guarantee holds).
            const double delta = obj_[es] * enter_dir * t;
            if (std::abs(delta) < 1e-12) {
                if (++stall > kDegeneratePivotLimit(m_)) bland = true;
            } else {
                stall = 0;
                bland = options_.force_bland;
            }

            if (leave < 0) {
                // Bound flip: entering crosses to its other bound.
                for (int i = 0; i < m_; ++i) {
                    xb_[static_cast<std::size_t>(i)] -= enter_dir * get(i, enter) * t;
                }
                at_upper_[es] = !at_upper_[es];
                continue;
            }

            // Fault point: a firing here simulates the pivot breakdown this
            // status exists for (tiny pivot magnitude corrupting the basis).
            if (support::fault_fires("simplex.pivot")) {
                error_ = support::Errc::NumericalTrouble;
                return LpStatus::IterLimit;
            }

            // Pivot: update basic values, then eliminate the column.
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                xb_[static_cast<std::size_t>(i)] -= enter_dir * get(i, enter) * t;
            }
            const double enter_value = at_upper_[es] ? span_[es] - t : t;
            const int old_basic = basis_[static_cast<std::size_t>(leave)];
            in_basis_[static_cast<std::size_t>(old_basic)] = false;
            at_upper_[static_cast<std::size_t>(old_basic)] = leave_at_upper;
            basis_[static_cast<std::size_t>(leave)] = enter;
            in_basis_[es] = true;
            at_upper_[es] = false;  // basic status; flag unused while basic
            xb_[static_cast<std::size_t>(leave)] = enter_value;

            const double pivot = get(leave, enter);
            const double inv = 1.0 / pivot;
            for (int j = 0; j < cols_; ++j) at(leave, j) *= inv;
            at(leave, enter) = 1.0;
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                const double f = get(i, enter);
                if (f == 0.0) continue;
                for (int j = 0; j < cols_; ++j) at(i, j) -= f * get(leave, j);
                at(i, enter) = 0.0;
            }
            const double f = obj_[es];
            if (f != 0.0) {
                for (int j = 0; j < cols_; ++j) {
                    obj_[static_cast<std::size_t>(j)] -= f * get(leave, j);
                }
                obj_[es] = 0.0;
            }

            // Devex weight update against the (normalized) pivot row: the
            // entry at(leave, j) equals α_rj / α_rq, exactly the reference
            // ratio the update rule needs.
            const double wq = devex[es];
            double wmax = 1.0;
            for (int j = 0; j < cols_; ++j) {
                const double a = get(leave, j);
                if (a == 0.0) continue;
                const double candidate = a * a * wq;
                std::size_t js = static_cast<std::size_t>(j);
                if (candidate > devex[js]) devex[js] = candidate;
                if (devex[js] > wmax) wmax = devex[js];
            }
            devex[static_cast<std::size_t>(old_basic)] = std::max(wq / (pivot * pivot), 1.0);
            if (wmax > 1e10) std::fill(devex.begin(), devex.end(), 1.0);  // reference reset
        }
    }

    const Model& model_;
    const std::vector<double>& lb_;
    const std::vector<double>& ub_;
    const LpOptions& options_;

    int n_ = 0;
    int m_ = 0;
    int cols_ = 0;
    int artificial_start_ = 0;
    int num_artificial_ = 0;

    std::vector<double> data_;      // m × cols tableau
    std::vector<double> obj_;       // reduced-cost row
    std::vector<double> span_;      // per-column width of [0, d]
    std::vector<bool> at_upper_;    // nonbasic status
    std::vector<bool> in_basis_;
    std::vector<int> basis_;        // row -> basic column
    std::vector<double> xb_;        // basic values
    std::vector<int> aux_col_;      // row -> slack/artificial column (duals)
    std::vector<int> dual_sign_;    // row -> σrow·σcol sign for dual readout
    double bound_slack_ = 0.0;      // exact perturbation budget
    bool deadline_hit_ = false;     // IterLimit caused by deadline/cancel
    support::Errc error_ = support::Errc::None;
};

}  // namespace

LpResult solve_lp(const Model& model, const std::vector<double>* lb,
                  const std::vector<double>* ub, const LpOptions& options) {
    std::vector<double> lb_local;
    std::vector<double> ub_local;
    if (lb == nullptr) {
        lb_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            lb_local[static_cast<std::size_t>(j)] = model.lower_bound(j);
        }
        lb = &lb_local;
    }
    if (ub == nullptr) {
        ub_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            ub_local[static_cast<std::size_t>(j)] = model.upper_bound(j);
        }
        ub = &ub_local;
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        if ((*lb)[static_cast<std::size_t>(j)] == -kInfinity) {
            throw support::Error(support::Errc::InvalidModel,
                                 "simplex: variable '" + model.var_name(j) +
                                     "' has an infinite lower bound (unsupported)");
        }
    }
    BoundedSimplex solver(model, *lb, *ub, options);
    return solver.solve();
}

}  // namespace p4all::ilp
