// Sparse revised simplex for LP relaxations.
//
// Same contract as solve_lp (simplex.hpp): bounded-variable two-phase primal
// simplex in the maximize convention, per-call bound overrides, deterministic
// cost perturbation with an exactly-accounted bound budget, Devex-style
// pricing with a Bland's-rule anti-cycling fallback, cooperative deadlines,
// and maximize-convention duals for the audit layer's weak-duality
// certificate. The difference is purely mechanical: instead of carrying an
// m×n dense tableau and eliminating a full column per pivot, the constraint
// matrix lives in CSC form (sparse.hpp) and the basis in LU + eta-file
// factors, so each iteration costs O(nnz + m²) instead of O(m·n) — the gap
// that makes unrolled NetCache/ConQuest models solve in milliseconds rather
// than seconds.
//
// Determinism: for a fixed model, bounds, and options the pivot sequence is
// a pure function of the inputs (no randomness beyond the seeded, logged
// cost perturbation), so every solve replays bit-for-bit — the property the
// parallel branch-and-bound's thread-count-independence proof rests on.
#pragma once

#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace p4all::ilp {

/// Which LP implementation services a relaxation solve. All three satisfy
/// the LpResult contract (values, duals, bound, bound_slack), so callers —
/// branch-and-bound above all — are backend-agnostic.
enum class LpBackend {
    Sparse,    // revised simplex over CSC + eta-file (this header)
    Dense,     // bounded-variable dense tableau (simplex.cpp)
    Textbook,  // explicit-row two-phase reference (simplex_textbook.cpp)
};

[[nodiscard]] const char* to_string(LpBackend backend) noexcept;

/// Solves the LP relaxation with the sparse revised simplex. Same semantics
/// as solve_lp; `lb`/`ub` override model bounds when non-null.
[[nodiscard]] LpResult solve_lp_sparse(const Model& model,
                                       const std::vector<double>* lb = nullptr,
                                       const std::vector<double>* ub = nullptr,
                                       const LpOptions& options = {});

/// Backend dispatch: the one entry point branch-and-bound and the resilient
/// portfolio use, so root duals / bound slack flow through the same
/// interface no matter which simplex produced them.
[[nodiscard]] LpResult solve_lp_with(LpBackend backend, const Model& model,
                                     const std::vector<double>* lb = nullptr,
                                     const std::vector<double>* ub = nullptr,
                                     const LpOptions& options = {});

}  // namespace p4all::ilp
