// CPLEX LP-format reader.
//
// Model::to_lp_format() writes the generated ILP for inspection; this
// reader parses the same dialect back into a Model, which (a) lets tests
// round-trip every generated model through its textual form, and (b) lets
// the solver stack be exercised on externally authored LP files.
//
// Supported dialect (exactly what the writer produces): `Maximize`/
// `Minimize` with one objective line, `Subject To` rows with optional
// `name:` prefixes, `Bounds` lines `lo <= var [<= hi]`, `Generals` /
// `Binaries` sections, and `End`.
#pragma once

#include <string_view>

#include "ilp/model.hpp"

namespace p4all::ilp {

/// Parses LP-format text into a Model. Throws support::Error with code
/// Errc::ParseError and a line-annotated message on malformed input. Minimize objectives are
/// negated into the Model's maximize convention.
[[nodiscard]] Model parse_lp_format(std::string_view text);

}  // namespace p4all::ilp
