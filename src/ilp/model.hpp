// Mixed-integer linear program model.
//
// The P4All compiler expresses the Figure 10 placement problem as a MILP
// over binary placement variables, integer size variables, and continuous
// memory variables. This model type is solver-facing: it stores variables
// with bounds, linear constraints, and a maximization objective, and can
// render itself in CPLEX LP format for debugging.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace p4all::ilp {

enum class VarType { Continuous, Integer, Binary };

/// Lightweight variable handle (index into the model's variable table).
struct Var {
    int id = -1;

    [[nodiscard]] bool valid() const noexcept { return id >= 0; }
    friend bool operator==(const Var&, const Var&) = default;
};

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A sparse linear expression Σ coeff_j · x_j + constant.
class LinExpr {
public:
    LinExpr() = default;
    explicit LinExpr(double constant) : constant_(constant) {}

    LinExpr& add(Var v, double coeff);
    LinExpr& add_constant(double c) noexcept {
        constant_ += c;
        return *this;
    }
    LinExpr& operator+=(const LinExpr& rhs);

    /// Merges duplicate variables and drops zero coefficients.
    void normalize();

    [[nodiscard]] const std::vector<std::pair<int, double>>& terms() const noexcept {
        return terms_;
    }
    [[nodiscard]] double constant() const noexcept { return constant_; }

    /// Evaluates under a full assignment indexed by variable id.
    [[nodiscard]] double evaluate(const std::vector<double>& values) const;

private:
    std::vector<std::pair<int, double>> terms_;
    double constant_ = 0.0;
};

enum class CmpSense { Le, Ge, Eq };

struct Constraint {
    LinExpr expr;   // constraint is: expr (sense) rhs
    CmpSense sense = CmpSense::Le;
    double rhs = 0.0;
    std::string name;
};

/// The MILP: maximize objective subject to constraints and variable bounds.
class Model {
public:
    Var add_var(std::string name, VarType type, double lb, double ub);
    Var add_binary(std::string name) { return add_var(std::move(name), VarType::Binary, 0, 1); }
    Var add_integer(std::string name, double lb, double ub) {
        return add_var(std::move(name), VarType::Integer, lb, ub);
    }
    Var add_continuous(std::string name, double lb, double ub) {
        return add_var(std::move(name), VarType::Continuous, lb, ub);
    }

    void add_le(LinExpr expr, double rhs, std::string name = {});
    void add_ge(LinExpr expr, double rhs, std::string name = {});
    void add_eq(LinExpr expr, double rhs, std::string name = {});

    /// Sets the maximization objective.
    void set_objective(LinExpr objective);

    [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(types_.size()); }
    [[nodiscard]] int num_constraints() const noexcept {
        return static_cast<int>(constraints_.size());
    }
    [[nodiscard]] int num_integer_vars() const noexcept;

    /// Branch-and-bound hint: higher-priority variables are branched first,
    /// and their "up" (round-toward-one) child is explored first. Model
    /// builders use this to dive on structural decisions (iteration
    /// indicators, placements) before auxiliary variables.
    void set_branch_priority(Var v, int priority);
    [[nodiscard]] int branch_priority(int id) const {
        return priority_.at(static_cast<std::size_t>(id));
    }

    [[nodiscard]] VarType var_type(int id) const { return types_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] double lower_bound(int id) const { return lb_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] double upper_bound(int id) const { return ub_.at(static_cast<std::size_t>(id)); }
    [[nodiscard]] const std::string& var_name(int id) const {
        return names_.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
        return constraints_;
    }
    [[nodiscard]] const LinExpr& objective() const noexcept { return objective_; }

    /// True if `values` satisfies every constraint and bound within `tol`
    /// (integrality of Integer/Binary vars included).
    [[nodiscard]] bool is_feasible(const std::vector<double>& values, double tol = 1e-6) const;

    /// CPLEX LP-format rendering (for --dump-ilp and debugging).
    [[nodiscard]] std::string to_lp_format() const;

private:
    void add_constraint(LinExpr expr, CmpSense sense, double rhs, std::string name);

    std::vector<VarType> types_;
    std::vector<double> lb_;
    std::vector<double> ub_;
    std::vector<int> priority_;
    std::vector<std::string> names_;
    std::vector<Constraint> constraints_;
    LinExpr objective_;
};

}  // namespace p4all::ilp
