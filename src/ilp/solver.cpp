#include "ilp/solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>

#include "support/faultpoint.hpp"

namespace p4all::ilp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Rounds the LP solution's integer variables and re-checks feasibility —
/// a cheap incumbent heuristic that often succeeds on placement models.
bool try_rounding(const Model& model, const std::vector<double>& lp_values,
                  std::vector<double>& rounded_out) {
    std::vector<double> rounded = lp_values;
    int first_int = -1;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        if (first_int < 0) first_int = j;
        const std::size_t idx = static_cast<std::size_t>(j);
        rounded[idx] = std::clamp(std::round(rounded[idx]), model.lower_bound(j),
                                  model.upper_bound(j));
    }
    // Fault point: a firing simulates a buggy rounding heuristic — the
    // incumbent is corrupted and the feasibility re-check is skipped, so the
    // only thing standing between the bad layout and the user is the audit
    // gate downstream.
    if (support::fault_fires("bnb.round")) {
        if (first_int >= 0) rounded[static_cast<std::size_t>(first_int)] += 1.0;
        rounded_out = std::move(rounded);
        return true;
    }
    if (!model.is_feasible(rounded, 1e-6)) return false;
    rounded_out = std::move(rounded);
    return true;
}

/// Branch-variable selection shared by both engines: highest priority class
/// first, most fractional within the class.
struct BranchChoice {
    int var = -1;
    double frac = 0.0;
    int prio = 0;
};

BranchChoice pick_branch(const Model& model, const std::vector<double>& values,
                         double int_tol) {
    BranchChoice choice;
    choice.frac = int_tol;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        const double v = values[static_cast<std::size_t>(j)];
        const double frac = std::abs(v - std::round(v));
        if (frac <= int_tol) continue;
        const int prio = model.branch_priority(j);
        if (choice.var < 0 || prio > choice.prio ||
            (prio == choice.prio && frac > choice.frac)) {
            choice.var = j;
            choice.frac = frac;
            choice.prio = prio;
        }
    }
    return choice;
}

/// Snaps the integer variables of an LP assignment to exact integers.
void snap_integers(const Model& model, std::vector<double>& values) {
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) != VarType::Continuous) {
            values[static_cast<std::size_t>(j)] =
                std::round(values[static_cast<std::size_t>(j)]);
        }
    }
}

struct Node {
    std::vector<double> lb;
    std::vector<double> ub;
};

// ---------------------------------------------------------------------------
// Deterministic parallel best-first search
// ---------------------------------------------------------------------------

/// A best-first node: bounds plus its deterministic order key. `bound` is
/// the parent relaxation's perturbation-corrected bound (the tightest known
/// upper bound on the subtree); `seq` is the creation sequence number,
/// assigned in serial commit order, so (bound desc, seq desc) is a strict
/// total order independent of thread timing. Ties on the bound pop the
/// NEWEST node first (LIFO): placement relaxations are massively degenerate
/// — most children inherit the parent bound exactly — and FIFO order would
/// sweep those plateaus breadth-first, exploding the frontier before any
/// incumbent exists. LIFO dives like DFS on plateaus while still jumping to
/// strictly better-bounded subtrees, and is just as deterministic.
struct BfNode {
    std::vector<double> lb;
    std::vector<double> ub;
    double bound = kInfinity;
    std::uint64_t seq = 0;
};

struct BfNodeOrder {
    bool operator()(const BfNode& a, const BfNode& b) const {
        if (a.bound != b.bound) return a.bound < b.bound;  // max-heap on bound
        return a.seq < b.seq;                              // then LIFO (dive)
    }
};

/// Work-stealing thread pool for batch LP evaluation. Workers (plus the
/// calling thread) steal task indices from a shared atomic counter, so a
/// slow LP never serializes the batch behind it. The pool carries no task
/// state of its own — determinism is the caller's property (tasks write to
/// disjoint slots; the caller joins the batch before reading any of them).
class LpWorkerPool {
public:
    explicit LpWorkerPool(int extra_workers) {
        for (int i = 0; i < extra_workers; ++i) {
            workers_.emplace_back([this](const std::stop_token& stop) { worker(stop); });
        }
    }

    ~LpWorkerPool() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        cv_.notify_all();
    }

    /// Runs fn(0..count-1) across the pool and the calling thread; returns
    /// when every task has finished.
    void run(int count, const std::function<void(int)>& fn) {
        if (count <= 0) return;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            fn_ = &fn;
            count_ = count;
            next_.store(0, std::memory_order_relaxed);
            remaining_.store(count, std::memory_order_relaxed);
            ++generation_;
        }
        cv_.notify_all();
        drain(fn, count);
        // The round is over only when every task is done AND every worker
        // that joined it has left drain(): a worker still inside drain()
        // after the last task completes would otherwise race the next
        // round's counter reset, steal an index there with this round's
        // (destroyed) task function, and double-execute it — driving
        // `remaining_` negative and deadlocking the next run() forever.
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] {
            return remaining_.load(std::memory_order_acquire) == 0 && draining_ == 0;
        });
        fn_ = nullptr;
    }

private:
    void drain(const std::function<void(int)>& fn, int count) {
        while (true) {
            const int i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            fn(i);
            if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                // Serialize with the caller's predicate-check-then-sleep: a
                // notify issued without the mutex can land in the window
                // between the two and be lost, leaving run() asleep forever.
                { const std::lock_guard<std::mutex> lock(mutex_); }
                done_cv_.notify_all();
            }
        }
    }

    void worker(const std::stop_token& stop) {
        std::uint64_t seen = 0;
        while (!stop.stop_requested()) {
            const std::function<void(int)>* fn = nullptr;
            int count = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
                if (shutdown_) return;
                seen = generation_;
                fn = fn_;
                count = count_;
                if (fn != nullptr) ++draining_;  // round membership (see run)
            }
            if (fn != nullptr) {
                drain(*fn, count);
                { const std::lock_guard<std::mutex> lock(mutex_); --draining_; }
                done_cv_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)>* fn_ = nullptr;
    int count_ = 0;
    std::uint64_t generation_ = 0;
    int draining_ = 0;  // workers currently inside drain(); guarded by mutex_
    bool shutdown_ = false;
    std::atomic<int> next_{0};
    std::atomic<int> remaining_{0};
    std::vector<std::jthread> workers_;
};

/// Nodes relaxed per round. Fixed (never derived from the thread count):
/// the batch composition is part of the deterministic search order, so the
/// same tree unfolds whether one worker or eight drain the batch.
constexpr int kBestFirstBatch = 8;

Solution solve_milp_best_first(const Model& model, const SolveOptions& options,
                               const support::Deadline& deadline,
                               Clock::time_point start) {
    LpOptions lp_options = options.lp;
    lp_options.deadline = deadline;

    Solution best;
    best.status = SolveStatus::Infeasible;

    bool have_incumbent = false;
    bool abandoned_subtree = false;
    // Atomic mirror of the incumbent objective: written only during serial
    // commits (between batches), read by anyone. Workers never act on it
    // mid-batch — all pruning happens in the serial sections — which is
    // exactly why the search stays deterministic.
    std::atomic<double> incumbent_obj{-kInfinity};
    if (!options.warm_start.empty() && model.is_feasible(options.warm_start, 1e-6)) {
        have_incumbent = true;
        incumbent_obj.store(model.objective().evaluate(options.warm_start),
                            std::memory_order_relaxed);
        best.values = options.warm_start;
        best.objective = incumbent_obj.load(std::memory_order_relaxed);
    }

    const auto prune_cutoff = [&]() {
        const double inc = incumbent_obj.load(std::memory_order_relaxed);
        return inc + std::max(options.gap_absolute, options.gap_relative * std::abs(inc));
    };

    std::priority_queue<BfNode, std::vector<BfNode>, BfNodeOrder> queue;
    {
        BfNode root;
        root.lb.resize(static_cast<std::size_t>(model.num_vars()));
        root.ub.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            root.lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
            root.ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
        }
        queue.push(std::move(root));
    }
    std::uint64_t next_seq = 1;

    const int threads = options.threads > 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
    LpWorkerPool pool(threads - 1);

    std::vector<BfNode> batch;
    std::vector<LpResult> results;
    const auto finish = [&](SolveStatus status, support::Errc error,
                            const std::string& detail) {
        best.status = status;
        best.error = error;
        best.error_detail = detail;
        best.seconds = seconds_since(start);
        return best;
    };

    while (!queue.empty()) {
        if (deadline.expired()) {
            return finish(SolveStatus::Limit,
                          deadline.cancelled() ? support::Errc::Cancelled
                                               : support::Errc::DeadlineExceeded,
                          deadline.cancelled() ? "cancellation requested during search"
                                               : "time budget exhausted during search");
        }

        // --- serial batch selection -----------------------------------
        batch.clear();
        while (!queue.empty() && static_cast<int>(batch.size()) < kBestFirstBatch) {
            if (best.nodes >= options.max_nodes) {
                if (batch.empty()) {
                    return finish(SolveStatus::Limit, support::Errc::ResourceLimit,
                                  "node limit reached (" + std::to_string(options.max_nodes) +
                                      " nodes)");
                }
                break;
            }
            BfNode node = std::move(const_cast<BfNode&>(queue.top()));
            queue.pop();
            ++best.nodes;
            // Parent-bound pruning uses the incumbent as of this serial
            // section — the same value a serial best-first run would see.
            if (have_incumbent && node.bound <= prune_cutoff()) continue;
            // Fault point: fired in the serial section so the shared fault
            // budget is consumed in deterministic node order no matter how
            // many workers evaluate the surviving batch.
            if (support::fault_fires("bnb.node")) {
                abandoned_subtree = true;
                continue;
            }
            batch.push_back(std::move(node));
        }
        if (batch.empty()) {
            if (best.nodes >= options.max_nodes && !queue.empty()) {
                return finish(SolveStatus::Limit, support::Errc::ResourceLimit,
                              "node limit reached (" + std::to_string(options.max_nodes) +
                                  " nodes)");
            }
            continue;
        }

        // --- parallel relaxation --------------------------------------
        results.assign(batch.size(), LpResult{});
        pool.run(static_cast<int>(batch.size()), [&](int i) {
            const BfNode& node = batch[static_cast<std::size_t>(i)];
            results[static_cast<std::size_t>(i)] =
                solve_lp_with(options.lp_backend, model, &node.lb, &node.ub, lp_options);
        });

        // --- serial commit, in batch (deterministic) order ------------
        for (std::size_t k = 0; k < batch.size(); ++k) {
            BfNode& node = batch[k];
            const LpResult& lp = results[k];
            best.lp_iterations += lp.iterations;
            if (node.seq == 0 && lp.status == LpStatus::Optimal) {
                // Root relaxation: keep its dual certificate so the audit
                // layer can independently witness the global bound. The
                // duals arrive through the backend-agnostic LpResult
                // contract — dense tableau and sparse BTRAN alike.
                best.root_duals = lp.duals;
                best.root_bound = lp.bound;
                best.root_bound_slack = lp.bound_slack;
            }
            if (lp.status == LpStatus::Infeasible) continue;
            if (lp.status == LpStatus::Unbounded) {
                return finish(SolveStatus::Unbounded, support::Errc::Unbounded,
                              "objective is unbounded over the relaxation");
            }
            if (lp.status == LpStatus::IterLimit) {
                if (lp.deadline_hit) {
                    return finish(SolveStatus::Limit, lp.error,
                                  lp.error == support::Errc::Cancelled
                                      ? "cancellation requested inside simplex"
                                      : "time budget exhausted inside simplex");
                }
                abandoned_subtree = true;
                if (lp.error == support::Errc::NumericalTrouble &&
                    best.error == support::Errc::None) {
                    best.error = support::Errc::NumericalTrouble;
                    best.error_detail = "simplex reported numerical trouble";
                }
                continue;
            }
            if (have_incumbent && lp.bound <= prune_cutoff()) continue;

            const BranchChoice branch = pick_branch(model, lp.values, options.int_tol);
            if (branch.var < 0) {
                // Integral: candidate incumbent. Strict improvement keeps
                // the commit deterministic (ties keep the earlier, i.e.
                // lower-seq, incumbent).
                const double obj = lp.objective;
                if (!have_incumbent || obj > incumbent_obj.load(std::memory_order_relaxed)) {
                    have_incumbent = true;
                    incumbent_obj.store(obj, std::memory_order_relaxed);
                    best.values = lp.values;
                    snap_integers(model, best.values);
                    best.objective = obj;
                }
                continue;
            }

            // Incumbent heuristic at the root and occasionally afterwards
            // (same cadence as the serial engine, counted in commit order).
            if (!have_incumbent || (best.nodes & 0x3F) == 0) {
                std::vector<double> rounded;
                if (try_rounding(model, lp.values, rounded)) {
                    const double obj = model.objective().evaluate(rounded);
                    if (!have_incumbent || obj > incumbent_obj.load(std::memory_order_relaxed)) {
                        have_incumbent = true;
                        incumbent_obj.store(obj, std::memory_order_relaxed);
                        best.values = std::move(rounded);
                        best.objective = obj;
                    }
                }
            }

            const std::size_t bidx = static_cast<std::size_t>(branch.var);
            const double v = std::clamp(lp.values[bidx], node.lb[bidx], node.ub[bidx]);
            const double floor_v = std::floor(v);
            BfNode down;
            down.lb = node.lb;
            down.ub = node.ub;
            down.ub[bidx] = std::min(down.ub[bidx], floor_v);
            down.bound = lp.bound;
            BfNode up;
            up.lb = std::move(node.lb);
            up.ub = std::move(node.ub);
            up.lb[bidx] = std::max(up.lb[bidx], floor_v + 1);
            up.bound = lp.bound;
            const bool down_valid = down.lb[bidx] <= down.ub[bidx];
            const bool up_valid = up.lb[bidx] <= up.ub[bidx];
            // The preferred child (structural dive / LP-suggested side)
            // gets the larger sequence number: ties on the bound pop
            // newest-first, so it is explored first — mirroring the DFS dive.
            const bool up_first = branch.prio > 0 || v - floor_v > 0.5;
            if (up_first) {
                if (down_valid) {
                    down.seq = next_seq++;
                    queue.push(std::move(down));
                }
                if (up_valid) {
                    up.seq = next_seq++;
                    queue.push(std::move(up));
                }
            } else {
                if (up_valid) {
                    up.seq = next_seq++;
                    queue.push(std::move(up));
                }
                if (down_valid) {
                    down.seq = next_seq++;
                    queue.push(std::move(down));
                }
            }
        }
    }

    best.seconds = seconds_since(start);
    if (have_incumbent) {
        best.status = abandoned_subtree ? SolveStatus::Limit : SolveStatus::Optimal;
    } else if (abandoned_subtree) {
        best.status = SolveStatus::Limit;
    }
    return best;
}

}  // namespace

std::int64_t Solution::value_int(Var v) const {
    return static_cast<std::int64_t>(
        std::llround(values.at(static_cast<std::size_t>(v.id))));
}

Solution solve_milp(const Model& model, const SolveOptions& options) {
    const auto start = Clock::now();
    // Combine the legacy scalar limit with the cooperative deadline; the
    // tighter bound wins and is threaded into every LP solve below.
    const support::Deadline deadline =
        options.deadline.tightened(options.time_limit_seconds);

    Solution best;
    if (options.search == SearchMode::BestFirst) {
        best = solve_milp_best_first(model, options, deadline, start);
    } else {
        best = [&] {
            LpOptions lp_options = options.lp;
            lp_options.deadline = deadline;

            Solution out;
            out.status = SolveStatus::Infeasible;

            std::vector<double> root_lb(static_cast<std::size_t>(model.num_vars()));
            std::vector<double> root_ub(static_cast<std::size_t>(model.num_vars()));
            for (int j = 0; j < model.num_vars(); ++j) {
                root_lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
                root_ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
            }

            bool have_incumbent = false;
            bool abandoned_subtree = false;
            double incumbent_obj = -kInfinity;
            if (!options.warm_start.empty() && model.is_feasible(options.warm_start, 1e-6)) {
                have_incumbent = true;
                incumbent_obj = model.objective().evaluate(options.warm_start);
                out.values = options.warm_start;
                out.objective = incumbent_obj;
            }

            std::vector<Node> stack;
            stack.push_back({std::move(root_lb), std::move(root_ub)});

            while (!stack.empty()) {
                if (out.nodes >= options.max_nodes) {
                    out.status = SolveStatus::Limit;
                    out.error = support::Errc::ResourceLimit;
                    out.error_detail = "node limit reached (" +
                                       std::to_string(options.max_nodes) + " nodes)";
                    return out;
                }
                if (deadline.expired()) {
                    out.status = SolveStatus::Limit;
                    out.error = deadline.cancelled() ? support::Errc::Cancelled
                                                     : support::Errc::DeadlineExceeded;
                    out.error_detail = deadline.cancelled()
                                           ? "cancellation requested during search"
                                           : "time budget exhausted during search";
                    return out;
                }
                const Node node = std::move(stack.back());
                stack.pop_back();
                ++out.nodes;

                // Fault point: simulates a node whose relaxation blew up — the
                // subtree is abandoned, so the search ends incomplete (Limit,
                // never a false Optimal).
                if (support::fault_fires("bnb.node")) {
                    abandoned_subtree = true;
                    continue;
                }

                const LpResult lp =
                    solve_lp_with(options.lp_backend, model, &node.lb, &node.ub, lp_options);
                out.lp_iterations += lp.iterations;
                if (out.nodes == 1 && lp.status == LpStatus::Optimal) {
                    // Root relaxation: keep its dual certificate so the audit
                    // layer can independently witness the global bound.
                    out.root_duals = lp.duals;
                    out.root_bound = lp.bound;
                    out.root_bound_slack = lp.bound_slack;
                }
                if (lp.status == LpStatus::Infeasible) continue;
                if (lp.status == LpStatus::Unbounded) {
                    // Unbounded relaxation at the root means an unbounded MILP
                    // for our models (integer vars are bounded).
                    out.status = SolveStatus::Unbounded;
                    out.error = support::Errc::Unbounded;
                    out.error_detail = "objective is unbounded over the relaxation";
                    return out;
                }
                if (lp.status == LpStatus::IterLimit) {
                    if (lp.deadline_hit) {
                        // The LP itself ran out of budget: stop the whole
                        // search and return the incumbent (anytime semantics).
                        out.status = SolveStatus::Limit;
                        out.error = lp.error;
                        out.error_detail = lp.error == support::Errc::Cancelled
                                               ? "cancellation requested inside simplex"
                                               : "time budget exhausted inside simplex";
                        return out;
                    }
                    // This subtree could not be resolved: remember that the
                    // search is incomplete so we never falsely claim optimality.
                    abandoned_subtree = true;
                    if (lp.error == support::Errc::NumericalTrouble &&
                        out.error == support::Errc::None) {
                        out.error = support::Errc::NumericalTrouble;
                        out.error_detail = "simplex reported numerical trouble";
                    }
                    continue;
                }
                // Prune on the perturbation-corrected bound (a valid upper
                // bound on every solution in this subtree), within the
                // optimality gap.
                if (have_incumbent &&
                    lp.bound <= incumbent_obj + std::max(options.gap_absolute,
                                                         options.gap_relative *
                                                             std::abs(incumbent_obj))) {
                    continue;
                }

                const BranchChoice branch = pick_branch(model, lp.values, options.int_tol);
                if (branch.var < 0) {
                    // Integral: new incumbent.
                    have_incumbent = true;
                    incumbent_obj = lp.objective;
                    out.values = lp.values;
                    snap_integers(model, out.values);
                    out.objective = incumbent_obj;
                    continue;
                }

                // Incumbent heuristic at the root and occasionally afterwards.
                if (!have_incumbent || (out.nodes & 0x3F) == 0) {
                    std::vector<double> rounded;
                    if (try_rounding(model, lp.values, rounded)) {
                        const double obj = model.objective().evaluate(rounded);
                        if (!have_incumbent || obj > incumbent_obj) {
                            have_incumbent = true;
                            incumbent_obj = obj;
                            out.values = std::move(rounded);
                            out.objective = obj;
                        }
                    }
                }

                const std::size_t bidx = static_cast<std::size_t>(branch.var);
                // Clamp the LP value into the node's bounds before splitting:
                // LP tolerances can leave it epsilon outside, which would
                // create an empty child interval.
                const double v = std::clamp(lp.values[bidx], node.lb[bidx], node.ub[bidx]);
                const double floor_v = std::floor(v);
                Node down = node;
                down.ub[bidx] = std::min(down.ub[bidx], floor_v);
                Node up = std::move(node);
                up.lb[bidx] = std::max(up.lb[bidx], floor_v + 1);
                const bool down_valid = down.lb[bidx] <= down.ub[bidx];
                const bool up_valid = up.lb[bidx] <= up.ub[bidx];
                // DFS order: prioritized (structural) variables dive up first —
                // instantiate the iteration / take the placement — which
                // reaches a feasible incumbent quickly; otherwise follow the
                // LP value.
                const bool up_first = branch.prio > 0 || v - floor_v > 0.5;
                if (up_first) {
                    if (down_valid) stack.push_back(std::move(down));
                    if (up_valid) stack.push_back(std::move(up));
                } else {
                    if (up_valid) stack.push_back(std::move(up));
                    if (down_valid) stack.push_back(std::move(down));
                }
            }

            if (have_incumbent) {
                out.status = abandoned_subtree ? SolveStatus::Limit : SolveStatus::Optimal;
            } else if (abandoned_subtree) {
                out.status = SolveStatus::Limit;
            }
            return out;
        }();
        best.seconds = seconds_since(start);
    }

    if (best.seconds == 0.0) best.seconds = seconds_since(start);
    if (best.status == SolveStatus::Limit && best.error == support::Errc::None) {
        best.error = support::Errc::ResourceLimit;
        best.error_detail = "search incomplete: subtree abandoned at LP limit";
    }
    if (best.status == SolveStatus::Optimal) {
        best.error = support::Errc::None;
        best.error_detail.clear();
    } else if (best.status == SolveStatus::Infeasible) {
        best.error = support::Errc::Infeasible;
        if (best.error_detail.empty()) {
            best.error_detail = "no integer assignment satisfies the constraints";
        }
    } else if (best.status == SolveStatus::Unbounded) {
        best.error = support::Errc::Unbounded;
        if (best.error_detail.empty()) {
            best.error_detail = "objective is unbounded over the relaxation";
        }
    }
    return best;
}

namespace {

void enumerate(const Model& model, std::vector<int>& int_vars, std::size_t depth,
               std::vector<double>& lb, std::vector<double>& ub, Solution& best,
               bool& found, const support::Deadline& deadline, bool& stopped) {
    if (stopped) return;
    if (depth == int_vars.size()) {
        // Poll between leaf LP solves: the amortized cost is one clock read
        // per assignment, and each leaf LP already honors the deadline.
        if (deadline.expired()) {
            stopped = true;
            return;
        }
        // All integers fixed: solve the continuous remainder (or just check).
        LpOptions lp_options;
        lp_options.deadline = deadline;
        const LpResult lp = solve_lp(model, &lb, &ub, lp_options);
        best.lp_iterations += lp.iterations;
        ++best.nodes;
        if (lp.deadline_hit) {
            stopped = true;
            return;
        }
        if (lp.status != LpStatus::Optimal) return;
        if (!found || lp.objective > best.objective) {
            found = true;
            best.objective = lp.objective;
            best.values = lp.values;
            snap_integers(model, best.values);
        }
        return;
    }
    const int j = int_vars[depth];
    const std::size_t idx = static_cast<std::size_t>(j);
    const double save_lb = lb[idx];
    const double save_ub = ub[idx];
    for (double v = save_lb; v <= save_ub + 1e-9 && !stopped; v += 1.0) {
        lb[idx] = v;
        ub[idx] = v;
        enumerate(model, int_vars, depth + 1, lb, ub, best, found, deadline,
                  stopped);
    }
    lb[idx] = save_lb;
    ub[idx] = save_ub;
}

}  // namespace

Solution solve_exhaustive(const Model& model, std::int64_t max_combinations,
                          const support::Deadline& deadline) {
    const auto start = Clock::now();
    Solution best;
    std::vector<int> int_vars;
    std::int64_t combos = 1;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        if (model.upper_bound(j) == kInfinity) {
            // Structured refusal instead of a throw: portfolio drivers treat
            // this exactly like any other backend that could not run.
            best.status = SolveStatus::Limit;
            best.error = support::Errc::DomainTooLarge;
            best.error_detail = "unbounded integer variable '" +
                                model.var_name(j) + "'";
            best.seconds = seconds_since(start);
            return best;
        }
        const auto domain = static_cast<std::int64_t>(
            model.upper_bound(j) - model.lower_bound(j) + 1);
        combos *= std::max<std::int64_t>(domain, 1);
        if (combos > max_combinations) {
            best.status = SolveStatus::Limit;
            best.error = support::Errc::DomainTooLarge;
            best.error_detail = "integer domain exceeds " +
                                std::to_string(max_combinations) +
                                " combinations";
            best.seconds = seconds_since(start);
            return best;
        }
        int_vars.push_back(j);
    }
    std::vector<double> lb(static_cast<std::size_t>(model.num_vars()));
    std::vector<double> ub(static_cast<std::size_t>(model.num_vars()));
    for (int j = 0; j < model.num_vars(); ++j) {
        lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
        ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
    }
    bool found = false;
    bool stopped = false;
    enumerate(model, int_vars, 0, lb, ub, best, found, deadline, stopped);
    if (stopped) {
        // Keep the best-so-far assignment: even a truncated enumeration can
        // hand the caller a usable (audited) incumbent.
        best.status = SolveStatus::Limit;
        best.error = deadline.cancelled() ? support::Errc::Cancelled
                                          : support::Errc::DeadlineExceeded;
        best.error_detail = "enumeration stopped before covering the domain";
    } else if (found) {
        best.status = SolveStatus::Optimal;
    } else {
        best.status = SolveStatus::Infeasible;
        best.error = support::Errc::Infeasible;
        best.error_detail = "no integer assignment satisfies the constraints";
    }
    best.seconds = seconds_since(start);
    return best;
}

}  // namespace p4all::ilp
