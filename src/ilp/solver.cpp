#include "ilp/solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "ilp/presolve.hpp"
#include "support/faultpoint.hpp"

namespace p4all::ilp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Rounds the LP solution's integer variables and re-checks feasibility —
/// a cheap incumbent heuristic that often succeeds on placement models.
bool try_rounding(const Model& model, const std::vector<double>& lp_values,
                  std::vector<double>& rounded_out) {
    std::vector<double> rounded = lp_values;
    int first_int = -1;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        if (first_int < 0) first_int = j;
        const std::size_t idx = static_cast<std::size_t>(j);
        rounded[idx] = std::clamp(std::round(rounded[idx]), model.lower_bound(j),
                                  model.upper_bound(j));
    }
    // Fault point: a firing simulates a buggy rounding heuristic — the
    // incumbent is corrupted and the feasibility re-check is skipped, so the
    // only thing standing between the bad layout and the user is the audit
    // gate downstream.
    if (support::fault_fires("bnb.round")) {
        if (first_int >= 0) rounded[static_cast<std::size_t>(first_int)] += 1.0;
        rounded_out = std::move(rounded);
        return true;
    }
    if (!model.is_feasible(rounded, 1e-6)) return false;
    rounded_out = std::move(rounded);
    return true;
}

/// Per-variable branching history: the average objective degradation per
/// unit of fractionality closed, kept separately for the down and the up
/// child. Every observation is recorded in the engines' serial commit
/// sections, so the table's state at any decision point is a pure function
/// of the search tree — never of thread timing — and the pseudocost-guided
/// tree stays bit-identical at every thread count.
class Pseudocosts {
public:
    explicit Pseudocosts(int n)
        : sum_(static_cast<std::size_t>(2 * n), 0.0),
          cnt_(static_cast<std::size_t>(2 * n), 0) {}

    /// One observed branching outcome: `degradation` = parent LP objective −
    /// child LP objective (clamped at 0: maximize convention), `frac_moved`
    /// = the fractional distance the branch closed (f down, 1−f up).
    void record(int var, bool up, double frac_moved, double degradation) {
        if (frac_moved < 1e-9) return;
        const double per_unit = std::max(degradation, 0.0) / frac_moved;
        const std::size_t k = slot(var, up);
        sum_[k] += per_unit;
        cnt_[k] += 1;
        global_sum_ += per_unit;
        global_cnt_ += 1;
    }

    /// Estimated per-unit degradation. Variables with no history fall back
    /// to the global average (the cheap half of reliability branching), and
    /// before any observation at all the estimate is 1.0 — which makes the
    /// product score degenerate to f·(1−f), i.e. plain most-fractional
    /// selection, so the first branching decision matches the historical
    /// engine.
    [[nodiscard]] double estimate(int var, bool up) const {
        const std::size_t k = slot(var, up);
        if (cnt_[k] > 0) return sum_[k] / static_cast<double>(cnt_[k]);
        if (global_cnt_ > 0) return global_sum_ / static_cast<double>(global_cnt_);
        return 1.0;
    }

private:
    [[nodiscard]] static std::size_t slot(int var, bool up) {
        return static_cast<std::size_t>(2 * var + (up ? 1 : 0));
    }

    std::vector<double> sum_;
    std::vector<int> cnt_;
    double global_sum_ = 0.0;
    std::int64_t global_cnt_ = 0;
};

/// Branch-variable selection shared by both engines: highest priority class
/// first; within the class, the largest pseudocost product score
/// max(est_down·f, ε)·max(est_up·(1−f), ε) — the standard "expected
/// degradation in both children" criterion. Exact score ties (common before
/// any history exists) break on larger fractionality, then smallest index.
struct BranchChoice {
    int var = -1;
    double frac = 0.0;  // distance to the nearest integer
    int prio = 0;
};

BranchChoice pick_branch(const Model& model, const std::vector<double>& values,
                         double int_tol, const Pseudocosts& pc) {
    BranchChoice choice;
    double best_score = -1.0;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        const double v = values[static_cast<std::size_t>(j)];
        const double frac = std::abs(v - std::round(v));
        if (frac <= int_tol) continue;
        const double f = v - std::floor(v);
        const int prio = model.branch_priority(j);
        const double score = std::max(pc.estimate(j, false) * f, 1e-6) *
                             std::max(pc.estimate(j, true) * (1.0 - f), 1e-6);
        const bool better =
            choice.var < 0 || prio > choice.prio ||
            (prio == choice.prio &&
             (score > best_score || (score == best_score && frac > choice.frac)));
        if (better) {
            choice.var = j;
            choice.frac = frac;
            choice.prio = prio;
            best_score = score;
        }
    }
    return choice;
}

/// Snaps the integer variables of an LP assignment to exact integers.
void snap_integers(const Model& model, std::vector<double>& values) {
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) != VarType::Continuous) {
            values[static_cast<std::size_t>(j)] =
                std::round(values[static_cast<std::size_t>(j)]);
        }
    }
}

/// Everything both engines need beyond SolveOptions, prepared once by
/// solve_milp: the model to evaluate feasibility/objectives against (`base`,
/// no cut rows), the model every LP relaxes (`work`, base + certified cut
/// rows), the presolved root bounds (which double as the frozen perturbation
/// reference for the whole tree), and the root cut loop's outputs.
struct SearchContext {
    const Model* base = nullptr;
    const Model* work = nullptr;
    const std::vector<double>* root_lb = nullptr;
    const std::vector<double>* root_ub = nullptr;
    /// Optimal basis of the final (cut-extended) root LP; seeds the engine's
    /// root node so the re-solve is a near-free dual-simplex confirmation.
    std::shared_ptr<const SimplexBasis> root_basis;
    /// True when the cut loop already committed Solution::root_duals /
    /// root_bound for the cut-extended root — the engine then skips its own
    /// root-certificate capture.
    bool root_certified = false;
    /// Sparse backend with warm starts enabled: thread parent bases to
    /// children and capture each node's optimal basis.
    bool use_warm = false;
};

struct Node {
    std::vector<double> lb;
    std::vector<double> ub;
    /// Parent's optimal basis (shared by both children; null at the root
    /// unless the cut loop captured one).
    std::shared_ptr<const SimplexBasis> warm;
    // Pseudocost bookkeeping: which branch created this node, and the
    // parent's LP objective to measure the degradation against.
    int branch_var = -1;
    bool branch_up = false;
    double branch_frac = 0.0;
    double parent_obj = 0.0;
};

// ---------------------------------------------------------------------------
// Deterministic parallel best-first search
// ---------------------------------------------------------------------------

/// A best-first node: bounds plus its deterministic order key. `bound` is
/// the parent relaxation's perturbation-corrected bound (the tightest known
/// upper bound on the subtree); `seq` is the creation sequence number,
/// assigned in serial commit order, so (bound desc, seq desc) is a strict
/// total order independent of thread timing. Ties on the bound pop the
/// NEWEST node first (LIFO): placement relaxations are massively degenerate
/// — most children inherit the parent bound exactly — and FIFO order would
/// sweep those plateaus breadth-first, exploding the frontier before any
/// incumbent exists. LIFO dives like DFS on plateaus while still jumping to
/// strictly better-bounded subtrees, and is just as deterministic.
struct BfNode {
    std::vector<double> lb;
    std::vector<double> ub;
    double bound = kInfinity;
    std::uint64_t seq = 0;
    std::shared_ptr<const SimplexBasis> warm;
    int branch_var = -1;
    bool branch_up = false;
    double branch_frac = 0.0;
    double parent_obj = 0.0;
};

struct BfNodeOrder {
    bool operator()(const BfNode& a, const BfNode& b) const {
        if (a.bound != b.bound) return a.bound < b.bound;  // max-heap on bound
        return a.seq < b.seq;                              // then LIFO (dive)
    }
};

/// Work-stealing thread pool for batch LP evaluation. Workers (plus the
/// calling thread) steal task indices from a shared atomic counter, so a
/// slow LP never serializes the batch behind it. The pool carries no task
/// state of its own — determinism is the caller's property (tasks write to
/// disjoint slots; the caller joins the batch before reading any of them).
class LpWorkerPool {
public:
    explicit LpWorkerPool(int extra_workers) {
        for (int i = 0; i < extra_workers; ++i) {
            workers_.emplace_back([this](const std::stop_token& stop) { worker(stop); });
        }
    }

    ~LpWorkerPool() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        cv_.notify_all();
    }

    /// Runs fn(0..count-1) across the pool and the calling thread; returns
    /// when every task has finished.
    void run(int count, const std::function<void(int)>& fn) {
        if (count <= 0) return;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            fn_ = &fn;
            count_ = count;
            next_.store(0, std::memory_order_relaxed);
            remaining_.store(count, std::memory_order_relaxed);
            ++generation_;
        }
        cv_.notify_all();
        drain(fn, count);
        // The round is over only when every task is done AND every worker
        // that joined it has left drain(): a worker still inside drain()
        // after the last task completes would otherwise race the next
        // round's counter reset, steal an index there with this round's
        // (destroyed) task function, and double-execute it — driving
        // `remaining_` negative and deadlocking the next run() forever.
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] {
            return remaining_.load(std::memory_order_acquire) == 0 && draining_ == 0;
        });
        fn_ = nullptr;
    }

private:
    void drain(const std::function<void(int)>& fn, int count) {
        while (true) {
            const int i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            fn(i);
            if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                // Serialize with the caller's predicate-check-then-sleep: a
                // notify issued without the mutex can land in the window
                // between the two and be lost, leaving run() asleep forever.
                { const std::lock_guard<std::mutex> lock(mutex_); }
                done_cv_.notify_all();
            }
        }
    }

    void worker(const std::stop_token& stop) {
        std::uint64_t seen = 0;
        while (!stop.stop_requested()) {
            const std::function<void(int)>* fn = nullptr;
            int count = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
                if (shutdown_) return;
                seen = generation_;
                fn = fn_;
                count = count_;
                if (fn != nullptr) ++draining_;  // round membership (see run)
            }
            if (fn != nullptr) {
                drain(*fn, count);
                { const std::lock_guard<std::mutex> lock(mutex_); --draining_; }
                done_cv_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    const std::function<void(int)>* fn_ = nullptr;
    int count_ = 0;
    std::uint64_t generation_ = 0;
    int draining_ = 0;  // workers currently inside drain(); guarded by mutex_
    bool shutdown_ = false;
    std::atomic<int> next_{0};
    std::atomic<int> remaining_{0};
    std::vector<std::jthread> workers_;
};

/// Nodes relaxed per round. Fixed (never derived from the thread count):
/// the batch composition is part of the deterministic search order, so the
/// same tree unfolds whether one worker or eight drain the batch.
constexpr int kBestFirstBatch = 8;

Solution solve_milp_best_first(const SearchContext& ctx, const SolveOptions& options,
                               const support::Deadline& deadline,
                               Clock::time_point start) {
    const Model& base = *ctx.base;
    const Model& work = *ctx.work;
    LpOptions lp_options = options.lp;
    lp_options.deadline = deadline;
    lp_options.perturb_ref_lb = ctx.root_lb;
    lp_options.perturb_ref_ub = ctx.root_ub;

    Solution best;
    best.status = SolveStatus::Infeasible;

    bool have_incumbent = false;
    bool abandoned_subtree = false;
    // Atomic mirror of the incumbent objective: written only during serial
    // commits (between batches), read by anyone. Workers never act on it
    // mid-batch — all pruning happens in the serial sections — which is
    // exactly why the search stays deterministic.
    std::atomic<double> incumbent_obj{-kInfinity};
    if (!options.warm_start.empty() && base.is_feasible(options.warm_start, 1e-6)) {
        have_incumbent = true;
        incumbent_obj.store(base.objective().evaluate(options.warm_start),
                            std::memory_order_relaxed);
        best.values = options.warm_start;
        best.objective = incumbent_obj.load(std::memory_order_relaxed);
    }

    const auto prune_cutoff = [&]() {
        const double inc = incumbent_obj.load(std::memory_order_relaxed);
        return inc + std::max(options.gap_absolute, options.gap_relative * std::abs(inc));
    };

    Pseudocosts pc(base.num_vars());
    std::priority_queue<BfNode, std::vector<BfNode>, BfNodeOrder> queue;
    {
        BfNode root;
        root.lb = *ctx.root_lb;
        root.ub = *ctx.root_ub;
        root.warm = ctx.root_basis;
        queue.push(std::move(root));
    }
    std::uint64_t next_seq = 1;

    const int threads = options.threads > 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
    LpWorkerPool pool(threads - 1);

    std::vector<BfNode> batch;
    std::vector<LpResult> results;
    std::vector<SimplexBasis> captures;
    const auto finish = [&](SolveStatus status, support::Errc error,
                            const std::string& detail) {
        best.status = status;
        best.error = error;
        best.error_detail = detail;
        best.seconds = seconds_since(start);
        return best;
    };

    while (!queue.empty()) {
        if (deadline.expired()) {
            return finish(SolveStatus::Limit,
                          deadline.cancelled() ? support::Errc::Cancelled
                                               : support::Errc::DeadlineExceeded,
                          deadline.cancelled() ? "cancellation requested during search"
                                               : "time budget exhausted during search");
        }

        // --- serial batch selection -----------------------------------
        batch.clear();
        while (!queue.empty() && static_cast<int>(batch.size()) < kBestFirstBatch) {
            if (best.nodes >= options.max_nodes) {
                if (batch.empty()) {
                    return finish(SolveStatus::Limit, support::Errc::ResourceLimit,
                                  "node limit reached (" + std::to_string(options.max_nodes) +
                                      " nodes)");
                }
                break;
            }
            BfNode node = std::move(const_cast<BfNode&>(queue.top()));
            queue.pop();
            ++best.nodes;
            // Parent-bound pruning uses the incumbent as of this serial
            // section — the same value a serial best-first run would see.
            if (have_incumbent && node.bound <= prune_cutoff()) continue;
            // Fault point: fired in the serial section so the shared fault
            // budget is consumed in deterministic node order no matter how
            // many workers evaluate the surviving batch.
            if (support::fault_fires("bnb.node")) {
                abandoned_subtree = true;
                continue;
            }
            batch.push_back(std::move(node));
        }
        if (batch.empty()) {
            if (best.nodes >= options.max_nodes && !queue.empty()) {
                return finish(SolveStatus::Limit, support::Errc::ResourceLimit,
                              "node limit reached (" + std::to_string(options.max_nodes) +
                                  " nodes)");
            }
            continue;
        }

        // --- parallel relaxation --------------------------------------
        results.assign(batch.size(), LpResult{});
        captures.assign(batch.size(), SimplexBasis{});
        pool.run(static_cast<int>(batch.size()), [&](int i) {
            const std::size_t is = static_cast<std::size_t>(i);
            const BfNode& node = batch[is];
            LpOptions node_options = lp_options;
            if (ctx.use_warm) {
                if (node.warm != nullptr && !node.warm->empty()) {
                    node_options.warm_basis = node.warm.get();
                }
                node_options.capture_basis = &captures[is];
            }
            results[is] = solve_lp_with(options.lp_backend, work, &node.lb, &node.ub,
                                        node_options);
        });

        // --- serial commit, in batch (deterministic) order ------------
        for (std::size_t k = 0; k < batch.size(); ++k) {
            BfNode& node = batch[k];
            const LpResult& lp = results[k];
            best.lp_iterations += lp.iterations;
            // Pseudocost observation, in commit order (determinism).
            if (node.branch_var >= 0 && lp.status == LpStatus::Optimal) {
                pc.record(node.branch_var, node.branch_up,
                          node.branch_up ? 1.0 - node.branch_frac : node.branch_frac,
                          node.parent_obj - lp.objective);
            }
            if (!ctx.root_certified && node.seq == 0 && lp.status == LpStatus::Optimal) {
                // Root relaxation: keep its dual certificate so the audit
                // layer can independently witness the global bound. The
                // duals arrive through the backend-agnostic LpResult
                // contract — dense tableau and sparse BTRAN alike. (When the
                // cut loop ran, the cut-extended certificate it committed
                // supersedes this capture.)
                best.root_duals = lp.duals;
                best.root_bound = lp.bound;
                best.root_bound_slack = lp.bound_slack;
            }
            if (lp.status == LpStatus::Infeasible) continue;
            if (lp.status == LpStatus::Unbounded) {
                return finish(SolveStatus::Unbounded, support::Errc::Unbounded,
                              "objective is unbounded over the relaxation");
            }
            if (lp.status == LpStatus::IterLimit) {
                if (lp.deadline_hit) {
                    return finish(SolveStatus::Limit, lp.error,
                                  lp.error == support::Errc::Cancelled
                                      ? "cancellation requested inside simplex"
                                      : "time budget exhausted inside simplex");
                }
                abandoned_subtree = true;
                if (lp.error == support::Errc::NumericalTrouble &&
                    best.error == support::Errc::None) {
                    best.error = support::Errc::NumericalTrouble;
                    best.error_detail = "simplex reported numerical trouble";
                }
                continue;
            }
            if (have_incumbent && lp.bound <= prune_cutoff()) continue;

            const BranchChoice branch = pick_branch(base, lp.values, options.int_tol, pc);
            if (branch.var < 0) {
                // Integral: candidate incumbent. Strict improvement keeps
                // the commit deterministic (ties keep the earlier, i.e.
                // lower-seq, incumbent).
                const double obj = lp.objective;
                if (!have_incumbent || obj > incumbent_obj.load(std::memory_order_relaxed)) {
                    have_incumbent = true;
                    incumbent_obj.store(obj, std::memory_order_relaxed);
                    best.values = lp.values;
                    snap_integers(base, best.values);
                    best.objective = obj;
                }
                continue;
            }

            // Incumbent heuristic at the root and occasionally afterwards
            // (same cadence as the serial engine, counted in commit order).
            if (!have_incumbent || (best.nodes & 0x3F) == 0) {
                std::vector<double> rounded;
                if (try_rounding(base, lp.values, rounded)) {
                    const double obj = base.objective().evaluate(rounded);
                    if (!have_incumbent || obj > incumbent_obj.load(std::memory_order_relaxed)) {
                        have_incumbent = true;
                        incumbent_obj.store(obj, std::memory_order_relaxed);
                        best.values = std::move(rounded);
                        best.objective = obj;
                    }
                }
            }

            std::shared_ptr<const SimplexBasis> child_warm;
            if (ctx.use_warm && !captures[k].empty()) {
                child_warm = std::make_shared<SimplexBasis>(std::move(captures[k]));
            }
            const std::size_t bidx = static_cast<std::size_t>(branch.var);
            const double v = std::clamp(lp.values[bidx], node.lb[bidx], node.ub[bidx]);
            const double floor_v = std::floor(v);
            const double f = v - floor_v;
            BfNode down;
            down.lb = node.lb;
            down.ub = node.ub;
            down.ub[bidx] = std::min(down.ub[bidx], floor_v);
            down.bound = lp.bound;
            down.warm = child_warm;
            down.branch_var = branch.var;
            down.branch_up = false;
            down.branch_frac = f;
            down.parent_obj = lp.objective;
            BfNode up;
            up.lb = std::move(node.lb);
            up.ub = std::move(node.ub);
            up.lb[bidx] = std::max(up.lb[bidx], floor_v + 1);
            up.bound = lp.bound;
            up.warm = std::move(child_warm);
            up.branch_var = branch.var;
            up.branch_up = true;
            up.branch_frac = f;
            up.parent_obj = lp.objective;
            const bool down_valid = down.lb[bidx] <= down.ub[bidx];
            const bool up_valid = up.lb[bidx] <= up.ub[bidx];
            // The preferred child (structural dive / LP-suggested side)
            // gets the larger sequence number: ties on the bound pop
            // newest-first, so it is explored first — mirroring the DFS dive.
            const bool up_first = branch.prio > 0 || f > 0.5;
            if (up_first) {
                if (down_valid) {
                    down.seq = next_seq++;
                    queue.push(std::move(down));
                }
                if (up_valid) {
                    up.seq = next_seq++;
                    queue.push(std::move(up));
                }
            } else {
                if (up_valid) {
                    up.seq = next_seq++;
                    queue.push(std::move(up));
                }
                if (down_valid) {
                    down.seq = next_seq++;
                    queue.push(std::move(down));
                }
            }
        }
    }

    best.seconds = seconds_since(start);
    if (have_incumbent) {
        best.status = abandoned_subtree ? SolveStatus::Limit : SolveStatus::Optimal;
    } else if (abandoned_subtree) {
        best.status = SolveStatus::Limit;
    }
    return best;
}

// ---------------------------------------------------------------------------
// Serial depth-first search (the historical engine)
// ---------------------------------------------------------------------------

Solution solve_milp_dfs(const SearchContext& ctx, const SolveOptions& options,
                        const support::Deadline& deadline) {
    const Model& base = *ctx.base;
    const Model& work = *ctx.work;
    LpOptions lp_options = options.lp;
    lp_options.deadline = deadline;
    lp_options.perturb_ref_lb = ctx.root_lb;
    lp_options.perturb_ref_ub = ctx.root_ub;

    Solution out;
    out.status = SolveStatus::Infeasible;

    bool have_incumbent = false;
    bool abandoned_subtree = false;
    double incumbent_obj = -kInfinity;
    if (!options.warm_start.empty() && base.is_feasible(options.warm_start, 1e-6)) {
        have_incumbent = true;
        incumbent_obj = base.objective().evaluate(options.warm_start);
        out.values = options.warm_start;
        out.objective = incumbent_obj;
    }

    Pseudocosts pc(base.num_vars());
    std::vector<Node> stack;
    {
        Node root;
        root.lb = *ctx.root_lb;
        root.ub = *ctx.root_ub;
        root.warm = ctx.root_basis;
        stack.push_back(std::move(root));
    }

    while (!stack.empty()) {
        if (out.nodes >= options.max_nodes) {
            out.status = SolveStatus::Limit;
            out.error = support::Errc::ResourceLimit;
            out.error_detail = "node limit reached (" +
                               std::to_string(options.max_nodes) + " nodes)";
            return out;
        }
        if (deadline.expired()) {
            out.status = SolveStatus::Limit;
            out.error = deadline.cancelled() ? support::Errc::Cancelled
                                             : support::Errc::DeadlineExceeded;
            out.error_detail = deadline.cancelled()
                                   ? "cancellation requested during search"
                                   : "time budget exhausted during search";
            return out;
        }
        Node node = std::move(stack.back());
        stack.pop_back();
        ++out.nodes;

        // Fault point: simulates a node whose relaxation blew up — the
        // subtree is abandoned, so the search ends incomplete (Limit,
        // never a false Optimal).
        if (support::fault_fires("bnb.node")) {
            abandoned_subtree = true;
            continue;
        }

        SimplexBasis captured;
        if (ctx.use_warm) {
            lp_options.warm_basis =
                node.warm != nullptr && !node.warm->empty() ? node.warm.get() : nullptr;
            lp_options.capture_basis = &captured;
        }
        const LpResult lp =
            solve_lp_with(options.lp_backend, work, &node.lb, &node.ub, lp_options);
        out.lp_iterations += lp.iterations;
        if (node.branch_var >= 0 && lp.status == LpStatus::Optimal) {
            pc.record(node.branch_var, node.branch_up,
                      node.branch_up ? 1.0 - node.branch_frac : node.branch_frac,
                      node.parent_obj - lp.objective);
        }
        if (!ctx.root_certified && out.nodes == 1 && lp.status == LpStatus::Optimal) {
            // Root relaxation: keep its dual certificate so the audit
            // layer can independently witness the global bound.
            out.root_duals = lp.duals;
            out.root_bound = lp.bound;
            out.root_bound_slack = lp.bound_slack;
        }
        if (lp.status == LpStatus::Infeasible) continue;
        if (lp.status == LpStatus::Unbounded) {
            // Unbounded relaxation at the root means an unbounded MILP
            // for our models (integer vars are bounded).
            out.status = SolveStatus::Unbounded;
            out.error = support::Errc::Unbounded;
            out.error_detail = "objective is unbounded over the relaxation";
            return out;
        }
        if (lp.status == LpStatus::IterLimit) {
            if (lp.deadline_hit) {
                // The LP itself ran out of budget: stop the whole
                // search and return the incumbent (anytime semantics).
                out.status = SolveStatus::Limit;
                out.error = lp.error;
                out.error_detail = lp.error == support::Errc::Cancelled
                                       ? "cancellation requested inside simplex"
                                       : "time budget exhausted inside simplex";
                return out;
            }
            // This subtree could not be resolved: remember that the
            // search is incomplete so we never falsely claim optimality.
            abandoned_subtree = true;
            if (lp.error == support::Errc::NumericalTrouble &&
                out.error == support::Errc::None) {
                out.error = support::Errc::NumericalTrouble;
                out.error_detail = "simplex reported numerical trouble";
            }
            continue;
        }
        // Prune on the perturbation-corrected bound (a valid upper
        // bound on every solution in this subtree), within the
        // optimality gap.
        if (have_incumbent &&
            lp.bound <= incumbent_obj + std::max(options.gap_absolute,
                                                 options.gap_relative *
                                                     std::abs(incumbent_obj))) {
            continue;
        }

        const BranchChoice branch = pick_branch(base, lp.values, options.int_tol, pc);
        if (branch.var < 0) {
            // Integral: new incumbent.
            have_incumbent = true;
            incumbent_obj = lp.objective;
            out.values = lp.values;
            snap_integers(base, out.values);
            out.objective = incumbent_obj;
            continue;
        }

        // Incumbent heuristic at the root and occasionally afterwards.
        if (!have_incumbent || (out.nodes & 0x3F) == 0) {
            std::vector<double> rounded;
            if (try_rounding(base, lp.values, rounded)) {
                const double obj = base.objective().evaluate(rounded);
                if (!have_incumbent || obj > incumbent_obj) {
                    have_incumbent = true;
                    incumbent_obj = obj;
                    out.values = std::move(rounded);
                    out.objective = obj;
                }
            }
        }

        std::shared_ptr<const SimplexBasis> child_warm;
        if (ctx.use_warm && !captured.empty()) {
            child_warm = std::make_shared<SimplexBasis>(std::move(captured));
        }
        const std::size_t bidx = static_cast<std::size_t>(branch.var);
        // Clamp the LP value into the node's bounds before splitting:
        // LP tolerances can leave it epsilon outside, which would
        // create an empty child interval.
        const double v = std::clamp(lp.values[bidx], node.lb[bidx], node.ub[bidx]);
        const double floor_v = std::floor(v);
        const double f = v - floor_v;
        Node down;
        down.lb = node.lb;
        down.ub = node.ub;
        down.ub[bidx] = std::min(down.ub[bidx], floor_v);
        down.warm = child_warm;
        down.branch_var = branch.var;
        down.branch_up = false;
        down.branch_frac = f;
        down.parent_obj = lp.objective;
        Node up;
        up.lb = std::move(node.lb);
        up.ub = std::move(node.ub);
        up.lb[bidx] = std::max(up.lb[bidx], floor_v + 1);
        up.warm = std::move(child_warm);
        up.branch_var = branch.var;
        up.branch_up = true;
        up.branch_frac = f;
        up.parent_obj = lp.objective;
        const bool down_valid = down.lb[bidx] <= down.ub[bidx];
        const bool up_valid = up.lb[bidx] <= up.ub[bidx];
        // DFS order: prioritized (structural) variables dive up first —
        // instantiate the iteration / take the placement — which
        // reaches a feasible incumbent quickly; otherwise follow the
        // LP value.
        const bool up_first = branch.prio > 0 || f > 0.5;
        if (up_first) {
            if (down_valid) stack.push_back(std::move(down));
            if (up_valid) stack.push_back(std::move(up));
        } else {
            if (up_valid) stack.push_back(std::move(up));
            if (down_valid) stack.push_back(std::move(down));
        }
    }

    if (have_incumbent) {
        out.status = abandoned_subtree ? SolveStatus::Limit : SolveStatus::Optimal;
    } else if (abandoned_subtree) {
        out.status = SolveStatus::Limit;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Root cut loop
// ---------------------------------------------------------------------------

/// Outputs of the root separation rounds. Invariant: `cuts`, `work`,
/// `basis`, and the certificate fields are mutually consistent — they all
/// describe the state as of the LAST SUCCESSFUL root LP solve. Cuts whose
/// post-append re-solve failed (deadline, fault injection, numerical
/// trouble) are rolled back, never half-committed, so Solution::cuts always
/// matches Solution::root_duals row for row.
struct RootCutResult {
    std::vector<CertifiedCut> cuts;
    std::vector<double> root_duals;
    double root_bound = 0.0;
    double root_bound_slack = 0.0;
    bool certified = false;
    std::shared_ptr<const SimplexBasis> basis;
    std::optional<Model> work;  // base + cuts; engaged only when cuts exist
    std::int64_t lp_iterations = 0;
};

/// `base` is the model the LPs relax (presolve-cleaned); `cut_model` is the
/// ORIGINAL model the certificates are derived against — identical row
/// count/order and bounds, but with the coefficients exactly as the caller
/// wrote them, so the audit layer re-verifies every certificate bit-for-bit
/// without knowing presolve happened.
RootCutResult run_root_cut_loop(const Model& base, const Model& cut_model,
                                const std::vector<double>& root_lb,
                                const std::vector<double>& root_ub,
                                const SolveOptions& options,
                                const support::Deadline& deadline) {
    RootCutResult out;
    LpOptions lp_options = options.lp;
    lp_options.deadline = deadline;
    lp_options.perturb_ref_lb = &root_lb;
    lp_options.perturb_ref_ub = &root_ub;
    std::vector<TableauRow> probe;
    if (options.lp_backend == LpBackend::Sparse) lp_options.gomory_probe = &probe;
    const bool use_warm =
        options.lp_backend == LpBackend::Sparse && options.warm_start_lp;

    Model work = base;
    std::vector<CertifiedCut> pool;   // every cut currently appended to `work`
    std::size_t certified = 0;        // prefix validated by a successful solve
    SimplexBasis warm_store;          // basis of the last successful solve

    for (int round = 0;; ++round) {
        // Deadline between rounds (e.g. it expired mid-separation): stop
        // here with the certified prefix; the engine reports the Limit with
        // the best incumbent and the committed POST-cut root bound — never
        // the pre-cut relaxation bound.
        if (deadline.expired()) break;
        probe.clear();
        LpOptions round_options = lp_options;
        SimplexBasis captured;
        if (use_warm) {
            // Across rounds the basis transfers by row-append extension
            // (see RevisedSimplex::try_warm_start): new cut rows enter on
            // their own slack, dual feasibility is preserved, and the dual
            // simplex prices the violated cuts in.
            if (!warm_store.empty()) round_options.warm_basis = &warm_store;
            round_options.capture_basis = &captured;
        }
        const LpResult lp =
            solve_lp_with(options.lp_backend, work, &root_lb, &root_ub, round_options);
        out.lp_iterations += lp.iterations;
        // Any non-optimal outcome ends separation: the uncertified suffix is
        // rolled back below and the engine takes over (it re-solves the
        // root itself and reports deadline/unbounded/infeasible through the
        // established paths). Cuts already certified stay — they are valid
        // regardless of why a later LP failed.
        if (lp.status != LpStatus::Optimal) break;

        // Tailing off: when the cuts appended last round moved the bound by
        // less than min_round_improvement·|bound|, separation has
        // degenerated into chasing vertices around a face — stop WITHOUT
        // committing them (the roll-back below removes the suffix), so the
        // search is not taxed with bound-neutral rows at every node.
        if (out.certified &&
            out.root_bound - lp.bound <
                options.cut_limits.min_round_improvement *
                    std::max(1.0, std::abs(lp.bound))) {
            break;
        }

        // Commit: everything appended so far survived a full re-solve.
        certified = pool.size();
        out.certified = true;
        out.root_duals = lp.duals;
        out.root_bound = lp.bound;
        out.root_bound_slack = lp.bound_slack;
        if (use_warm && !captured.empty()) {
            warm_store = captured;
            out.basis = std::make_shared<SimplexBasis>(std::move(captured));
        }

        if (round >= options.cut_limits.max_rounds) break;
        if (static_cast<int>(pool.size()) >= options.cut_limits.max_total) break;
        bool fractional = false;
        for (int j = 0; j < base.num_vars() && !fractional; ++j) {
            if (base.var_type(j) == VarType::Continuous) continue;
            const double x = lp.values[static_cast<std::size_t>(j)];
            fractional = std::abs(x - std::round(x)) > options.int_tol;
        }
        if (!fractional) break;  // integral root: nothing left to separate

        const std::vector<CertifiedCut> fresh =
            separate_cuts(cut_model, pool, lp.values, probe, options.cut_limits,
                          static_cast<int>(pool.size()));
        if (fresh.empty()) break;
        for (const CertifiedCut& cut : fresh) {
            work.add_le(cut.expr, cut.rhs, cut.name);
            pool.push_back(cut);
        }
    }

    // Roll back to the certified prefix and rebuild the work model from it
    // (cheaper to re-append a handful of rows than to track row removal).
    pool.resize(certified);
    out.cuts = std::move(pool);
    if (!out.cuts.empty()) {
        Model rebuilt = base;
        for (const CertifiedCut& cut : out.cuts) {
            rebuilt.add_le(cut.expr, cut.rhs, cut.name);
        }
        out.work = std::move(rebuilt);
    }
    return out;
}

}  // namespace

std::int64_t Solution::value_int(Var v) const {
    return static_cast<std::int64_t>(
        std::llround(values.at(static_cast<std::size_t>(v.id))));
}

Solution solve_milp(const Model& model, const SolveOptions& options) {
    const auto start = Clock::now();
    // Combine the legacy scalar limit with the cooperative deadline; the
    // tighter bound wins and is threaded into every LP solve below.
    const support::Deadline deadline =
        options.deadline.tightened(options.time_limit_seconds);

    // Root presolve: exact bound tightening + coefficient cleanup. The
    // tightened bounds become the root node AND the frozen perturbation
    // reference (both backends derive the perturbed cost vector from them,
    // so it is constant across the whole tree — the warm-start invariant).
    const PresolveResult pre = presolve(model);
    if (pre.infeasible) {
        Solution out;
        out.status = SolveStatus::Infeasible;
        out.error = support::Errc::Infeasible;
        out.error_detail = pre.infeasible_reason;
        out.seconds = seconds_since(start);
        return out;
    }
    const Model& base = pre.cleaned ? *pre.cleaned : model;

    // Root cutting planes: certified Gomory + cover rounds tighten the root
    // relaxation before any branching. Cuts are derived and certified
    // against the ORIGINAL model (rows and bounds as the caller wrote them,
    // not the presolved/cleaned form), so the audit layer can re-verify
    // every certificate without knowing about presolve.
    RootCutResult root;
    if (options.cuts_enabled && base.num_integer_vars() > 0 && !deadline.expired()) {
        root = run_root_cut_loop(base, model, pre.lb, pre.ub, options, deadline);
    }

    SearchContext ctx;
    ctx.base = &base;
    ctx.work = root.work ? &*root.work : &base;
    ctx.root_lb = &pre.lb;
    ctx.root_ub = &pre.ub;
    ctx.root_basis = root.basis;
    ctx.root_certified = root.certified;
    ctx.use_warm = options.lp_backend == LpBackend::Sparse && options.warm_start_lp;

    Solution best;
    if (options.search == SearchMode::BestFirst) {
        best = solve_milp_best_first(ctx, options, deadline, start);
    } else {
        best = solve_milp_dfs(ctx, options, deadline);
        best.seconds = seconds_since(start);
    }

    best.lp_iterations += root.lp_iterations;
    if (root.certified) {
        // The cut-extended root certificate supersedes whatever the engine
        // captured: Solution::root_duals has one entry per base row plus one
        // per certified cut, in Solution::cuts order.
        best.root_duals = std::move(root.root_duals);
        best.root_bound = root.root_bound;
        best.root_bound_slack = root.root_bound_slack;
    }
    best.cuts = std::move(root.cuts);

    if (best.seconds == 0.0) best.seconds = seconds_since(start);
    if (best.status == SolveStatus::Limit && best.error == support::Errc::None) {
        best.error = support::Errc::ResourceLimit;
        best.error_detail = "search incomplete: subtree abandoned at LP limit";
    }
    if (best.status == SolveStatus::Optimal) {
        best.error = support::Errc::None;
        best.error_detail.clear();
    } else if (best.status == SolveStatus::Infeasible) {
        best.error = support::Errc::Infeasible;
        if (best.error_detail.empty()) {
            best.error_detail = "no integer assignment satisfies the constraints";
        }
    } else if (best.status == SolveStatus::Unbounded) {
        best.error = support::Errc::Unbounded;
        if (best.error_detail.empty()) {
            best.error_detail = "objective is unbounded over the relaxation";
        }
    }
    return best;
}

namespace {

void enumerate(const Model& model, std::vector<int>& int_vars, std::size_t depth,
               std::vector<double>& lb, std::vector<double>& ub, Solution& best,
               bool& found, const support::Deadline& deadline, bool& stopped) {
    if (stopped) return;
    if (depth == int_vars.size()) {
        // Poll between leaf LP solves: the amortized cost is one clock read
        // per assignment, and each leaf LP already honors the deadline.
        if (deadline.expired()) {
            stopped = true;
            return;
        }
        // All integers fixed: solve the continuous remainder (or just check).
        LpOptions lp_options;
        lp_options.deadline = deadline;
        const LpResult lp = solve_lp(model, &lb, &ub, lp_options);
        best.lp_iterations += lp.iterations;
        ++best.nodes;
        if (lp.deadline_hit) {
            stopped = true;
            return;
        }
        if (lp.status != LpStatus::Optimal) return;
        if (!found || lp.objective > best.objective) {
            found = true;
            best.objective = lp.objective;
            best.values = lp.values;
            snap_integers(model, best.values);
        }
        return;
    }
    const int j = int_vars[depth];
    const std::size_t idx = static_cast<std::size_t>(j);
    const double save_lb = lb[idx];
    const double save_ub = ub[idx];
    for (double v = save_lb; v <= save_ub + 1e-9 && !stopped; v += 1.0) {
        lb[idx] = v;
        ub[idx] = v;
        enumerate(model, int_vars, depth + 1, lb, ub, best, found, deadline,
                  stopped);
    }
    lb[idx] = save_lb;
    ub[idx] = save_ub;
}

}  // namespace

Solution solve_exhaustive(const Model& model, std::int64_t max_combinations,
                          const support::Deadline& deadline) {
    const auto start = Clock::now();
    Solution best;
    std::vector<int> int_vars;
    std::int64_t combos = 1;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        if (model.upper_bound(j) == kInfinity) {
            // Structured refusal instead of a throw: portfolio drivers treat
            // this exactly like any other backend that could not run.
            best.status = SolveStatus::Limit;
            best.error = support::Errc::DomainTooLarge;
            best.error_detail = "unbounded integer variable '" +
                                model.var_name(j) + "'";
            best.seconds = seconds_since(start);
            return best;
        }
        const auto domain = static_cast<std::int64_t>(
            model.upper_bound(j) - model.lower_bound(j) + 1);
        combos *= std::max<std::int64_t>(domain, 1);
        if (combos > max_combinations) {
            best.status = SolveStatus::Limit;
            best.error = support::Errc::DomainTooLarge;
            best.error_detail = "integer domain exceeds " +
                                std::to_string(max_combinations) +
                                " combinations";
            best.seconds = seconds_since(start);
            return best;
        }
        int_vars.push_back(j);
    }
    std::vector<double> lb(static_cast<std::size_t>(model.num_vars()));
    std::vector<double> ub(static_cast<std::size_t>(model.num_vars()));
    for (int j = 0; j < model.num_vars(); ++j) {
        lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
        ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
    }
    bool found = false;
    bool stopped = false;
    enumerate(model, int_vars, 0, lb, ub, best, found, deadline, stopped);
    if (stopped) {
        // Keep the best-so-far assignment: even a truncated enumeration can
        // hand the caller a usable (audited) incumbent.
        best.status = SolveStatus::Limit;
        best.error = deadline.cancelled() ? support::Errc::Cancelled
                                          : support::Errc::DeadlineExceeded;
        best.error_detail = "enumeration stopped before covering the domain";
    } else if (found) {
        best.status = SolveStatus::Optimal;
    } else {
        best.status = SolveStatus::Infeasible;
        best.error = support::Errc::Infeasible;
        best.error_detail = "no integer assignment satisfies the constraints";
    }
    best.seconds = seconds_since(start);
    return best;
}

}  // namespace p4all::ilp
