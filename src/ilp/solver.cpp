#include "ilp/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "support/faultpoint.hpp"

namespace p4all::ilp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Rounds the LP solution's integer variables and re-checks feasibility —
/// a cheap incumbent heuristic that often succeeds on placement models.
bool try_rounding(const Model& model, const std::vector<double>& lp_values,
                  std::vector<double>& rounded_out) {
    std::vector<double> rounded = lp_values;
    int first_int = -1;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        if (first_int < 0) first_int = j;
        const std::size_t idx = static_cast<std::size_t>(j);
        rounded[idx] = std::clamp(std::round(rounded[idx]), model.lower_bound(j),
                                  model.upper_bound(j));
    }
    // Fault point: a firing simulates a buggy rounding heuristic — the
    // incumbent is corrupted and the feasibility re-check is skipped, so the
    // only thing standing between the bad layout and the user is the audit
    // gate downstream.
    if (support::fault_fires("bnb.round")) {
        if (first_int >= 0) rounded[static_cast<std::size_t>(first_int)] += 1.0;
        rounded_out = std::move(rounded);
        return true;
    }
    if (!model.is_feasible(rounded, 1e-6)) return false;
    rounded_out = std::move(rounded);
    return true;
}

struct Node {
    std::vector<double> lb;
    std::vector<double> ub;
};

}  // namespace

std::int64_t Solution::value_int(Var v) const {
    return static_cast<std::int64_t>(
        std::llround(values.at(static_cast<std::size_t>(v.id))));
}

Solution solve_milp(const Model& model, const SolveOptions& options) {
    const auto start = Clock::now();
    // Combine the legacy scalar limit with the cooperative deadline; the
    // tighter bound wins and is threaded into every LP solve below.
    const support::Deadline deadline =
        options.deadline.tightened(options.time_limit_seconds);
    LpOptions lp_options = options.lp;
    lp_options.deadline = deadline;

    Solution best;
    best.status = SolveStatus::Infeasible;

    std::vector<double> root_lb(static_cast<std::size_t>(model.num_vars()));
    std::vector<double> root_ub(static_cast<std::size_t>(model.num_vars()));
    for (int j = 0; j < model.num_vars(); ++j) {
        root_lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
        root_ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
    }

    bool have_incumbent = false;
    bool abandoned_subtree = false;
    double incumbent_obj = -kInfinity;
    if (!options.warm_start.empty() && model.is_feasible(options.warm_start, 1e-6)) {
        have_incumbent = true;
        incumbent_obj = model.objective().evaluate(options.warm_start);
        best.values = options.warm_start;
        best.objective = incumbent_obj;
    }

    std::vector<Node> stack;
    stack.push_back({std::move(root_lb), std::move(root_ub)});

    while (!stack.empty()) {
        if (best.nodes >= options.max_nodes) {
            best.status = SolveStatus::Limit;
            best.error = support::Errc::ResourceLimit;
            best.error_detail = "node limit reached (" +
                                std::to_string(options.max_nodes) + " nodes)";
            best.seconds = seconds_since(start);
            return best;
        }
        if (deadline.expired()) {
            best.status = SolveStatus::Limit;
            best.error = deadline.cancelled() ? support::Errc::Cancelled
                                              : support::Errc::DeadlineExceeded;
            best.error_detail = deadline.cancelled()
                                    ? "cancellation requested during search"
                                    : "time budget exhausted during search";
            best.seconds = seconds_since(start);
            return best;
        }
        const Node node = std::move(stack.back());
        stack.pop_back();
        ++best.nodes;

        // Fault point: simulates a node whose relaxation blew up — the
        // subtree is abandoned, so the search ends incomplete (Limit, never a
        // false Optimal).
        if (support::fault_fires("bnb.node")) {
            abandoned_subtree = true;
            continue;
        }

        const LpResult lp = solve_lp(model, &node.lb, &node.ub, lp_options);
        best.lp_iterations += lp.iterations;
        if (best.nodes == 1 && lp.status == LpStatus::Optimal) {
            // Root relaxation: keep its dual certificate so the audit layer
            // can independently witness the global bound.
            best.root_duals = lp.duals;
            best.root_bound = lp.bound;
            best.root_bound_slack = lp.bound_slack;
        }
        if (lp.status == LpStatus::Infeasible) continue;
        if (lp.status == LpStatus::Unbounded) {
            // Unbounded relaxation at the root means an unbounded MILP for
            // our models (integer vars are bounded).
            best.status = SolveStatus::Unbounded;
            best.error = support::Errc::Unbounded;
            best.error_detail = "objective is unbounded over the relaxation";
            best.seconds = seconds_since(start);
            return best;
        }
        if (lp.status == LpStatus::IterLimit) {
            if (lp.deadline_hit) {
                // The LP itself ran out of budget: stop the whole search and
                // return the incumbent (anytime semantics).
                best.status = SolveStatus::Limit;
                best.error = lp.error;
                best.error_detail = lp.error == support::Errc::Cancelled
                                        ? "cancellation requested inside simplex"
                                        : "time budget exhausted inside simplex";
                best.seconds = seconds_since(start);
                return best;
            }
            // This subtree could not be resolved: remember that the search
            // is incomplete so we never falsely claim optimality.
            abandoned_subtree = true;
            if (lp.error == support::Errc::NumericalTrouble &&
                best.error == support::Errc::None) {
                best.error = support::Errc::NumericalTrouble;
                best.error_detail = "simplex reported numerical trouble";
            }
            continue;
        }
        // Prune on the perturbation-corrected bound (a valid upper bound on
        // every solution in this subtree), within the optimality gap.
        if (have_incumbent &&
            lp.bound <= incumbent_obj + std::max(options.gap_absolute,
                                                 options.gap_relative *
                                                     std::abs(incumbent_obj))) {
            continue;
        }

        // Branch variable: highest priority class first, most fractional
        // within the class (priorities let model builders dive on structural
        // decisions before auxiliaries).
        int branch_var = -1;
        double branch_frac = options.int_tol;
        int branch_prio = 0;
        for (int j = 0; j < model.num_vars(); ++j) {
            if (model.var_type(j) == VarType::Continuous) continue;
            const double v = lp.values[static_cast<std::size_t>(j)];
            const double frac = std::abs(v - std::round(v));
            if (frac <= options.int_tol) continue;
            const int prio = model.branch_priority(j);
            if (branch_var < 0 || prio > branch_prio ||
                (prio == branch_prio && frac > branch_frac)) {
                branch_var = j;
                branch_frac = frac;
                branch_prio = prio;
            }
        }
        if (branch_var < 0) {
            // Integral: new incumbent.
            have_incumbent = true;
            incumbent_obj = lp.objective;
            best.values = lp.values;
            // Snap near-integers exactly.
            for (int j = 0; j < model.num_vars(); ++j) {
                if (model.var_type(j) != VarType::Continuous) {
                    best.values[static_cast<std::size_t>(j)] =
                        std::round(best.values[static_cast<std::size_t>(j)]);
                }
            }
            best.objective = incumbent_obj;
            continue;
        }

        // Incumbent heuristic at the root and occasionally afterwards.
        if (!have_incumbent || (best.nodes & 0x3F) == 0) {
            std::vector<double> rounded;
            if (try_rounding(model, lp.values, rounded)) {
                const double obj = model.objective().evaluate(rounded);
                if (!have_incumbent || obj > incumbent_obj) {
                    have_incumbent = true;
                    incumbent_obj = obj;
                    best.values = std::move(rounded);
                    best.objective = obj;
                }
            }
        }

        const std::size_t bidx = static_cast<std::size_t>(branch_var);
        // Clamp the LP value into the node's bounds before splitting: LP
        // tolerances can leave it epsilon outside, which would create an
        // empty child interval.
        const double v = std::clamp(lp.values[bidx], node.lb[bidx], node.ub[bidx]);
        const double floor_v = std::floor(v);
        Node down = node;
        down.ub[bidx] = std::min(down.ub[bidx], floor_v);
        Node up = std::move(node);
        up.lb[bidx] = std::max(up.lb[bidx], floor_v + 1);
        const bool down_valid = down.lb[bidx] <= down.ub[bidx];
        const bool up_valid = up.lb[bidx] <= up.ub[bidx];
        // DFS order: prioritized (structural) variables dive up first —
        // instantiate the iteration / take the placement — which reaches a
        // feasible incumbent quickly; otherwise follow the LP value.
        const bool up_first = branch_prio > 0 || v - floor_v > 0.5;
        if (up_first) {
            if (down_valid) stack.push_back(std::move(down));
            if (up_valid) stack.push_back(std::move(up));
        } else {
            if (up_valid) stack.push_back(std::move(up));
            if (down_valid) stack.push_back(std::move(down));
        }
    }

    best.seconds = seconds_since(start);
    if (have_incumbent) {
        best.status = abandoned_subtree ? SolveStatus::Limit : SolveStatus::Optimal;
    } else if (abandoned_subtree) {
        best.status = SolveStatus::Limit;
    }
    if (best.status == SolveStatus::Limit && best.error == support::Errc::None) {
        best.error = support::Errc::ResourceLimit;
        best.error_detail = "search incomplete: subtree abandoned at LP limit";
    }
    if (best.status == SolveStatus::Optimal) {
        best.error = support::Errc::None;
        best.error_detail.clear();
    } else if (best.status == SolveStatus::Infeasible) {
        best.error = support::Errc::Infeasible;
        if (best.error_detail.empty()) best.error_detail = "no integer assignment satisfies the constraints";
    } else if (best.status == SolveStatus::Unbounded) {
        best.error = support::Errc::Unbounded;
        if (best.error_detail.empty()) best.error_detail = "objective is unbounded over the relaxation";
    }
    return best;
}

namespace {

void enumerate(const Model& model, std::vector<int>& int_vars, std::size_t depth,
               std::vector<double>& lb, std::vector<double>& ub, Solution& best,
               bool& found, const support::Deadline& deadline, bool& stopped) {
    if (stopped) return;
    if (depth == int_vars.size()) {
        // Poll between leaf LP solves: the amortized cost is one clock read
        // per assignment, and each leaf LP already honors the deadline.
        if (deadline.expired()) {
            stopped = true;
            return;
        }
        // All integers fixed: solve the continuous remainder (or just check).
        LpOptions lp_options;
        lp_options.deadline = deadline;
        const LpResult lp = solve_lp(model, &lb, &ub, lp_options);
        best.lp_iterations += lp.iterations;
        ++best.nodes;
        if (lp.deadline_hit) {
            stopped = true;
            return;
        }
        if (lp.status != LpStatus::Optimal) return;
        if (!found || lp.objective > best.objective) {
            found = true;
            best.objective = lp.objective;
            best.values = lp.values;
            for (int j = 0; j < model.num_vars(); ++j) {
                if (model.var_type(j) != VarType::Continuous) {
                    best.values[static_cast<std::size_t>(j)] =
                        std::round(best.values[static_cast<std::size_t>(j)]);
                }
            }
        }
        return;
    }
    const int j = int_vars[depth];
    const std::size_t idx = static_cast<std::size_t>(j);
    const double save_lb = lb[idx];
    const double save_ub = ub[idx];
    for (double v = save_lb; v <= save_ub + 1e-9 && !stopped; v += 1.0) {
        lb[idx] = v;
        ub[idx] = v;
        enumerate(model, int_vars, depth + 1, lb, ub, best, found, deadline,
                  stopped);
    }
    lb[idx] = save_lb;
    ub[idx] = save_ub;
}

}  // namespace

Solution solve_exhaustive(const Model& model, std::int64_t max_combinations,
                          const support::Deadline& deadline) {
    const auto start = Clock::now();
    Solution best;
    std::vector<int> int_vars;
    std::int64_t combos = 1;
    for (int j = 0; j < model.num_vars(); ++j) {
        if (model.var_type(j) == VarType::Continuous) continue;
        if (model.upper_bound(j) == kInfinity) {
            // Structured refusal instead of a throw: portfolio drivers treat
            // this exactly like any other backend that could not run.
            best.status = SolveStatus::Limit;
            best.error = support::Errc::DomainTooLarge;
            best.error_detail = "unbounded integer variable '" +
                                model.var_name(j) + "'";
            best.seconds = seconds_since(start);
            return best;
        }
        const auto domain = static_cast<std::int64_t>(
            model.upper_bound(j) - model.lower_bound(j) + 1);
        combos *= std::max<std::int64_t>(domain, 1);
        if (combos > max_combinations) {
            best.status = SolveStatus::Limit;
            best.error = support::Errc::DomainTooLarge;
            best.error_detail = "integer domain exceeds " +
                                std::to_string(max_combinations) +
                                " combinations";
            best.seconds = seconds_since(start);
            return best;
        }
        int_vars.push_back(j);
    }
    std::vector<double> lb(static_cast<std::size_t>(model.num_vars()));
    std::vector<double> ub(static_cast<std::size_t>(model.num_vars()));
    for (int j = 0; j < model.num_vars(); ++j) {
        lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
        ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
    }
    bool found = false;
    bool stopped = false;
    enumerate(model, int_vars, 0, lb, ub, best, found, deadline, stopped);
    if (stopped) {
        // Keep the best-so-far assignment: even a truncated enumeration can
        // hand the caller a usable (audited) incumbent.
        best.status = SolveStatus::Limit;
        best.error = deadline.cancelled() ? support::Errc::Cancelled
                                          : support::Errc::DeadlineExceeded;
        best.error_detail = "enumeration stopped before covering the domain";
    } else if (found) {
        best.status = SolveStatus::Optimal;
    } else {
        best.status = SolveStatus::Infeasible;
        best.error = support::Errc::Infeasible;
        best.error_detail = "no integer assignment satisfies the constraints";
    }
    best.seconds = seconds_since(start);
    return best;
}

}  // namespace p4all::ilp
