#include "ilp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>

#include "ilp/scaling.hpp"
#include "ilp/sparse.hpp"
#include "support/error.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"

namespace p4all::ilp {

namespace {

/// Consecutive degenerate pivots tolerated before Bland's rule engages
/// (same policy as the dense solver).
constexpr int kDegeneratePivotLimit(int rows) { return 2 * (rows + 16); }

/// Bounded-variable two-phase revised simplex over CSC + eta-file factors.
///
/// The standard-form construction mirrors simplex.cpp exactly — variables
/// shifted to y = x − lb ∈ [0, span], Ge rows negated to Le, negative-rhs
/// rows negated again, slacks on Le rows, artificials on Eq/negated rows —
/// so both backends expose identical status/dual conventions. On top of
/// that, singleton rows (one variable — the shape `assume lo <= x <= hi`
/// ranges produce) are folded into the variable's working bounds during the
/// build instead of becoming explicit rows: the bounded-variable mechanics
/// already handle them for free, and their dual multiplier is reported as 0
/// (always sign-correct, so the weak-duality certificate stays valid — a
/// folded row can only loosen the certified gap, never unsound it).
class RevisedSimplex {
public:
    RevisedSimplex(const Model& model, const std::vector<double>& lb,
                   const std::vector<double>& ub, const LpOptions& options)
        : model_(model), options_(options), n_(model.num_vars()),
          lb_(lb), ub_(ub) {}

    LpResult solve() {
        LpResult result;
        if (!build(result)) return result;  // folded-bound contradiction ⇒ Infeasible
        if (!recompute_state()) {
            result.status = LpStatus::IterLimit;
            result.error = support::Errc::NumericalTrouble;
            return result;
        }
        if (num_artificial_ > 0) {
            load_phase1_costs();
            const LpStatus st = iterate(result.iterations, /*phase1=*/true);
            if (st == LpStatus::IterLimit) {
                result.status = st;
                result.deadline_hit = deadline_hit_;
                result.error = error_;
                return result;
            }
            double artificial_sum = 0.0;
            for (int i = 0; i < m_; ++i) {
                if (basis_[static_cast<std::size_t>(i)] >= artificial_start_) {
                    artificial_sum += std::abs(xb_[static_cast<std::size_t>(i)]);
                }
            }
            if (st == LpStatus::Infeasible || artificial_sum > 1e-6) {
                result.status = LpStatus::Infeasible;
                return result;
            }
            // Pin artificials to zero for phase 2.
            for (int j = artificial_start_; j < cols_; ++j) {
                span_[static_cast<std::size_t>(j)] = 0.0;
            }
        }
        load_phase2_costs();
        const LpStatus st = iterate(result.iterations, /*phase1=*/false);
        result.status = st;
        if (st != LpStatus::Optimal) {
            result.deadline_hit = deadline_hit_;
            result.error = error_;
            return result;
        }

        // Dual extraction via BTRAN: y solves Bᵀy = c_B, so the reduced cost
        // of row i's auxiliary column (cost 0, single entry v at row i) is
        // r_aux = −v·y_i, and the maximize-convention dual is σ·r_aux with
        // the same σ bookkeeping as the dense tableau. Folded singleton rows
        // report dual 0.
        std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
        for (int i = 0; i < m_; ++i) {
            y[static_cast<std::size_t>(i)] =
                cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
        }
        factor_.btran(y);
        result.duals.assign(static_cast<std::size_t>(model_.num_constraints()), 0.0);
        for (int i = 0; i < m_; ++i) {
            const std::size_t is = static_cast<std::size_t>(i);
            const double r_aux = -aux_coeff_[is] * y[is];
            // ·ρ maps the scaled row's dual back to the original row's unit.
            result.duals[static_cast<std::size_t>(orig_row_[is])] =
                static_cast<double>(dual_sign_[is]) * r_aux * row_scale_[is];
        }

        result.values.assign(static_cast<std::size_t>(n_), 0.0);
        for (int j = 0; j < n_; ++j) {
            if (at_upper_[static_cast<std::size_t>(j)]) {
                result.values[static_cast<std::size_t>(j)] = span_[static_cast<std::size_t>(j)];
            }
        }
        for (int i = 0; i < m_; ++i) {
            const int j = basis_[static_cast<std::size_t>(i)];
            if (j < n_) result.values[static_cast<std::size_t>(j)] = xb_[static_cast<std::size_t>(i)];
        }
        for (int j = 0; j < n_; ++j) {
            // ·s undoes the column scaling, then the lb shift.
            const std::size_t js = static_cast<std::size_t>(j);
            result.values[js] = result.values[js] * col_scale_[js] + work_lb_[js];
        }
        result.objective = model_.objective().evaluate(result.values);
        result.bound_slack = bound_slack_;
        result.bound = result.objective + bound_slack_;
        return result;
    }

private:
    /// Builds the CSC standard form. Returns false (status pre-set to
    /// Infeasible) when folding a singleton row produces an empty domain.
    bool build(LpResult& result) {
        work_lb_ = lb_;
        work_ub_ = ub_;
        for (int j = 0; j < n_; ++j) {
            if (work_ub_[static_cast<std::size_t>(j)] - work_lb_[static_cast<std::size_t>(j)] <
                -1e-12) {
                throw support::Error(support::Errc::InvalidModel,
                                     "simplex: lb > ub for variable '" + model_.var_name(j) +
                                         "'");
            }
        }

        struct Row {
            std::vector<std::pair<int, double>> terms;
            bool eq;
            bool negated = false;
            int sense_sign = 1;  // −1 for Ge rows (normalized to Le)
            double rhs;
            int orig = 0;
        };
        std::vector<Row> rows;
        rows.reserve(model_.constraints().size());
        int orig_index = -1;
        for (const Constraint& c : model_.constraints()) {
            ++orig_index;
            // Singleton-row presolve against the *unshifted* bounds.
            if (c.expr.terms().size() <= 1) {
                if (!fold_singleton(c)) {
                    result.status = LpStatus::Infeasible;
                    return false;
                }
                continue;
            }
            Row r;
            r.eq = c.sense == CmpSense::Eq;
            r.orig = orig_index;
            const double sign = c.sense == CmpSense::Ge ? -1.0 : 1.0;
            r.sense_sign = c.sense == CmpSense::Ge ? -1 : 1;
            for (const auto& [id, coeff] : c.expr.terms()) {
                r.terms.emplace_back(id, sign * coeff);
            }
            r.rhs = sign * (c.rhs - c.expr.constant());
            rows.push_back(std::move(r));
        }
        // Bound folding finished: now shift every kept row by the working
        // lower bounds (y = x − lb) and normalize signs.
        for (Row& r : rows) {
            double shift = 0.0;
            for (const auto& [id, coeff] : r.terms) {
                shift += coeff * work_lb_[static_cast<std::size_t>(id)];
            }
            r.rhs -= shift;
        }
        m_ = static_cast<int>(rows.size());

        // Equilibrate (scaling.hpp) — identical policy to the dense backend
        // so both solve the same scaled problem: power-of-two row/column
        // factors keep entries near 1 and the absolute tolerances sound on
        // models mixing O(1) utility rows with O(10^6) memory rows.
        {
            std::vector<std::vector<std::pair<int, double>>> term_rows;
            term_rows.reserve(rows.size());
            for (const Row& r : rows) term_rows.push_back(r.terms);
            Equilibration eq = equilibrate(term_rows, n_);
            row_scale_ = std::move(eq.row);
            col_scale_ = std::move(eq.col);
            for (int i = 0; i < m_; ++i) {
                Row& r = rows[static_cast<std::size_t>(i)];
                const double rho = row_scale_[static_cast<std::size_t>(i)];
                for (auto& [id, c] : r.terms) {
                    c *= rho * col_scale_[static_cast<std::size_t>(id)];
                }
                r.rhs *= rho;
            }
        }

        int num_slack = 0;
        num_artificial_ = 0;
        for (Row& r : rows) {
            if (!r.eq) ++num_slack;
            if (r.rhs < 0) {
                r.negated = true;
                for (auto& [id, c] : r.terms) c = -c;
                r.rhs = -r.rhs;
            }
            if (r.eq || r.negated) ++num_artificial_;
        }
        artificial_start_ = n_ + num_slack;
        cols_ = artificial_start_ + num_artificial_;

        span_.assign(static_cast<std::size_t>(cols_), kInfinity);
        at_upper_.assign(static_cast<std::size_t>(cols_), false);
        in_basis_.assign(static_cast<std::size_t>(cols_), false);
        basis_.assign(static_cast<std::size_t>(m_), -1);
        xb_.assign(static_cast<std::size_t>(m_), 0.0);
        rhs_.assign(static_cast<std::size_t>(m_), 0.0);
        aux_coeff_.assign(static_cast<std::size_t>(m_), 1.0);
        aux_col_.assign(static_cast<std::size_t>(m_), -1);
        dual_sign_.assign(static_cast<std::size_t>(m_), 1);
        orig_row_.assign(static_cast<std::size_t>(m_), 0);
        cost_.assign(static_cast<std::size_t>(cols_), 0.0);

        for (int j = 0; j < n_; ++j) {
            const double d =
                work_ub_[static_cast<std::size_t>(j)] - work_lb_[static_cast<std::size_t>(j)];
            span_[static_cast<std::size_t>(j)] =
                std::max(d, 0.0) / col_scale_[static_cast<std::size_t>(j)];
        }

        std::vector<CscMatrix::Triplet> triplets;
        int next_slack = n_;
        int next_artificial = artificial_start_;
        for (int i = 0; i < m_; ++i) {
            const Row& r = rows[static_cast<std::size_t>(i)];
            for (const auto& [id, c] : r.terms) {
                if (c != 0.0) triplets.push_back({i, id, c});
            }
            rhs_[static_cast<std::size_t>(i)] = r.rhs;
            orig_row_[static_cast<std::size_t>(i)] = r.orig;
            int basic = -1;
            const int sigma_row = r.sense_sign * (r.negated ? -1 : 1);
            if (!r.eq) {
                const double slack_coeff = r.negated ? -1.0 : 1.0;
                triplets.push_back({i, next_slack, slack_coeff});
                if (!r.negated) basic = next_slack;
                aux_col_[static_cast<std::size_t>(i)] = next_slack;
                aux_coeff_[static_cast<std::size_t>(i)] = slack_coeff;
                dual_sign_[static_cast<std::size_t>(i)] = sigma_row * (r.negated ? -1 : 1);
                ++next_slack;
            }
            if (basic < 0) {
                triplets.push_back({i, next_artificial, 1.0});
                if (r.eq) {
                    aux_col_[static_cast<std::size_t>(i)] = next_artificial;
                    aux_coeff_[static_cast<std::size_t>(i)] = 1.0;
                    dual_sign_[static_cast<std::size_t>(i)] = sigma_row;
                }
                basic = next_artificial++;
            }
            basis_[static_cast<std::size_t>(i)] = basic;
            in_basis_[static_cast<std::size_t>(basic)] = true;
        }
        A_ = CscMatrix::from_triplets(m_, cols_, std::move(triplets));
        return true;
    }

    /// Folds a 0- or 1-term constraint into the working bounds. Returns
    /// false when the fold makes the constraint unsatisfiable.
    bool fold_singleton(const Constraint& c) {
        const double rhs = c.rhs - c.expr.constant();
        if (c.expr.terms().empty() ||
            c.expr.terms().front().second == 0.0) {
            // Constant row: pure feasibility check.
            constexpr double kTol = 1e-9;
            switch (c.sense) {
                case CmpSense::Le: return 0.0 <= rhs + kTol;
                case CmpSense::Ge: return 0.0 >= rhs - kTol;
                case CmpSense::Eq: return std::abs(rhs) <= kTol;
            }
            return true;
        }
        const auto& [id, a] = c.expr.terms().front();
        const std::size_t js = static_cast<std::size_t>(id);
        const double v = rhs / a;
        const bool tightens_ub =
            (c.sense == CmpSense::Le && a > 0) || (c.sense == CmpSense::Ge && a < 0);
        const bool tightens_lb =
            (c.sense == CmpSense::Ge && a > 0) || (c.sense == CmpSense::Le && a < 0);
        if (c.sense == CmpSense::Eq || tightens_ub) {
            work_ub_[js] = std::min(work_ub_[js], v);
        }
        if (c.sense == CmpSense::Eq || tightens_lb) {
            work_lb_[js] = std::max(work_lb_[js], v);
        }
        // LP feasibility tolerance: an epsilon-inverted interval is an empty
        // domain only beyond the same tolerance the dense solver applies.
        return work_ub_[js] - work_lb_[js] >= -1e-9;
    }

    /// Refactorizes the basis and recomputes the basic values
    /// xb = B⁻¹·(b − Σ_{nonbasic at upper} span_j·A_j).
    bool recompute_state() {
        if (!factor_.refactorize(A_, basis_)) return false;
        std::vector<double> beff = rhs_;
        for (int j = 0; j < cols_; ++j) {
            const std::size_t js = static_cast<std::size_t>(j);
            if (!in_basis_[js] && at_upper_[js] && span_[js] != kInfinity && span_[js] > 0.0) {
                A_.axpy_col(j, -span_[js], beff);
            }
        }
        factor_.ftran(beff);
        xb_ = std::move(beff);
        return true;
    }

    void load_phase1_costs() {
        std::fill(cost_.begin(), cost_.end(), 0.0);
        for (int j = artificial_start_; j < cols_; ++j) cost_[static_cast<std::size_t>(j)] = 1.0;
        bound_slack_ = 0.0;
    }

    void load_phase2_costs() {
        std::fill(cost_.begin(), cost_.end(), 0.0);
        for (const auto& [id, c] : model_.objective().terms()) {
            // maximize ⇒ minimize −c, in column-scaled units (ĉ = s·c keeps
            // the scaled objective value equal to the true one).
            cost_[static_cast<std::size_t>(id)] = -c * col_scale_[static_cast<std::size_t>(id)];
        }
        // Deterministic cost perturbation, same formula as the dense solver
        // (simplex.cpp) so the exactly-accounted bound budget is identical.
        bound_slack_ = 0.0;
        if (options_.perturbation > 0.0) {
            for (int j = 0; j < n_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (span_[js] == kInfinity || span_[js] <= 0.0) continue;
                std::uint64_t state =
                    (0x9E3779B97F4A7C15ULL +
                     options_.perturb_seed * 0xD1342543DE82EF95ULL) ^
                    (static_cast<std::uint64_t>(j) << 17);
                const double xi =
                    0.5 + 0.5 * static_cast<double>(support::splitmix64(state) >> 11) * 0x1.0p-53;
                const double eps = options_.perturbation * xi / span_[js];
                cost_[js] += eps;
                bound_slack_ += eps * span_[js];
            }
        }
    }

    LpStatus iterate(int& iterations, bool phase1) {
        const int limit =
            options_.max_iterations > 0 ? options_.max_iterations : 400 + 60 * (m_ + cols_);
        const double tol = options_.tol;
        int stall = 0;
        int recoveries = 0;
        bool bland = options_.force_bland;
        std::vector<double> devex(static_cast<std::size_t>(cols_), 1.0);
        std::vector<double> y(static_cast<std::size_t>(m_));
        std::vector<double> w(static_cast<std::size_t>(m_));
        std::vector<double> rho(static_cast<std::size_t>(m_));

        while (true) {
            if (++iterations > limit) {
                error_ = support::Errc::ResourceLimit;
                return LpStatus::IterLimit;
            }
            if ((iterations & 15) == 1 && !options_.deadline.unlimited() &&
                options_.deadline.expired()) {
                deadline_hit_ = true;
                error_ = options_.deadline.cancelled() ? support::Errc::Cancelled
                                                       : support::Errc::DeadlineExceeded;
                return LpStatus::IterLimit;
            }

            // BTRAN pricing: y = B⁻ᵀc_B, then r_j = c_j − y·A_j per nonbasic
            // column. Nonbasic at lower wants r < 0; at upper wants r > 0.
            std::fill(y.begin(), y.end(), 0.0);
            for (int i = 0; i < m_; ++i) {
                y[static_cast<std::size_t>(i)] =
                    cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
            }
            factor_.btran(y);
            int enter = -1;
            double enter_reduced = 0.0;
            double best = 0.0;
            double enter_dir = 1.0;
            for (int j = 0; j < cols_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (in_basis_[js]) continue;
                if (j >= artificial_start_) continue;  // artificials never re-enter
                if (span_[js] <= tol) continue;        // fixed variable
                const double r = cost_[js] - A_.dot_col(j, y);
                double dir = 1.0;
                if (!at_upper_[js] && r < -tol) {
                    dir = 1.0;
                } else if (at_upper_[js] && r > tol) {
                    dir = -1.0;
                } else {
                    continue;
                }
                if (bland) {
                    enter = j;
                    enter_dir = dir;
                    enter_reduced = r;
                    break;
                }
                const double score = r * r / devex[js];
                if (score > best) {
                    best = score;
                    enter = j;
                    enter_dir = dir;
                    enter_reduced = r;
                }
            }
            if (enter < 0) return LpStatus::Optimal;
            const std::size_t es = static_cast<std::size_t>(enter);

            // FTRAN: w = B⁻¹·A_enter, the entering column in basis coords.
            A_.scatter_col(enter, w);
            factor_.ftran(w);

            // Ratio test: Harris-style two-pass under Devex, exact minimal
            // ratio with smallest-index ties under Bland (identical policy
            // to the dense solver — the anti-cycling guarantee depends on
            // the exact rule).
            double t = span_[es];  // own opposite bound ⇒ bound flip
            for (int i = 0; i < m_; ++i) {
                const double beta = enter_dir * w[static_cast<std::size_t>(i)];
                const std::size_t bi =
                    static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                if (beta > tol) {
                    t = std::min(t, std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0));
                } else if (beta < -tol && span_[bi] != kInfinity) {
                    t = std::min(
                        t, std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0));
                }
            }
            if (t == kInfinity) {
                return phase1 ? LpStatus::Infeasible : LpStatus::Unbounded;
            }
            int leave = -1;
            bool leave_at_upper = false;
            double best_pivot = 0.0;
            if (bland) {
                double exact_t = span_[es];
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * w[static_cast<std::size_t>(i)];
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    if (ratio < exact_t ||
                        (leave >= 0 && ratio == exact_t &&
                         basis_[static_cast<std::size_t>(i)] <
                             basis_[static_cast<std::size_t>(leave)]) ||
                        (leave < 0 && ratio <= exact_t)) {
                        exact_t = ratio;
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
                t = leave >= 0 ? exact_t : t;
            } else {
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * w[static_cast<std::size_t>(i)];
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    if (ratio > t + 1e-9) continue;
                    if (std::abs(beta) > best_pivot) {
                        best_pivot = std::abs(beta);
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
            }

            // Numerical recovery: a pivot element too small to divide by is
            // retried against fresh factors (the eta file may have drifted);
            // a second failure in a row is genuine numerical trouble.
            if (leave >= 0 &&
                std::abs(w[static_cast<std::size_t>(leave)]) < 1e-11) {
                if (++recoveries > 1) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                if (!recompute_state()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                continue;  // re-price with exact factors
            }

            // Anti-cycling guard, same policy as the dense solver: a long
            // degenerate stall engages Bland's rule; strict progress
            // disengages it.
            const double delta = enter_reduced * enter_dir * t;
            if (std::abs(delta) < 1e-12) {
                if (++stall > kDegeneratePivotLimit(m_)) bland = true;
            } else {
                stall = 0;
                bland = options_.force_bland;
            }

            if (leave < 0) {
                // Bound flip: entering crosses to its other bound.
                for (int i = 0; i < m_; ++i) {
                    xb_[static_cast<std::size_t>(i)] -=
                        enter_dir * w[static_cast<std::size_t>(i)] * t;
                }
                at_upper_[es] = !at_upper_[es];
                continue;
            }

            // Fault point: simulates the basis-corrupting pivot breakdown
            // this status exists for (shared budget with the dense solver).
            if (support::fault_fires("simplex.pivot")) {
                error_ = support::Errc::NumericalTrouble;
                return LpStatus::IterLimit;
            }

            // Devex weight update needs the (pre-pivot) pivot row
            // α_r = eᵣᵀB⁻¹A: one extra BTRAN plus a sweep over the columns.
            const double pivot = w[static_cast<std::size_t>(leave)];
            if (!bland) {
                std::fill(rho.begin(), rho.end(), 0.0);
                rho[static_cast<std::size_t>(leave)] = 1.0;
                factor_.btran(rho);
                const double wq = devex[es];
                double wmax = 1.0;
                for (int j = 0; j < cols_; ++j) {
                    const std::size_t js = static_cast<std::size_t>(j);
                    if (in_basis_[js]) continue;
                    const double alpha = A_.dot_col(j, rho) / pivot;
                    if (alpha == 0.0) continue;
                    const double candidate = alpha * alpha * wq;
                    if (candidate > devex[js]) devex[js] = candidate;
                    if (devex[js] > wmax) wmax = devex[js];
                }
                devex[static_cast<std::size_t>(basis_[static_cast<std::size_t>(leave)])] =
                    std::max(wq / (pivot * pivot), 1.0);
                if (wmax > 1e10) std::fill(devex.begin(), devex.end(), 1.0);
            }

            // Apply the pivot: update basic values and the basis bookkeeping,
            // then append the eta to the factorization.
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                xb_[static_cast<std::size_t>(i)] -=
                    enter_dir * w[static_cast<std::size_t>(i)] * t;
            }
            const double enter_value = at_upper_[es] ? span_[es] - t : t;
            const int old_basic = basis_[static_cast<std::size_t>(leave)];
            in_basis_[static_cast<std::size_t>(old_basic)] = false;
            at_upper_[static_cast<std::size_t>(old_basic)] = leave_at_upper;
            basis_[static_cast<std::size_t>(leave)] = enter;
            in_basis_[es] = true;
            at_upper_[es] = false;  // basic status; flag unused while basic
            xb_[static_cast<std::size_t>(leave)] = enter_value;

            if (!factor_.update(w, leave) || factor_.needs_refactorization()) {
                if (!recompute_state()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
            }
            recoveries = 0;
        }
    }

    const Model& model_;
    const LpOptions& options_;
    int n_ = 0;
    const std::vector<double>& lb_;
    const std::vector<double>& ub_;

    int m_ = 0;
    int cols_ = 0;
    int artificial_start_ = 0;
    int num_artificial_ = 0;

    CscMatrix A_;
    BasisFactorization factor_;
    std::vector<double> work_lb_;   // caller bounds tightened by folded rows
    std::vector<double> work_ub_;
    std::vector<double> cost_;      // active minimization costs
    std::vector<double> span_;      // per-column width of [0, d]
    std::vector<double> rhs_;       // normalized right-hand sides
    std::vector<bool> at_upper_;    // nonbasic status
    std::vector<bool> in_basis_;
    std::vector<int> basis_;        // row -> basic column
    std::vector<double> xb_;        // basic values
    std::vector<int> aux_col_;      // row -> slack/artificial column (duals)
    std::vector<double> aux_coeff_; // row -> that column's coefficient (±1)
    std::vector<int> dual_sign_;    // row -> σrow·σcol sign for dual readout
    std::vector<int> orig_row_;     // row -> model constraint index
    std::vector<double> row_scale_; // equilibration factors (powers of two)
    std::vector<double> col_scale_;
    double bound_slack_ = 0.0;      // exact perturbation budget
    bool deadline_hit_ = false;
    support::Errc error_ = support::Errc::None;
};

}  // namespace

const char* to_string(LpBackend backend) noexcept {
    switch (backend) {
        case LpBackend::Sparse: return "sparse";
        case LpBackend::Dense: return "dense";
        case LpBackend::Textbook: return "textbook";
    }
    return "?";
}

LpResult solve_lp_sparse(const Model& model, const std::vector<double>* lb,
                         const std::vector<double>* ub, const LpOptions& options) {
    std::vector<double> lb_local;
    std::vector<double> ub_local;
    if (lb == nullptr) {
        lb_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            lb_local[static_cast<std::size_t>(j)] = model.lower_bound(j);
        }
        lb = &lb_local;
    }
    if (ub == nullptr) {
        ub_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            ub_local[static_cast<std::size_t>(j)] = model.upper_bound(j);
        }
        ub = &ub_local;
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        if ((*lb)[static_cast<std::size_t>(j)] == -kInfinity) {
            throw support::Error(support::Errc::InvalidModel,
                                 "simplex: variable '" + model.var_name(j) +
                                     "' has an infinite lower bound (unsupported)");
        }
    }
    RevisedSimplex solver(model, *lb, *ub, options);
    return solver.solve();
}

LpResult solve_lp_with(LpBackend backend, const Model& model, const std::vector<double>* lb,
                       const std::vector<double>* ub, const LpOptions& options) {
    switch (backend) {
        case LpBackend::Sparse: return solve_lp_sparse(model, lb, ub, options);
        case LpBackend::Dense: return solve_lp(model, lb, ub, options);
        case LpBackend::Textbook: return solve_lp_textbook(model, lb, ub, options);
    }
    return solve_lp(model, lb, ub, options);
}

}  // namespace p4all::ilp
