#include "ilp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>

#include "ilp/scaling.hpp"
#include "ilp/sparse.hpp"
#include "support/error.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"

namespace p4all::ilp {

namespace {

/// Consecutive degenerate pivots tolerated before Bland's rule engages
/// (same policy as the dense solver).
constexpr int kDegeneratePivotLimit(int rows) { return 2 * (rows + 16); }

/// Bounded-variable two-phase revised simplex over CSC + eta-file factors.
///
/// The standard-form construction mirrors simplex.cpp exactly — variables
/// shifted to y = x − lb ∈ [0, span], Ge rows negated to Le, negative-rhs
/// rows negated again, slacks on Le rows, artificials on Eq/negated rows —
/// so both backends expose identical status/dual conventions. On top of
/// that, singleton rows (one variable — the shape `assume lo <= x <= hi`
/// ranges produce) are folded into the variable's working bounds during the
/// build instead of becoming explicit rows: the bounded-variable mechanics
/// already handle them for free, and their dual multiplier is reported as 0
/// (always sign-correct, so the weak-duality certificate stays valid — a
/// folded row can only loosen the certified gap, never unsound it).
class RevisedSimplex {
public:
    RevisedSimplex(const Model& model, const std::vector<double>& lb,
                   const std::vector<double>& ub, const LpOptions& options)
        : model_(model), options_(options), n_(model.num_vars()),
          lb_(lb), ub_(ub) {}

    LpResult solve() {
        LpResult result;
        if (!build(result)) return result;  // folded-bound contradiction ⇒ Infeasible

        // Warm route: import the caller's basis and let the dual simplex
        // repair primal feasibility. Any failure along the way (stale shape,
        // singular basis, dual infeasibility, numerical trouble) falls back
        // to the cold two-phase path below — the warm start changes the
        // route, never the destination.
        bool warmed = false;
        if (options_.warm_basis != nullptr && !options_.warm_basis->empty()) {
            const int w = try_warm_start(result);
            if (w == 2) return result;  // terminal (deadline / infeasible)
            warmed = w == 1;
        }
        if (!warmed) {
            if (!cold_reset()) {
                result.status = LpStatus::IterLimit;
                result.error = support::Errc::NumericalTrouble;
                return result;
            }
            if (num_artificial_ > 0) {
                load_phase1_costs();
                const LpStatus st = iterate(result.iterations, /*phase1=*/true);
                if (st == LpStatus::IterLimit) {
                    result.status = st;
                    result.deadline_hit = deadline_hit_;
                    result.error = error_;
                    return result;
                }
                double artificial_sum = 0.0;
                for (int i = 0; i < m_; ++i) {
                    if (basis_[static_cast<std::size_t>(i)] >= artificial_start_) {
                        artificial_sum += std::abs(xb_[static_cast<std::size_t>(i)]);
                    }
                }
                if (st == LpStatus::Infeasible || artificial_sum > 1e-6) {
                    result.status = LpStatus::Infeasible;
                    return result;
                }
            }
            // Pin artificials to zero for phase 2.
            for (int j = artificial_start_; j < cols_; ++j) {
                span_[static_cast<std::size_t>(j)] = 0.0;
            }
            load_phase2_costs();
        }
        // The warm route arrives here primal-feasible with phase-2 costs
        // already loaded, so this primal pass is a pure optimality
        // confirmation (returns immediately) or mops up residual dual
        // infeasibility within tolerance.
        const LpStatus st = iterate(result.iterations, /*phase1=*/false);
        result.status = st;
        if (st != LpStatus::Optimal) {
            result.deadline_hit = deadline_hit_;
            result.error = error_;
            return result;
        }
        if (options_.capture_basis != nullptr) {
            options_.capture_basis->basic = basis_;
            options_.capture_basis->artificial_start = artificial_start_;
            options_.capture_basis->at_upper.assign(static_cast<std::size_t>(cols_), 0);
            for (int j = 0; j < cols_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (!in_basis_[js] && at_upper_[js]) {
                    options_.capture_basis->at_upper[js] = 1;
                }
            }
        }

        // Dual extraction via BTRAN: y solves Bᵀy = c_B, so the reduced cost
        // of row i's auxiliary column (cost 0, single entry v at row i) is
        // r_aux = −v·y_i, and the maximize-convention dual is σ·r_aux with
        // the same σ bookkeeping as the dense tableau. Folded singleton rows
        // report dual 0.
        std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
        for (int i = 0; i < m_; ++i) {
            y[static_cast<std::size_t>(i)] =
                cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
        }
        factor_.btran(y);
        result.duals.assign(static_cast<std::size_t>(model_.num_constraints()), 0.0);
        for (int i = 0; i < m_; ++i) {
            const std::size_t is = static_cast<std::size_t>(i);
            const double r_aux = -aux_coeff_[is] * y[is];
            // ·ρ maps the scaled row's dual back to the original row's unit.
            result.duals[static_cast<std::size_t>(orig_row_[is])] =
                static_cast<double>(dual_sign_[is]) * r_aux * row_scale_[is];
        }

        result.values.assign(static_cast<std::size_t>(n_), 0.0);
        for (int j = 0; j < n_; ++j) {
            if (at_upper_[static_cast<std::size_t>(j)]) {
                result.values[static_cast<std::size_t>(j)] = span_[static_cast<std::size_t>(j)];
            }
        }
        for (int i = 0; i < m_; ++i) {
            const int j = basis_[static_cast<std::size_t>(i)];
            if (j < n_) result.values[static_cast<std::size_t>(j)] = xb_[static_cast<std::size_t>(i)];
        }
        for (int j = 0; j < n_; ++j) {
            // ·s undoes the column scaling, then the lb shift.
            const std::size_t js = static_cast<std::size_t>(j);
            result.values[js] = result.values[js] * col_scale_[js] + work_lb_[js];
        }
        result.objective = model_.objective().evaluate(result.values);
        result.bound_slack = bound_slack_;
        result.bound = result.objective + bound_slack_;
        if (options_.gomory_probe != nullptr) fill_gomory_probe(result);
        return result;
    }

private:
    /// Builds the CSC standard form. Returns false (status pre-set to
    /// Infeasible) when folding a singleton row produces an empty domain.
    bool build(LpResult& result) {
        work_lb_ = lb_;
        work_ub_ = ub_;
        for (int j = 0; j < n_; ++j) {
            if (work_ub_[static_cast<std::size_t>(j)] - work_lb_[static_cast<std::size_t>(j)] <
                -1e-12) {
                throw support::Error(support::Errc::InvalidModel,
                                     "simplex: lb > ub for variable '" + model_.var_name(j) +
                                         "'");
            }
        }

        struct Row {
            std::vector<std::pair<int, double>> terms;
            bool eq;
            bool negated = false;
            int sense_sign = 1;  // −1 for Ge rows (normalized to Le)
            double rhs;
            int orig = 0;
        };
        std::vector<Row> rows;
        rows.reserve(model_.constraints().size());
        int orig_index = -1;
        for (const Constraint& c : model_.constraints()) {
            ++orig_index;
            // Singleton-row presolve against the *unshifted* bounds.
            if (c.expr.terms().size() <= 1) {
                if (!fold_singleton(c)) {
                    result.status = LpStatus::Infeasible;
                    return false;
                }
                continue;
            }
            Row r;
            r.eq = c.sense == CmpSense::Eq;
            r.orig = orig_index;
            const double sign = c.sense == CmpSense::Ge ? -1.0 : 1.0;
            r.sense_sign = c.sense == CmpSense::Ge ? -1 : 1;
            for (const auto& [id, coeff] : c.expr.terms()) {
                r.terms.emplace_back(id, sign * coeff);
            }
            r.rhs = sign * (c.rhs - c.expr.constant());
            rows.push_back(std::move(r));
        }
        // Bound folding finished: now shift every kept row by the working
        // lower bounds (y = x − lb) and normalize signs.
        for (Row& r : rows) {
            double shift = 0.0;
            for (const auto& [id, coeff] : r.terms) {
                shift += coeff * work_lb_[static_cast<std::size_t>(id)];
            }
            r.rhs -= shift;
        }
        m_ = static_cast<int>(rows.size());

        // Equilibrate (scaling.hpp) — identical policy to the dense backend
        // so both solve the same scaled problem: power-of-two row/column
        // factors keep entries near 1 and the absolute tolerances sound on
        // models mixing O(1) utility rows with O(10^6) memory rows.
        {
            std::vector<std::vector<std::pair<int, double>>> term_rows;
            term_rows.reserve(rows.size());
            for (const Row& r : rows) term_rows.push_back(r.terms);
            Equilibration eq = equilibrate(term_rows, n_);
            row_scale_ = std::move(eq.row);
            col_scale_ = std::move(eq.col);
            for (int i = 0; i < m_; ++i) {
                Row& r = rows[static_cast<std::size_t>(i)];
                const double rho = row_scale_[static_cast<std::size_t>(i)];
                for (auto& [id, c] : r.terms) {
                    c *= rho * col_scale_[static_cast<std::size_t>(id)];
                }
                r.rhs *= rho;
            }
        }

        int num_slack = 0;
        num_artificial_ = 0;
        for (Row& r : rows) {
            if (!r.eq) ++num_slack;
            if (r.rhs < 0) {
                r.negated = true;
                for (auto& [id, c] : r.terms) c = -c;
                r.rhs = -r.rhs;
            }
            if (r.eq || r.negated) ++num_artificial_;
        }
        artificial_start_ = n_ + num_slack;
        // Every row owns an artificial column (row i ↔ artificial_start_+i),
        // whether or not it needs one initially. Which rows need an
        // artificial depends on the rhs sign after the lb shift — a
        // bounds-DEPENDENT property — so a per-need layout would shift
        // column identities between a branch-and-bound parent and child and
        // make warm bases untransferable. With the fixed layout the standard
        // form's column space is a pure function of the model; unused
        // artificials are pinned nonbasic at zero and never priced.
        cols_ = artificial_start_ + m_;

        span_.assign(static_cast<std::size_t>(cols_), kInfinity);
        at_upper_.assign(static_cast<std::size_t>(cols_), false);
        in_basis_.assign(static_cast<std::size_t>(cols_), false);
        basis_.assign(static_cast<std::size_t>(m_), -1);
        xb_.assign(static_cast<std::size_t>(m_), 0.0);
        rhs_.assign(static_cast<std::size_t>(m_), 0.0);
        aux_coeff_.assign(static_cast<std::size_t>(m_), 1.0);
        aux_col_.assign(static_cast<std::size_t>(m_), -1);
        dual_sign_.assign(static_cast<std::size_t>(m_), 1);
        row_orient_.assign(static_cast<std::size_t>(m_), 1);
        orig_row_.assign(static_cast<std::size_t>(m_), 0);
        cost_.assign(static_cast<std::size_t>(cols_), 0.0);

        for (int j = 0; j < n_; ++j) {
            const double d =
                work_ub_[static_cast<std::size_t>(j)] - work_lb_[static_cast<std::size_t>(j)];
            span_[static_cast<std::size_t>(j)] =
                std::max(d, 0.0) / col_scale_[static_cast<std::size_t>(j)];
        }

        std::vector<CscMatrix::Triplet> triplets;
        int next_slack = n_;
        for (int i = 0; i < m_; ++i) {
            const Row& r = rows[static_cast<std::size_t>(i)];
            for (const auto& [id, c] : r.terms) {
                if (c != 0.0) triplets.push_back({i, id, c});
            }
            rhs_[static_cast<std::size_t>(i)] = r.rhs;
            orig_row_[static_cast<std::size_t>(i)] = r.orig;
            row_orient_[static_cast<std::size_t>(i)] = r.sense_sign * (r.negated ? -1 : 1);
            const int artificial = artificial_start_ + i;
            triplets.push_back({i, artificial, 1.0});
            int basic = -1;
            const int sigma_row = r.sense_sign * (r.negated ? -1 : 1);
            if (!r.eq) {
                const double slack_coeff = r.negated ? -1.0 : 1.0;
                triplets.push_back({i, next_slack, slack_coeff});
                if (!r.negated) basic = next_slack;
                aux_col_[static_cast<std::size_t>(i)] = next_slack;
                aux_coeff_[static_cast<std::size_t>(i)] = slack_coeff;
                dual_sign_[static_cast<std::size_t>(i)] = sigma_row * (r.negated ? -1 : 1);
                ++next_slack;
            }
            if (basic < 0) {
                if (r.eq) {
                    aux_col_[static_cast<std::size_t>(i)] = artificial;
                    aux_coeff_[static_cast<std::size_t>(i)] = 1.0;
                    dual_sign_[static_cast<std::size_t>(i)] = sigma_row;
                }
                basic = artificial;
            } else {
                // Artificial not needed for the initial basis: permanently
                // fixed at zero so it never participates.
                span_[static_cast<std::size_t>(artificial)] = 0.0;
            }
            basis_[static_cast<std::size_t>(i)] = basic;
            in_basis_[static_cast<std::size_t>(basic)] = true;
        }
        A_ = CscMatrix::from_triplets(m_, cols_, std::move(triplets));
        // Pristine-state snapshot so a failed warm start can restart the
        // classic two-phase route from scratch.
        init_basis_ = basis_;
        init_span_ = span_;
        return true;
    }

    /// Restores the post-build state (initial slack/artificial basis, all
    /// columns at lower bound) and refactorizes. Used both by the cold path
    /// proper and to rewind a failed warm-start attempt.
    bool cold_reset() {
        basis_ = init_basis_;
        span_ = init_span_;
        std::fill(at_upper_.begin(), at_upper_.end(), false);
        std::fill(in_basis_.begin(), in_basis_.end(), false);
        for (int i = 0; i < m_; ++i) {
            in_basis_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = true;
        }
        deadline_hit_ = false;
        error_ = support::Errc::None;
        return recompute_state();
    }

    /// Folds a 0- or 1-term constraint into the working bounds. Returns
    /// false when the fold makes the constraint unsatisfiable.
    bool fold_singleton(const Constraint& c) {
        const double rhs = c.rhs - c.expr.constant();
        if (c.expr.terms().empty() ||
            c.expr.terms().front().second == 0.0) {
            // Constant row: pure feasibility check.
            constexpr double kTol = 1e-9;
            switch (c.sense) {
                case CmpSense::Le: return 0.0 <= rhs + kTol;
                case CmpSense::Ge: return 0.0 >= rhs - kTol;
                case CmpSense::Eq: return std::abs(rhs) <= kTol;
            }
            return true;
        }
        const auto& [id, a] = c.expr.terms().front();
        const std::size_t js = static_cast<std::size_t>(id);
        const double v = rhs / a;
        const bool tightens_ub =
            (c.sense == CmpSense::Le && a > 0) || (c.sense == CmpSense::Ge && a < 0);
        const bool tightens_lb =
            (c.sense == CmpSense::Ge && a > 0) || (c.sense == CmpSense::Le && a < 0);
        if (c.sense == CmpSense::Eq || tightens_ub) {
            work_ub_[js] = std::min(work_ub_[js], v);
        }
        if (c.sense == CmpSense::Eq || tightens_lb) {
            work_lb_[js] = std::max(work_lb_[js], v);
        }
        // LP feasibility tolerance: an epsilon-inverted interval is an empty
        // domain only beyond the same tolerance the dense solver applies.
        return work_ub_[js] - work_lb_[js] >= -1e-9;
    }

    /// Refactorizes the basis and recomputes the basic values
    /// xb = B⁻¹·(b − Σ_{nonbasic at upper} span_j·A_j).
    bool recompute_state() {
        if (!factor_.refactorize(A_, basis_)) return false;
        std::vector<double> beff = rhs_;
        for (int j = 0; j < cols_; ++j) {
            const std::size_t js = static_cast<std::size_t>(j);
            if (!in_basis_[js] && at_upper_[js] && span_[js] != kInfinity && span_[js] > 0.0) {
                A_.axpy_col(j, -span_[js], beff);
            }
        }
        factor_.ftran(beff);
        xb_ = std::move(beff);
        return true;
    }

    void load_phase1_costs() {
        std::fill(cost_.begin(), cost_.end(), 0.0);
        for (int j = artificial_start_; j < cols_; ++j) cost_[static_cast<std::size_t>(j)] = 1.0;
        bound_slack_ = 0.0;
    }

    void load_phase2_costs() {
        std::fill(cost_.begin(), cost_.end(), 0.0);
        for (const auto& [id, c] : model_.objective().terms()) {
            // maximize ⇒ minimize −c, in column-scaled units (ĉ = s·c keeps
            // the scaled objective value equal to the true one).
            cost_[static_cast<std::size_t>(id)] = -c * col_scale_[static_cast<std::size_t>(id)];
        }
        // Deterministic cost perturbation, same formula as the dense solver
        // (simplex.cpp) so the exactly-accounted bound budget is identical.
        // When the caller supplies frozen reference bounds, the magnitude is
        // derived from the reference span instead of the per-call span: the
        // perturbed cost vector is then constant across a whole
        // branch-and-bound tree, which is what keeps a parent's optimal
        // basis dual-feasible in its children. The slack accounting still
        // uses the per-call span (≤ reference span under branching), so the
        // certified bound stays exact at every node.
        bound_slack_ = 0.0;
        if (options_.perturbation > 0.0) {
            const bool has_ref =
                options_.perturb_ref_lb != nullptr && options_.perturb_ref_ub != nullptr;
            for (int j = 0; j < n_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                double ref_span = span_[js];
                if (has_ref) {
                    const double d = (*options_.perturb_ref_ub)[js] - (*options_.perturb_ref_lb)[js];
                    ref_span = d == kInfinity ? kInfinity : std::max(d, 0.0) / col_scale_[js];
                }
                if (ref_span == kInfinity || ref_span <= 0.0) continue;
                std::uint64_t state =
                    (0x9E3779B97F4A7C15ULL +
                     options_.perturb_seed * 0xD1342543DE82EF95ULL) ^
                    (static_cast<std::uint64_t>(j) << 17);
                const double xi =
                    0.5 + 0.5 * static_cast<double>(support::splitmix64(state) >> 11) * 0x1.0p-53;
                const double eps = options_.perturbation * xi / ref_span;
                cost_[js] += eps;
                const double slack_span = span_[js] == kInfinity ? ref_span : span_[js];
                bound_slack_ += eps * slack_span;
            }
        }
    }

    /// Attempts the warm-start route: install the imported basis, verify it
    /// is dual-feasible under the (frozen) phase-2 costs, and run the dual
    /// simplex to restore primal feasibility. Returns 0 to fall back to the
    /// cold two-phase path, 1 when the state is primal-feasible and ready
    /// for the final primal confirmation, 2 when `result` already holds a
    /// terminal answer (deadline expiry or proven infeasibility).
    int try_warm_start(LpResult& result) {
        const SimplexBasis& wb = *options_.warm_basis;
        const int wm = static_cast<int>(wb.basic.size());
        const int wcols = static_cast<int>(wb.at_upper.size());
        const bool exact = wm == m_ && wcols == cols_;
        // Row-append extension (the root cut loop): the imported basis came
        // from this same standard form minus some trailing rows. Structural
        // and slack indices are stable under row appends; the artificial
        // block shifts as a whole. Each appended row enters the basis
        // through its own auxiliary column — dual-feasible for free (the new
        // row's dual value is zero, so no reduced cost moves) — and whatever
        // primal violation the new rows carry is exactly what the dual
        // simplex repairs.
        const bool extend = !exact && wb.artificial_start > 0 && wm < m_ &&
                            wcols == wb.artificial_start + wm &&
                            wb.artificial_start <= artificial_start_;
        if (!exact && !extend) {
            return 0;  // stale shape: basis from a different model
        }
        const auto remap = [&](int j) {
            return !extend || j < wb.artificial_start
                       ? j
                       : artificial_start_ + (j - wb.artificial_start);
        };
        std::fill(in_basis_.begin(), in_basis_.end(), false);
        for (int i = 0; i < m_; ++i) {
            int j;
            if (i < wm) {
                j = wb.basic[static_cast<std::size_t>(i)];
                if (j < 0 || j >= wcols) return 0;
                j = remap(j);
            } else {
                j = aux_col_[static_cast<std::size_t>(i)];
            }
            if (j < 0 || j >= cols_ || in_basis_[static_cast<std::size_t>(j)]) {
                return 0;  // malformed basis (out of range / duplicate)
            }
            basis_[static_cast<std::size_t>(i)] = j;
            in_basis_[static_cast<std::size_t>(j)] = true;
        }
        std::fill(at_upper_.begin(), at_upper_.end(), false);
        for (int j = 0; j < wcols; ++j) {
            const std::size_t ts = static_cast<std::size_t>(remap(j));
            at_upper_[ts] = wb.at_upper[static_cast<std::size_t>(j)] != 0 && !in_basis_[ts] &&
                            span_[ts] != kInfinity;
        }
        // Artificials are fixed at zero throughout the warm route: a basic
        // artificial left over from a degenerate parent pivot is allowed,
        // and if the child's rhs shift gives it a nonzero value the dual
        // simplex drives it out like any other bound violation.
        for (int j = artificial_start_; j < cols_; ++j) {
            span_[static_cast<std::size_t>(j)] = 0.0;
        }
        if (!recompute_state()) return 0;
        load_phase2_costs();

        // Dual feasibility check: the parent's optimal basis under the same
        // frozen cost vector must price out clean; anything beyond rounding
        // noise means the import assumption broke, so take the cold route.
        {
            std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
            for (int i = 0; i < m_; ++i) {
                y[static_cast<std::size_t>(i)] =
                    cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
            }
            factor_.btran(y);
            constexpr double kDualTol = 1e-7;
            for (int j = 0; j < artificial_start_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (in_basis_[js] || span_[js] <= options_.tol) continue;
                const double r = cost_[js] - A_.dot_col(j, y);
                if ((!at_upper_[js] && r < -kDualTol) || (at_upper_[js] && r > kDualTol)) {
                    return 0;
                }
            }
        }

        const LpStatus st = iterate_dual(result.iterations);
        if (st == LpStatus::Optimal) return 1;  // primal feasibility restored
        if (st == LpStatus::Infeasible) {
            result.status = LpStatus::Infeasible;
            return 2;
        }
        if (st == LpStatus::IterLimit && deadline_hit_) {
            result.status = st;
            result.deadline_hit = true;
            result.error = error_;
            return 2;
        }
        // Iteration budget or numerical trouble: deterministic cold fallback.
        deadline_hit_ = false;
        error_ = support::Errc::None;
        return 0;
    }

    /// Bounded-variable dual simplex. Precondition: the current basis is
    /// dual-feasible under `cost_`. Repairs primal feasibility while
    /// maintaining dual feasibility; each pivot weakly increases the
    /// minimize-form objective (equivalently, the certified upper bound on
    /// the true maximum never increases). Returns Optimal when every basic
    /// value is within its bounds, Infeasible when a violated row has no
    /// eligible entering column (dual ray ⇒ primal empty), IterLimit on
    /// budget/deadline/numerical trouble (caller falls back cold).
    LpStatus iterate_dual(int& iterations) {
        const int limit =
            options_.max_iterations > 0 ? options_.max_iterations : 400 + 60 * (m_ + cols_);
        const double tol = options_.tol;
        int stall = 0;
        int recoveries = 0;
        bool bland = options_.force_bland;
        std::vector<double> y(static_cast<std::size_t>(m_));
        std::vector<double> w(static_cast<std::size_t>(m_));
        std::vector<double> rho(static_cast<std::size_t>(m_));

        while (true) {
            if (++iterations > limit) {
                error_ = support::Errc::ResourceLimit;
                return LpStatus::IterLimit;
            }
            if ((iterations & 15) == 1 && !options_.deadline.unlimited() &&
                options_.deadline.expired()) {
                deadline_hit_ = true;
                error_ = options_.deadline.cancelled() ? support::Errc::Cancelled
                                                       : support::Errc::DeadlineExceeded;
                return LpStatus::IterLimit;
            }

            // Leaving row: the most-infeasible basic value (Bland fallback:
            // smallest basic variable index among the infeasible rows — the
            // deterministic anti-cycling rule).
            int leave = -1;
            bool below = false;
            double worst = tol;
            int bland_key = cols_;
            for (int i = 0; i < m_; ++i) {
                const std::size_t is = static_cast<std::size_t>(i);
                const std::size_t bi = static_cast<std::size_t>(basis_[is]);
                double viol = -xb_[is];
                bool is_below = true;
                if (span_[bi] != kInfinity && xb_[is] - span_[bi] > viol) {
                    viol = xb_[is] - span_[bi];
                    is_below = false;
                }
                if (viol <= tol) continue;
                if (bland) {
                    if (basis_[is] < bland_key) {
                        bland_key = basis_[is];
                        leave = i;
                        below = is_below;
                    }
                } else if (viol > worst) {
                    worst = viol;
                    leave = i;
                    below = is_below;
                }
            }
            if (leave < 0) return LpStatus::Optimal;  // primal feasible
            const std::size_t ls = static_cast<std::size_t>(leave);
            const int bvar = basis_[ls];

            // Pivot row via BTRAN: ρ = B⁻ᵀe_r, α_j = A_j·ρ. Reduced costs
            // via a second BTRAN: y = B⁻ᵀc_B, r_j = c_j − A_j·y.
            std::fill(rho.begin(), rho.end(), 0.0);
            rho[ls] = 1.0;
            factor_.btran(rho);
            std::fill(y.begin(), y.end(), 0.0);
            for (int i = 0; i < m_; ++i) {
                y[static_cast<std::size_t>(i)] =
                    cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
            }
            factor_.btran(y);

            // Dual ratio test. With ᾱ_j = −α_j when leaving below (so both
            // cases read like "basic above its upper bound"), eligible
            // columns are at-lower with ᾱ > 0 and at-upper with ᾱ < 0; the
            // entering column minimizes |r_j|/|ᾱ_j|, which is exactly the
            // largest dual step that keeps every other reduced cost on its
            // feasible side. Ties break on larger |ᾱ| (numerical stability),
            // then smallest column index (determinism); under Bland, exact
            // minimum with smallest index.
            int enter = -1;
            double best_ratio = kInfinity;
            double best_alpha = 0.0;
            for (int j = 0; j < artificial_start_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (in_basis_[js]) continue;
                if (span_[js] <= tol) continue;  // fixed: never blocks the dual ray
                const double alpha = A_.dot_col(j, rho);
                const double abar = below ? -alpha : alpha;
                double ratio = kInfinity;
                if (!at_upper_[js] && abar > tol) {
                    const double r = cost_[js] - A_.dot_col(j, y);
                    ratio = std::max(r, 0.0) / abar;
                } else if (at_upper_[js] && abar < -tol) {
                    const double r = cost_[js] - A_.dot_col(j, y);
                    ratio = std::max(-r, 0.0) / (-abar);
                } else {
                    continue;
                }
                if (bland) {
                    if (ratio < best_ratio) {
                        best_ratio = ratio;
                        best_alpha = abar;
                        enter = j;
                    }
                } else if (ratio < best_ratio - 1e-9 ||
                           (ratio < best_ratio + 1e-9 && std::abs(abar) > std::abs(best_alpha))) {
                    best_ratio = ratio;
                    best_alpha = abar;
                    enter = j;
                }
            }
            if (enter < 0) return LpStatus::Infeasible;
            const std::size_t es = static_cast<std::size_t>(enter);

            // FTRAN the entering column; the pivot element must agree with
            // the row view. Too small ⇒ refactorize once and retry, twice ⇒
            // genuine numerical trouble.
            A_.scatter_col(enter, w);
            factor_.ftran(w);
            const double pivot = w[ls];
            if (std::abs(pivot) < 1e-11) {
                if (++recoveries > 1) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                if (!recompute_state()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                continue;
            }

            // Fault point: shared budget with the primal engines, so
            // P4ALL_FAULTS=simplex.pivot exercises the dual path too.
            if (support::fault_fires("simplex.pivot")) {
                error_ = support::Errc::NumericalTrouble;
                return LpStatus::IterLimit;
            }

            // Degenerate-stall bookkeeping: a zero dual step makes no
            // progress in the dual objective; a long run of them engages
            // Bland's rule.
            if (best_ratio < 1e-12) {
                if (++stall > kDegeneratePivotLimit(m_)) bland = true;
            } else {
                stall = 0;
                bland = options_.force_bland;
            }

            // Primal step: move the entering variable off its bound far
            // enough to land the leaving variable exactly on its violated
            // bound, update the other basic values, swap basis roles.
            const double infeas = below ? xb_[ls] : xb_[ls] - span_[static_cast<std::size_t>(bvar)];
            const double delta = infeas / pivot;
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                xb_[static_cast<std::size_t>(i)] -= w[static_cast<std::size_t>(i)] * delta;
            }
            const double enter_from = at_upper_[es] ? span_[es] : 0.0;
            in_basis_[static_cast<std::size_t>(bvar)] = false;
            at_upper_[static_cast<std::size_t>(bvar)] =
                !below && span_[static_cast<std::size_t>(bvar)] != kInfinity;
            basis_[ls] = enter;
            in_basis_[es] = true;
            at_upper_[es] = false;
            xb_[ls] = enter_from + delta;

            if (!factor_.update(w, leave) || factor_.needs_refactorization()) {
                if (!recompute_state()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
            }
            recoveries = 0;
            if (options_.dual_pivot_trace != nullptr) {
                options_.dual_pivot_trace->push_back(scaled_min_objective());
            }
        }
    }

    /// Current minimize-form objective of the (possibly primal-infeasible)
    /// basic solution: Σ basic c_j·x_j + Σ nonbasic-at-upper c_j·span_j.
    /// Used only for the dual pivot trace, so the O(cols) sweep is fine.
    double scaled_min_objective() const {
        double obj = 0.0;
        for (int i = 0; i < m_; ++i) {
            obj += cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] *
                   xb_[static_cast<std::size_t>(i)];
        }
        for (int j = 0; j < cols_; ++j) {
            const std::size_t js = static_cast<std::size_t>(j);
            if (!in_basis_[js] && at_upper_[js] && span_[js] != kInfinity) {
                obj += cost_[js] * span_[js];
            }
        }
        return obj;
    }

    /// Deposits Gomory raw material: for every basic, fractional,
    /// integer-typed structural variable, the tableau-row multipliers mapped
    /// back to original model rows (ρ undoes row scaling, row_orient_ undoes
    /// the Ge→Le and negative-rhs negations; folded singleton rows have no
    /// standard-form row and therefore multiplier 0).
    void fill_gomory_probe(const LpResult& result) {
        auto& probe = *options_.gomory_probe;
        probe.clear();
        std::vector<double> rho(static_cast<std::size_t>(m_));
        for (int i = 0; i < m_; ++i) {
            const int j = basis_[static_cast<std::size_t>(i)];
            if (j >= n_) continue;
            if (model_.var_type(j) == VarType::Continuous) continue;
            const double x = result.values[static_cast<std::size_t>(j)];
            const double frac = x - std::floor(x);
            if (frac < 1e-6 || frac > 1.0 - 1e-6) continue;
            std::fill(rho.begin(), rho.end(), 0.0);
            rho[static_cast<std::size_t>(i)] = 1.0;
            factor_.btran(rho);
            TableauRow row;
            row.var = j;
            row.value = x;
            row.mult.assign(static_cast<std::size_t>(model_.num_constraints()), 0.0);
            for (int k = 0; k < m_; ++k) {
                const std::size_t ks = static_cast<std::size_t>(k);
                row.mult[static_cast<std::size_t>(orig_row_[ks])] =
                    rho[ks] * row_scale_[ks] * static_cast<double>(row_orient_[ks]);
            }
            probe.push_back(std::move(row));
        }
    }

    LpStatus iterate(int& iterations, bool phase1) {
        const int limit =
            options_.max_iterations > 0 ? options_.max_iterations : 400 + 60 * (m_ + cols_);
        const double tol = options_.tol;
        int stall = 0;
        int recoveries = 0;
        bool bland = options_.force_bland;
        std::vector<double> devex(static_cast<std::size_t>(cols_), 1.0);
        std::vector<double> y(static_cast<std::size_t>(m_));
        std::vector<double> w(static_cast<std::size_t>(m_));
        std::vector<double> rho(static_cast<std::size_t>(m_));

        while (true) {
            if (++iterations > limit) {
                error_ = support::Errc::ResourceLimit;
                return LpStatus::IterLimit;
            }
            if ((iterations & 15) == 1 && !options_.deadline.unlimited() &&
                options_.deadline.expired()) {
                deadline_hit_ = true;
                error_ = options_.deadline.cancelled() ? support::Errc::Cancelled
                                                       : support::Errc::DeadlineExceeded;
                return LpStatus::IterLimit;
            }

            // BTRAN pricing: y = B⁻ᵀc_B, then r_j = c_j − y·A_j per nonbasic
            // column. Nonbasic at lower wants r < 0; at upper wants r > 0.
            std::fill(y.begin(), y.end(), 0.0);
            for (int i = 0; i < m_; ++i) {
                y[static_cast<std::size_t>(i)] =
                    cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
            }
            factor_.btran(y);
            int enter = -1;
            double enter_reduced = 0.0;
            double best = 0.0;
            double enter_dir = 1.0;
            for (int j = 0; j < cols_; ++j) {
                const std::size_t js = static_cast<std::size_t>(j);
                if (in_basis_[js]) continue;
                if (j >= artificial_start_) continue;  // artificials never re-enter
                if (span_[js] <= tol) continue;        // fixed variable
                const double r = cost_[js] - A_.dot_col(j, y);
                double dir = 1.0;
                if (!at_upper_[js] && r < -tol) {
                    dir = 1.0;
                } else if (at_upper_[js] && r > tol) {
                    dir = -1.0;
                } else {
                    continue;
                }
                if (bland) {
                    enter = j;
                    enter_dir = dir;
                    enter_reduced = r;
                    break;
                }
                const double score = r * r / devex[js];
                if (score > best) {
                    best = score;
                    enter = j;
                    enter_dir = dir;
                    enter_reduced = r;
                }
            }
            if (enter < 0) return LpStatus::Optimal;
            const std::size_t es = static_cast<std::size_t>(enter);

            // FTRAN: w = B⁻¹·A_enter, the entering column in basis coords.
            A_.scatter_col(enter, w);
            factor_.ftran(w);

            // Ratio test: Harris-style two-pass under Devex, exact minimal
            // ratio with smallest-index ties under Bland (identical policy
            // to the dense solver — the anti-cycling guarantee depends on
            // the exact rule).
            double t = span_[es];  // own opposite bound ⇒ bound flip
            for (int i = 0; i < m_; ++i) {
                const double beta = enter_dir * w[static_cast<std::size_t>(i)];
                const std::size_t bi =
                    static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                if (beta > tol) {
                    t = std::min(t, std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0));
                } else if (beta < -tol && span_[bi] != kInfinity) {
                    t = std::min(
                        t, std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0));
                }
            }
            if (t == kInfinity) {
                return phase1 ? LpStatus::Infeasible : LpStatus::Unbounded;
            }
            int leave = -1;
            bool leave_at_upper = false;
            double best_pivot = 0.0;
            if (bland) {
                double exact_t = span_[es];
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * w[static_cast<std::size_t>(i)];
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    if (ratio < exact_t ||
                        (leave >= 0 && ratio == exact_t &&
                         basis_[static_cast<std::size_t>(i)] <
                             basis_[static_cast<std::size_t>(leave)]) ||
                        (leave < 0 && ratio <= exact_t)) {
                        exact_t = ratio;
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
                t = leave >= 0 ? exact_t : t;
            } else {
                for (int i = 0; i < m_; ++i) {
                    const double beta = enter_dir * w[static_cast<std::size_t>(i)];
                    const std::size_t bi =
                        static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)]);
                    double ratio = kInfinity;
                    bool hits_upper = false;
                    if (beta > tol) {
                        ratio = std::max(xb_[static_cast<std::size_t>(i)] / beta, 0.0);
                    } else if (beta < -tol && span_[bi] != kInfinity) {
                        ratio =
                            std::max((span_[bi] - xb_[static_cast<std::size_t>(i)]) / (-beta), 0.0);
                        hits_upper = true;
                    } else {
                        continue;
                    }
                    if (ratio > t + 1e-9) continue;
                    if (std::abs(beta) > best_pivot) {
                        best_pivot = std::abs(beta);
                        leave = i;
                        leave_at_upper = hits_upper;
                    }
                }
            }

            // Numerical recovery: a pivot element too small to divide by is
            // retried against fresh factors (the eta file may have drifted);
            // a second failure in a row is genuine numerical trouble.
            if (leave >= 0 &&
                std::abs(w[static_cast<std::size_t>(leave)]) < 1e-11) {
                if (++recoveries > 1) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                if (!recompute_state()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
                continue;  // re-price with exact factors
            }

            // Anti-cycling guard, same policy as the dense solver: a long
            // degenerate stall engages Bland's rule; strict progress
            // disengages it.
            const double delta = enter_reduced * enter_dir * t;
            if (std::abs(delta) < 1e-12) {
                if (++stall > kDegeneratePivotLimit(m_)) bland = true;
            } else {
                stall = 0;
                bland = options_.force_bland;
            }

            if (leave < 0) {
                // Bound flip: entering crosses to its other bound.
                for (int i = 0; i < m_; ++i) {
                    xb_[static_cast<std::size_t>(i)] -=
                        enter_dir * w[static_cast<std::size_t>(i)] * t;
                }
                at_upper_[es] = !at_upper_[es];
                continue;
            }

            // Fault point: simulates the basis-corrupting pivot breakdown
            // this status exists for (shared budget with the dense solver).
            if (support::fault_fires("simplex.pivot")) {
                error_ = support::Errc::NumericalTrouble;
                return LpStatus::IterLimit;
            }

            // Devex weight update needs the (pre-pivot) pivot row
            // α_r = eᵣᵀB⁻¹A: one extra BTRAN plus a sweep over the columns.
            const double pivot = w[static_cast<std::size_t>(leave)];
            if (!bland) {
                std::fill(rho.begin(), rho.end(), 0.0);
                rho[static_cast<std::size_t>(leave)] = 1.0;
                factor_.btran(rho);
                const double wq = devex[es];
                double wmax = 1.0;
                for (int j = 0; j < cols_; ++j) {
                    const std::size_t js = static_cast<std::size_t>(j);
                    if (in_basis_[js]) continue;
                    const double alpha = A_.dot_col(j, rho) / pivot;
                    if (alpha == 0.0) continue;
                    const double candidate = alpha * alpha * wq;
                    if (candidate > devex[js]) devex[js] = candidate;
                    if (devex[js] > wmax) wmax = devex[js];
                }
                devex[static_cast<std::size_t>(basis_[static_cast<std::size_t>(leave)])] =
                    std::max(wq / (pivot * pivot), 1.0);
                if (wmax > 1e10) std::fill(devex.begin(), devex.end(), 1.0);
            }

            // Apply the pivot: update basic values and the basis bookkeeping,
            // then append the eta to the factorization.
            for (int i = 0; i < m_; ++i) {
                if (i == leave) continue;
                xb_[static_cast<std::size_t>(i)] -=
                    enter_dir * w[static_cast<std::size_t>(i)] * t;
            }
            const double enter_value = at_upper_[es] ? span_[es] - t : t;
            const int old_basic = basis_[static_cast<std::size_t>(leave)];
            in_basis_[static_cast<std::size_t>(old_basic)] = false;
            at_upper_[static_cast<std::size_t>(old_basic)] = leave_at_upper;
            basis_[static_cast<std::size_t>(leave)] = enter;
            in_basis_[es] = true;
            at_upper_[es] = false;  // basic status; flag unused while basic
            xb_[static_cast<std::size_t>(leave)] = enter_value;

            if (!factor_.update(w, leave) || factor_.needs_refactorization()) {
                if (!recompute_state()) {
                    error_ = support::Errc::NumericalTrouble;
                    return LpStatus::IterLimit;
                }
            }
            recoveries = 0;
        }
    }

    const Model& model_;
    const LpOptions& options_;
    int n_ = 0;
    const std::vector<double>& lb_;
    const std::vector<double>& ub_;

    int m_ = 0;
    int cols_ = 0;
    int artificial_start_ = 0;
    int num_artificial_ = 0;

    CscMatrix A_;
    BasisFactorization factor_;
    std::vector<double> work_lb_;   // caller bounds tightened by folded rows
    std::vector<double> work_ub_;
    std::vector<double> cost_;      // active minimization costs
    std::vector<double> span_;      // per-column width of [0, d]
    std::vector<double> rhs_;       // normalized right-hand sides
    std::vector<bool> at_upper_;    // nonbasic status
    std::vector<bool> in_basis_;
    std::vector<int> basis_;        // row -> basic column
    std::vector<double> xb_;        // basic values
    std::vector<int> aux_col_;      // row -> slack/artificial column (duals)
    std::vector<double> aux_coeff_; // row -> that column's coefficient (±1)
    std::vector<int> dual_sign_;    // row -> σrow·σcol sign for dual readout
    std::vector<int> row_orient_;   // row -> ± sign mapping std row back to orig row
    std::vector<int> orig_row_;     // row -> model constraint index
    std::vector<int> init_basis_;   // post-build snapshot for cold restarts
    std::vector<double> init_span_;
    std::vector<double> row_scale_; // equilibration factors (powers of two)
    std::vector<double> col_scale_;
    double bound_slack_ = 0.0;      // exact perturbation budget
    bool deadline_hit_ = false;
    support::Errc error_ = support::Errc::None;
};

}  // namespace

const char* to_string(LpBackend backend) noexcept {
    switch (backend) {
        case LpBackend::Sparse: return "sparse";
        case LpBackend::Dense: return "dense";
        case LpBackend::Textbook: return "textbook";
    }
    return "?";
}

LpResult solve_lp_sparse(const Model& model, const std::vector<double>* lb,
                         const std::vector<double>* ub, const LpOptions& options) {
    std::vector<double> lb_local;
    std::vector<double> ub_local;
    if (lb == nullptr) {
        lb_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            lb_local[static_cast<std::size_t>(j)] = model.lower_bound(j);
        }
        lb = &lb_local;
    }
    if (ub == nullptr) {
        ub_local.resize(static_cast<std::size_t>(model.num_vars()));
        for (int j = 0; j < model.num_vars(); ++j) {
            ub_local[static_cast<std::size_t>(j)] = model.upper_bound(j);
        }
        ub = &ub_local;
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        if ((*lb)[static_cast<std::size_t>(j)] == -kInfinity) {
            throw support::Error(support::Errc::InvalidModel,
                                 "simplex: variable '" + model.var_name(j) +
                                     "' has an infinite lower bound (unsupported)");
        }
    }
    RevisedSimplex solver(model, *lb, *ub, options);
    return solver.solve();
}

LpResult solve_lp_with(LpBackend backend, const Model& model, const std::vector<double>* lb,
                       const std::vector<double>* ub, const LpOptions& options) {
    switch (backend) {
        case LpBackend::Sparse: return solve_lp_sparse(model, lb, ub, options);
        case LpBackend::Dense: return solve_lp(model, lb, ub, options);
        case LpBackend::Textbook: return solve_lp_textbook(model, lb, ub, options);
    }
    return solve_lp(model, lb, ub, options);
}

}  // namespace p4all::ilp
