#include "ilp/presolve.hpp"

#include <algorithm>
#include <cmath>

namespace p4all::ilp {

namespace {

/// Safety slack on continuous tightenings so floating-point inference never
/// shaves a genuinely feasible point.
constexpr double kSlack = 1e-9;
/// Integrality tolerance for rounding integer bounds inward (matches the
/// solver's default int_tol).
constexpr double kIntTol = 1e-6;

struct NormRow {
    // Row normalized to Σ a_j x_j ≤ b form (Ge negated; Eq contributes one
    // of each).
    const std::vector<std::pair<int, double>>* terms;
    double sign;  // +1 as-written, −1 negated
    double b;
};

/// One tightening sweep over a normalized Le row. Returns the number of
/// bounds changed, or −1 when the row proves infeasibility.
int tighten_row(const Model& model, const NormRow& row, std::vector<double>& lb,
                std::vector<double>& ub) {
    // Minimum activity L = Σ_j min(a_j·lb_j, a_j·ub_j), tracking how many
    // terms contribute −∞: with none, every variable can be tightened; with
    // exactly one, only the variable owning it.
    double finite_min = 0.0;
    int inf_count = 0;
    int inf_var = -1;
    for (const auto& [id, c] : *row.terms) {
        const double a = row.sign * c;
        if (a == 0.0) continue;
        const std::size_t js = static_cast<std::size_t>(id);
        const double contrib = a > 0.0 ? a * lb[js] : a * ub[js];
        if (contrib == -kInfinity) {
            ++inf_count;
            inf_var = id;
        } else {
            finite_min += contrib;
        }
    }
    if (inf_count == 0 && finite_min > row.b + 1e-7) return -1;  // unreachable rhs
    if (inf_count > 1) return 0;

    int changed = 0;
    for (const auto& [id, c] : *row.terms) {
        const double a = row.sign * c;
        if (a == 0.0) continue;
        if (inf_count == 1 && id != inf_var) continue;
        const std::size_t js = static_cast<std::size_t>(id);
        const double own = a > 0.0 ? a * lb[js] : a * ub[js];
        const double rest = inf_count == 1 ? finite_min : finite_min - own;
        if (rest == -kInfinity || !std::isfinite(rest)) continue;
        const bool integral = model.var_type(id) != VarType::Continuous;
        if (a > 0.0) {
            double new_ub = (row.b - rest) / a + kSlack;
            if (integral) new_ub = std::floor(new_ub + kIntTol);
            if (new_ub < ub[js] - 1e-9) {
                ub[js] = new_ub;
                ++changed;
            }
        } else {
            double new_lb = (row.b - rest) / a - kSlack;
            if (integral) new_lb = std::ceil(new_lb - kIntTol);
            if (new_lb > lb[js] + 1e-9) {
                lb[js] = new_lb;
                ++changed;
            }
        }
    }
    return changed;
}

}  // namespace

PresolveResult presolve(const Model& model, int max_passes) {
    PresolveResult out;
    const int n = model.num_vars();
    out.lb.resize(static_cast<std::size_t>(n));
    out.ub.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
        out.lb[static_cast<std::size_t>(j)] = model.lower_bound(j);
        out.ub[static_cast<std::size_t>(j)] = model.upper_bound(j);
        // Integer model bounds may arrive fractional; round them inward once.
        if (model.var_type(j) != VarType::Continuous) {
            const std::size_t js = static_cast<std::size_t>(j);
            if (std::isfinite(out.lb[js])) out.lb[js] = std::ceil(out.lb[js] - kIntTol);
            if (std::isfinite(out.ub[js])) out.ub[js] = std::floor(out.ub[js] + kIntTol);
        }
    }

    std::vector<NormRow> rows;
    rows.reserve(model.constraints().size() * 2);
    for (const Constraint& c : model.constraints()) {
        const double b = c.rhs - c.expr.constant();
        if (c.sense == CmpSense::Le || c.sense == CmpSense::Eq) {
            rows.push_back({&c.expr.terms(), 1.0, b});
        }
        if (c.sense == CmpSense::Ge || c.sense == CmpSense::Eq) {
            rows.push_back({&c.expr.terms(), -1.0, -b});
        }
    }

    for (int pass = 0; pass < max_passes; ++pass) {
        int changed = 0;
        for (const NormRow& row : rows) {
            const int c = tighten_row(model, row, out.lb, out.ub);
            if (c < 0) {
                out.infeasible = true;
                out.infeasible_reason = "presolve: row minimum activity exceeds rhs";
                return out;
            }
            changed += c;
        }
        out.bounds_tightened += changed;
        for (int j = 0; j < n; ++j) {
            const std::size_t js = static_cast<std::size_t>(j);
            if (out.ub[js] - out.lb[js] < -1e-7) {
                out.infeasible = true;
                out.infeasible_reason =
                    "presolve: bounds crossed for variable '" + model.var_name(j) + "'";
                return out;
            }
            // A tolerance-sized inversion is an empty-looking interval from
            // rounding; snap it closed instead of carrying lb > ub into the
            // LP (which treats it as an error).
            if (out.ub[js] < out.lb[js]) out.ub[js] = out.lb[js];
        }
        if (changed == 0) break;
    }

    // Coefficient cleanup: purely structural normalization (merge duplicate
    // terms, drop exact zeros). Only rebuild the model when something
    // actually changed — the common case is a no-op with no copy.
    int dirty_rows = 0;
    for (const Constraint& c : model.constraints()) {
        LinExpr e = c.expr;
        e.normalize();
        if (e.terms() != c.expr.terms()) {
            out.coefficients_cleaned +=
                static_cast<int>(c.expr.terms().size()) - static_cast<int>(e.terms().size());
            ++dirty_rows;
        }
    }
    if (dirty_rows > 0) {
        Model m;
        for (int j = 0; j < n; ++j) {
            const Var v = m.add_var(model.var_name(j), model.var_type(j), model.lower_bound(j),
                                    model.upper_bound(j));
            m.set_branch_priority(v, model.branch_priority(j));
        }
        for (const Constraint& c : model.constraints()) {
            LinExpr e = c.expr;
            e.normalize();
            switch (c.sense) {
                case CmpSense::Le: m.add_le(std::move(e), c.rhs, c.name); break;
                case CmpSense::Ge: m.add_ge(std::move(e), c.rhs, c.name); break;
                case CmpSense::Eq: m.add_eq(std::move(e), c.rhs, c.name); break;
            }
        }
        m.set_objective(model.objective());
        out.cleaned = std::move(m);
    }
    return out;
}

}  // namespace p4all::ilp
