// Geometric-mean equilibration for the simplex standard form.
//
// Placement LPs mix O(1) utility rows with memory rows whose coefficients
// and bounds reach ~10^6 (register widths × max array sizes). Both simplex
// backends price and pivot with absolute tolerances, which is only sound
// when the matrix is roughly equilibrated: on raw netcache-scale data a
// dense tableau accumulates enough error after a few hundred pivots that
// truly-improving columns price as non-improving and the solver declares a
// premature optimum. Scaling row i by ρ_i and structural column j by s_j
// (both positive powers of two, so the scaling itself introduces **zero**
// floating-point rounding) brings every entry near 1; the solve runs on the
// scaled problem and the caller maps the result back:
//
//   x_j = s_j·ŷ_j + lb_j        (column scale changes the variable's unit)
//   y_i = ρ_i·ŷ_i               (row scale changes the dual's unit)
//   objective, reduced-cost signs, and the perturbation budget are unchanged
//   (ĉ_j = s_j·c_j, so ĉᵀŷ = cᵀy term-by-term).
//
// The scheme is the classic alternating geometric-mean pass (rows then
// columns, twice), with each factor rounded to the nearest power of two and
// the exponent clamped to ±24. It is a pure function of the constraint
// matrix — bounds and objective do not influence it — so branch-and-bound
// re-solves with tightened bounds see identical scale factors at every node.
#pragma once

#include <cmath>
#include <cstdlib>
#include <utility>
#include <vector>

namespace p4all::ilp {

struct Equilibration {
    std::vector<double> row;  // multiply row i by row[i]
    std::vector<double> col;  // multiply structural column j by col[j]
};

/// Nearest power of two to `x` (x > 0), exponent clamped to ±24.
inline double pow2_round(double x) {
    const double e = std::round(std::log2(x));
    const double clamped = e < -24.0 ? -24.0 : (e > 24.0 ? 24.0 : e);
    return std::exp2(clamped);
}

/// Computes row/column scale factors for the matrix given as per-row term
/// lists (column id, coefficient); `num_cols` is the structural column
/// count. Rows or columns with no nonzero entries keep scale 1.
inline Equilibration equilibrate(
    const std::vector<std::vector<std::pair<int, double>>>& rows, int num_cols,
    int sweeps = 2) {
    Equilibration eq;
    eq.row.assign(rows.size(), 1.0);
    eq.col.assign(static_cast<std::size_t>(num_cols), 1.0);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
        for (std::size_t i = 0; i < rows.size(); ++i) {
            double amin = 0.0, amax = 0.0;
            for (const auto& [j, a] : rows[i]) {
                const double v = std::abs(a) * eq.col[static_cast<std::size_t>(j)];
                if (v == 0.0) continue;
                if (amax == 0.0) {
                    amin = amax = v;
                } else {
                    amin = std::min(amin, v);
                    amax = std::max(amax, v);
                }
            }
            if (amax > 0.0) eq.row[i] = pow2_round(1.0 / std::sqrt(amin * amax));
        }
        // Column pass over the row-scaled entries.
        std::vector<double> cmin(static_cast<std::size_t>(num_cols), 0.0);
        std::vector<double> cmax(static_cast<std::size_t>(num_cols), 0.0);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            for (const auto& [j, a] : rows[i]) {
                const double v = std::abs(a) * eq.row[i];
                if (v == 0.0) continue;
                const std::size_t js = static_cast<std::size_t>(j);
                if (cmax[js] == 0.0) {
                    cmin[js] = cmax[js] = v;
                } else {
                    cmin[js] = std::min(cmin[js], v);
                    cmax[js] = std::max(cmax[js], v);
                }
            }
        }
        for (std::size_t j = 0; j < eq.col.size(); ++j) {
            if (cmax[j] > 0.0) eq.col[j] = pow2_round(1.0 / std::sqrt(cmin[j] * cmax[j]));
        }
    }
    return eq;
}

}  // namespace p4all::ilp
