#include "ir/elaborate.hpp"

#include <map>
#include <set>

#include "lang/parser.hpp"
#include "support/error.hpp"

namespace p4all::ir {

using lang::BinaryOp;
using lang::UnaryOp;
namespace {
/// Local shadow of support::CompileError: elaboration failures carry the
/// stable SemanticError code from the error taxonomy.
struct CompileError : support::Error {
    CompileError(support::SourceLoc loc, const std::string& msg)
        : support::Error(support::Errc::SemanticError, std::move(loc), msg) {}
    explicit CompileError(const std::string& msg)
        : support::Error(support::Errc::SemanticError, msg) {}
};
}  // namespace
using support::SourceLoc;

namespace {

/// What a bare identifier means inside an expression being evaluated to an
/// affine value: either the active iteration variable or a literal constant
/// (const-int or a concretely-unrolled loop variable).
struct NameBinding {
    bool is_iter = false;
    std::int64_t literal = 0;
};

using Env = std::map<std::string, NameBinding, std::less<>>;

class Elaborator {
public:
    Elaborator(const lang::Program& ast, const ElaborateOptions& options)
        : ast_(ast), options_(options) {}

    Program run() {
        prog_.name = options_.program_name;
        collect_declarations();
        elaborate_actions();
        flatten_flow();
        lower_assumes_and_utility();
        return std::move(prog_);
    }

private:
    // -- Pass 1: declaration tables -------------------------------------

    void collect_declarations() {
        for (const lang::Decl& d : ast_.decls) {
            const SourceLoc& loc = d.loc;
            if (const auto* s = std::get_if<lang::SymbolicDecl>(&d.node)) {
                check_fresh_name(loc, s->name);
                prog_.symbols.push_back({s->name, SymbolRole::Unused, loc});
            } else if (const auto* c = std::get_if<lang::ConstDecl>(&d.node)) {
                check_fresh_name(loc, c->name);
                consts_[c->name] = fold_const(*c->value);
            } else if (const auto* r = std::get_if<lang::RegisterDecl>(&d.node)) {
                check_fresh_name(loc, r->name);
                RegisterArray reg;
                reg.name = r->name;
                reg.width = r->width;
                reg.elems = resolve_extent(*r->elems, SymbolRole::ElementCount);
                reg.instances = r->instances
                                    ? resolve_extent(*r->instances, SymbolRole::IterationCount)
                                    : Extent::of_literal(1);
                reg.loc = loc;
                prog_.registers.push_back(std::move(reg));
            } else if (const auto* m = std::get_if<lang::MetadataDecl>(&d.node)) {
                for (const lang::FieldDecl& f : m->fields) {
                    check_fresh_name(f.loc, "meta." + f.name);
                    MetaField mf;
                    mf.name = f.name;
                    mf.width = f.width;
                    if (f.array_size) {
                        mf.array = resolve_extent(*f.array_size, SymbolRole::IterationCount);
                    }
                    mf.loc = f.loc;
                    prog_.meta_fields.push_back(std::move(mf));
                }
            } else if (const auto* p = std::get_if<lang::PacketDecl>(&d.node)) {
                for (const lang::FieldDecl& f : p->fields) {
                    check_fresh_name(f.loc, "pkt." + f.name);
                    prog_.packet_fields.push_back({f.name, f.width, f.loc});
                }
            } else if (const auto* a = std::get_if<lang::ActionDecl>(&d.node)) {
                check_fresh_name(loc, a->name);
                action_decls_[a->name] = a;
                action_locs_[a->name] = loc;
            } else if (const auto* c2 = std::get_if<lang::ControlDecl>(&d.node)) {
                check_fresh_name(loc, c2->name);
                control_decls_[c2->name] = c2;
            }
            // AssumeDecl / OptimizeDecl handled in a later pass.
        }
    }

    void check_fresh_name(const SourceLoc& loc, const std::string& name) {
        if (!seen_names_.insert(name).second) {
            throw CompileError(loc, "duplicate declaration of '" + name + "'");
        }
    }

    /// Resolves a size expression to a literal or a symbolic value, tagging
    /// the symbol's role and diagnosing role conflicts.
    Extent resolve_extent(const lang::Expr& e, SymbolRole role) {
        if (const auto* ref = std::get_if<lang::FieldRef>(&e.node);
            ref != nullptr && ref->path.size() == 1 && !ref->index) {
            const std::string& name = ref->path[0];
            if (const auto it = consts_.find(name); it != consts_.end()) {
                return Extent::of_literal(it->second);
            }
            const SymbolId sym = prog_.find_symbol(name);
            if (sym != kNoId) {
                assign_role(e.loc, sym, role);
                return Extent::of_symbol(sym);
            }
        }
        return Extent::of_literal(fold_const(e));
    }

    void assign_role(const SourceLoc& loc, SymbolId sym, SymbolRole role) {
        SymbolRole& current = prog_.symbols[static_cast<std::size_t>(sym)].role;
        if (current == SymbolRole::Unused) {
            current = role;
        } else if (current != role) {
            throw CompileError(
                loc, "symbolic value '" + prog_.symbol(sym).name +
                         "' is used both as an iteration count (loop bound / register "
                         "instances / metadata array size) and as a register element count; "
                         "split it into two symbolic values");
        }
    }

    /// Folds an expression of integer literals and declared consts.
    std::int64_t fold_const(const lang::Expr& e) {
        if (const auto* i = std::get_if<lang::IntLit>(&e.node)) return i->value;
        if (const auto* ref = std::get_if<lang::FieldRef>(&e.node)) {
            if (ref->path.size() == 1 && !ref->index) {
                if (const auto it = consts_.find(ref->path[0]); it != consts_.end()) {
                    return it->second;
                }
            }
            throw CompileError(e.loc, "'" + ref->dotted() + "' is not a compile-time constant");
        }
        if (const auto* u = std::get_if<lang::Unary>(&e.node)) {
            if (u->op == UnaryOp::Neg) return -fold_const(*u->operand);
            throw CompileError(e.loc, "operator not allowed in constant expression");
        }
        if (const auto* b = std::get_if<lang::Binary>(&e.node)) {
            const std::int64_t l = fold_const(*b->lhs);
            const std::int64_t r = fold_const(*b->rhs);
            switch (b->op) {
                case BinaryOp::Add: return l + r;
                case BinaryOp::Sub: return l - r;
                case BinaryOp::Mul: return l * r;
                case BinaryOp::Div:
                    if (r == 0) throw CompileError(e.loc, "division by zero");
                    return l / r;
                case BinaryOp::Mod:
                    if (r == 0) throw CompileError(e.loc, "modulo by zero");
                    return l % r;
                default:
                    throw CompileError(e.loc, "operator not allowed in constant expression");
            }
        }
        throw CompileError(e.loc, "expected a compile-time constant expression");
    }

    // -- Affine / value evaluation ---------------------------------------

    Affine eval_affine(const lang::Expr& e, const Env& env) {
        if (const auto* i = std::get_if<lang::IntLit>(&e.node)) return Affine::literal(i->value);
        if (const auto* ref = std::get_if<lang::FieldRef>(&e.node)) {
            if (ref->path.size() == 1 && !ref->index) {
                const std::string& name = ref->path[0];
                if (const auto it = env.find(name); it != env.end()) {
                    return it->second.is_iter ? Affine::iter() : Affine::literal(it->second.literal);
                }
                if (const auto it = consts_.find(name); it != consts_.end()) {
                    return Affine::literal(it->second);
                }
                if (prog_.find_symbol(name) != kNoId) {
                    throw CompileError(e.loc,
                                       "symbolic value '" + name +
                                           "' cannot be used as a run-time operand (sizes are "
                                           "compile-time only; use a register reference for hash "
                                           "ranges)");
                }
            }
            throw CompileError(e.loc, "'" + ref->dotted() + "' is not an integer expression here");
        }
        if (const auto* u = std::get_if<lang::Unary>(&e.node)) {
            if (u->op == UnaryOp::Neg) {
                Affine a = eval_affine(*u->operand, env);
                a.coeff_iter = -a.coeff_iter;
                a.constant = -a.constant;
                return a;
            }
            throw CompileError(e.loc, "'!' is not valid in an integer expression");
        }
        if (const auto* b = std::get_if<lang::Binary>(&e.node)) {
            const Affine l = eval_affine(*b->lhs, env);
            const Affine r = eval_affine(*b->rhs, env);
            switch (b->op) {
                case BinaryOp::Add: return {l.coeff_iter + r.coeff_iter, l.constant + r.constant};
                case BinaryOp::Sub: return {l.coeff_iter - r.coeff_iter, l.constant - r.constant};
                case BinaryOp::Mul:
                    if (!l.is_literal() && !r.is_literal()) {
                        throw CompileError(e.loc,
                                           "index expressions must be affine in the iteration "
                                           "variable (i*i is not allowed)");
                    }
                    if (l.is_literal()) return {l.constant * r.coeff_iter, l.constant * r.constant};
                    return {l.coeff_iter * r.constant, l.constant * r.constant};
                case BinaryOp::Div:
                case BinaryOp::Mod:
                    if (!l.is_literal() || !r.is_literal()) {
                        throw CompileError(e.loc,
                                           "division in index expressions requires constants");
                    }
                    if (r.constant == 0) throw CompileError(e.loc, "division by zero");
                    return Affine::literal(b->op == BinaryOp::Div ? l.constant / r.constant
                                                                  : l.constant % r.constant);
                default:
                    throw CompileError(e.loc, "comparison not valid in an integer expression");
            }
        }
        throw CompileError(e.loc, "expected an integer expression");
    }

    Value eval_value(const lang::Expr& e, const Env& env) {
        if (const auto* ref = std::get_if<lang::FieldRef>(&e.node)) {
            if (ref->path.size() == 2 && ref->path[0] == "meta") return meta_ref(e.loc, *ref, env);
            if (ref->path.size() == 2 && ref->path[0] == "pkt") {
                const PacketFieldId f = prog_.find_packet(ref->path[1]);
                if (f == kNoId) {
                    throw CompileError(e.loc, "unknown packet field 'pkt." + ref->path[1] + "'");
                }
                if (ref->index) {
                    throw CompileError(e.loc, "packet fields cannot be indexed");
                }
                return PacketRef{f};
            }
            if (ref->path.size() == 1 && prog_.find_register(ref->path[0]) != kNoId) {
                return reg_ref_value(e.loc, *ref, env);
            }
        }
        return eval_affine(e, env);
    }

    MetaRef meta_ref(const SourceLoc& loc, const lang::FieldRef& ref, const Env& env) {
        const MetaFieldId f = prog_.find_meta(ref.path[1]);
        if (f == kNoId) throw CompileError(loc, "unknown metadata field 'meta." + ref.path[1] + "'");
        const MetaField& field = prog_.meta(f);
        MetaRef out;
        out.field = f;
        if (field.is_array()) {
            if (!ref.index) {
                throw CompileError(loc, "metadata array 'meta." + field.name +
                                            "' must be indexed");
            }
            out.index = eval_affine(*ref.index, env);
        } else {
            if (ref.index) {
                throw CompileError(loc, "metadata field 'meta." + field.name +
                                            "' is scalar and cannot be indexed");
            }
            out.index = Affine::literal(0);
        }
        return out;
    }

    Value reg_ref_value(const SourceLoc& loc, const lang::FieldRef& ref, const Env& env) {
        const RegisterId r = prog_.find_register(ref.path[0]);
        const RegisterArray& reg = prog_.reg(r);
        RegRef out;
        out.reg = r;
        if (ref.index) {
            out.instance = eval_affine(*ref.index, env);
        } else {
            if (reg.instances.symbolic() || reg.instances.literal != 1) {
                throw CompileError(loc, "register matrix '" + reg.name +
                                            "' must be indexed with an instance");
            }
            out.instance = Affine::literal(0);
        }
        return out;
    }

    // -- Pass 2: actions --------------------------------------------------

    void elaborate_actions() {
        for (const auto& [name, decl] : action_decls_) {
            Action a;
            a.name = name;
            a.has_iter_param = decl->iter_param.has_value();
            a.loc = action_locs_[name];
            Env env;
            if (a.has_iter_param) env[*decl->iter_param] = NameBinding{true, 0};
            for (const lang::StmtPtr& s : decl->body.stmts) {
                const auto* call = std::get_if<lang::CallStmt>(&s->node);
                if (call == nullptr) {
                    throw CompileError(s->loc,
                                       "action bodies may contain only primitive operations "
                                       "(guards belong in the control's apply block)");
                }
                a.ops.push_back(elaborate_prim(s->loc, *call, env));
            }
            action_ids_[name] = static_cast<ActionId>(prog_.actions.size());
            prog_.actions.push_back(std::move(a));
        }
    }

    PrimOp elaborate_prim(const SourceLoc& loc, const lang::CallStmt& call, const Env& env) {
        static const std::map<std::string_view, PrimKind> kPrims = {
            {"hash", PrimKind::Hash},         {"reg_add", PrimKind::RegAdd},
            {"reg_read", PrimKind::RegRead},  {"reg_write", PrimKind::RegWrite},
            {"reg_min", PrimKind::RegMin},    {"reg_max", PrimKind::RegMax},
            {"set", PrimKind::Set},           {"add", PrimKind::Add},
            {"sub", PrimKind::Sub},           {"min", PrimKind::Min},
            {"max", PrimKind::Max},
        };
        const auto it = kPrims.find(call.name);
        if (it == kPrims.end()) {
            throw CompileError(loc, "unknown primitive or action '" + call.name + "'");
        }
        if (call.iter_arg) {
            throw CompileError(loc, "primitive '" + call.name + "' does not take an iteration "
                                    "argument");
        }
        const PrimKind kind = it->second;
        PrimOp op;
        op.kind = kind;
        op.loc = loc;

        const auto arity_error = [&](const char* signature) -> CompileError {
            return CompileError(loc, std::string("wrong arguments for ") + call.name +
                                         "; expected " + signature);
        };
        const auto arg_meta = [&](std::size_t i) {
            const auto* ref = std::get_if<lang::FieldRef>(&call.args[i]->node);
            if (ref == nullptr || ref->path.size() != 2 || ref->path[0] != "meta") {
                throw CompileError(call.args[i]->loc,
                                   "argument " + std::to_string(i + 1) + " of " + call.name +
                                       " must be a metadata field");
            }
            return meta_ref(call.args[i]->loc, *ref, env);
        };
        const auto arg_reg = [&](std::size_t i) {
            const Value v = eval_value(*call.args[i], env);
            const auto* r = std::get_if<RegRef>(&v);
            if (r == nullptr) {
                throw CompileError(call.args[i]->loc,
                                   "argument " + std::to_string(i + 1) + " of " + call.name +
                                       " must be a register (instance) reference");
            }
            return *r;
        };
        const auto arg_value = [&](std::size_t i) { return eval_value(*call.args[i], env); };

        switch (kind) {
            case PrimKind::Hash: {
                // hash(dst, seed, src..., modulus)
                if (call.args.size() < 4) throw arity_error("hash(dst, seed, src..., modulus)");
                op.dst = arg_meta(0);
                op.seed = eval_affine(*call.args[1], env);
                for (std::size_t i = 2; i + 1 < call.args.size(); ++i) {
                    op.srcs.push_back(arg_value(i));
                }
                const Value mod = arg_value(call.args.size() - 1);
                if (const auto* r = std::get_if<RegRef>(&mod)) {
                    op.modulus = *r;
                } else if (const auto* a = std::get_if<Affine>(&mod); a != nullptr && a->is_literal()) {
                    if (a->constant <= 0) {
                        throw CompileError(loc, "hash modulus must be positive");
                    }
                    op.modulus = a->constant;
                } else {
                    throw CompileError(loc,
                                       "hash modulus must be a register reference or a positive "
                                       "constant");
                }
                break;
            }
            case PrimKind::RegAdd:
            case PrimKind::RegMin:
            case PrimKind::RegMax: {
                // reg_op(reg, idx, src_or_amount [, dst])
                if (call.args.size() != 3 && call.args.size() != 4) {
                    throw arity_error("(reg, index, value[, dst])");
                }
                op.reg = arg_reg(0);
                op.reg_index = arg_value(1);
                op.srcs.push_back(arg_value(2));
                if (call.args.size() == 4) op.dst = arg_meta(3);
                break;
            }
            case PrimKind::RegRead: {
                if (call.args.size() != 3) throw arity_error("reg_read(reg, index, dst)");
                op.reg = arg_reg(0);
                op.reg_index = arg_value(1);
                op.dst = arg_meta(2);
                break;
            }
            case PrimKind::RegWrite: {
                if (call.args.size() != 3) throw arity_error("reg_write(reg, index, src)");
                op.reg = arg_reg(0);
                op.reg_index = arg_value(1);
                op.srcs.push_back(arg_value(2));
                break;
            }
            case PrimKind::Set:
            case PrimKind::Min:
            case PrimKind::Max: {
                if (call.args.size() != 2) throw arity_error("(dst, src)");
                op.dst = arg_meta(0);
                op.srcs.push_back(arg_value(1));
                break;
            }
            case PrimKind::Add:
            case PrimKind::Sub: {
                if (call.args.size() != 3) throw arity_error("(dst, a, b)");
                op.dst = arg_meta(0);
                op.srcs.push_back(arg_value(1));
                op.srcs.push_back(arg_value(2));
                break;
            }
        }
        return op;
    }

    // -- Pass 3: control-flow flattening ----------------------------------

    struct FlowContext {
        SymbolId loop_bound = kNoId;
        std::string loop_var;
        std::vector<Cond> guards;
        Env env;
    };

    void flatten_flow() {
        const lang::ControlDecl* entry = lookup_control(options_.entry_control);
        FlowContext ctx;
        std::set<std::string> applying;
        flatten_block(entry->apply, ctx, applying);
    }

    const lang::ControlDecl* lookup_control(const std::string& name) {
        const auto it = control_decls_.find(name);
        if (it == control_decls_.end()) {
            throw CompileError("control '" + name + "' not found (the entry control must be "
                               "named '" + options_.entry_control + "')");
        }
        return it->second;
    }

    void flatten_block(const lang::Block& block, const FlowContext& ctx,
                       std::set<std::string>& applying) {
        for (const lang::StmtPtr& s : block.stmts) {
            flatten_stmt(*s, ctx, applying);
        }
    }

    void flatten_stmt(const lang::Stmt& s, const FlowContext& ctx,
                      std::set<std::string>& applying) {
        if (const auto* apply = std::get_if<lang::ApplyStmt>(&s.node)) {
            if (!applying.insert(apply->control).second) {
                throw CompileError(s.loc, "recursive control application of '" + apply->control +
                                              "'");
            }
            const lang::ControlDecl* c = lookup_control(apply->control);
            flatten_block(c->apply, ctx, applying);
            applying.erase(apply->control);
            return;
        }
        if (const auto* loop = std::get_if<lang::ForStmt>(&s.node)) {
            flatten_for(s.loc, *loop, ctx, applying);
            return;
        }
        if (const auto* branch = std::get_if<lang::IfStmt>(&s.node)) {
            FlowContext then_ctx = ctx;
            then_ctx.guards.push_back(lower_cond(*branch->cond, ctx.env));
            flatten_block(branch->then_block, then_ctx, applying);
            if (!branch->else_block.stmts.empty()) {
                FlowContext else_ctx = ctx;
                Cond negated = lower_cond(*branch->cond, ctx.env);
                negated.op = negate(negated.op);
                else_ctx.guards.push_back(negated);
                flatten_block(branch->else_block, else_ctx, applying);
            }
            return;
        }
        const auto& call = std::get<lang::CallStmt>(s.node);
        flatten_call(s.loc, call, ctx);
    }

    void flatten_for(const SourceLoc& loc, const lang::ForStmt& loop, const FlowContext& ctx,
                     std::set<std::string>& applying) {
        // Concrete bound (const int): unroll in place.
        if (const auto it = consts_.find(loop.bound); it != consts_.end()) {
            for (std::int64_t k = 0; k < it->second; ++k) {
                FlowContext inner = ctx;
                inner.env[loop.var] = NameBinding{false, k};
                flatten_block(loop.body, inner, applying);
            }
            return;
        }
        const SymbolId bound = prog_.find_symbol(loop.bound);
        if (bound == kNoId) {
            throw CompileError(loc, "loop bound '" + loop.bound +
                                        "' is neither a symbolic value nor a const int");
        }
        if (ctx.loop_bound != kNoId) {
            throw CompileError(loc,
                               "nested symbolic loops are not supported; restructure the inner "
                               "loop as a separate module instantiation (concrete-bound loops "
                               "may nest freely)");
        }
        assign_role(loc, bound, SymbolRole::IterationCount);
        FlowContext inner = ctx;
        inner.loop_bound = bound;
        inner.loop_var = loop.var;
        inner.env[loop.var] = NameBinding{true, 0};
        flatten_block(loop.body, inner, applying);
    }

    void flatten_call(const SourceLoc& loc, const lang::CallStmt& call, const FlowContext& ctx) {
        CallSite site;
        site.loop_bound = ctx.loop_bound;
        site.guards = ctx.guards;
        site.seq = static_cast<int>(prog_.flow.size());
        site.loc = loc;

        const auto action_it = action_ids_.find(call.name);
        if (action_it != action_ids_.end()) {
            if (!call.args.empty()) {
                throw CompileError(loc, "action '" + call.name + "' takes no value arguments");
            }
            site.action = action_it->second;
            const Action& a = prog_.action(site.action);
            if (a.has_iter_param) {
                if (!call.iter_arg) {
                    throw CompileError(loc, "action '" + call.name +
                                                "' requires an iteration argument [i]");
                }
                site.iter_arg = eval_affine(*call.iter_arg, ctx.env);
            } else if (call.iter_arg) {
                throw CompileError(loc, "action '" + call.name +
                                            "' does not take an iteration argument");
            }
            prog_.flow.push_back(std::move(site));
            return;
        }

        // A primitive invoked directly inside a control: wrap it in a
        // synthesized single-op action.
        lang::CallStmt copy;
        copy.name = call.name;
        for (const lang::ExprPtr& a : call.args) copy.args.push_back(lang::clone_expr(*a));
        Action wrapper;
        wrapper.name = "__inline_" + std::to_string(prog_.flow.size()) + "_" + call.name;
        wrapper.has_iter_param = ctx.loop_bound != kNoId;
        wrapper.loc = loc;
        wrapper.ops.push_back(elaborate_prim(loc, copy, ctx.env));
        site.action = static_cast<ActionId>(prog_.actions.size());
        site.iter_arg = wrapper.has_iter_param ? Affine::iter() : Affine::literal(0);
        prog_.actions.push_back(std::move(wrapper));
        prog_.flow.push_back(std::move(site));
    }

    Cond lower_cond(const lang::Expr& e, const Env& env) {
        const auto* b = std::get_if<lang::Binary>(&e.node);
        if (b == nullptr) {
            throw CompileError(e.loc, "guard must be a comparison (lhs OP rhs)");
        }
        Cond c;
        c.loc = e.loc;
        switch (b->op) {
            case BinaryOp::Lt: c.op = CmpOp::Lt; break;
            case BinaryOp::Le: c.op = CmpOp::Le; break;
            case BinaryOp::Gt: c.op = CmpOp::Gt; break;
            case BinaryOp::Ge: c.op = CmpOp::Ge; break;
            case BinaryOp::Eq: c.op = CmpOp::Eq; break;
            case BinaryOp::Ne: c.op = CmpOp::Ne; break;
            default:
                throw CompileError(e.loc,
                                   "guard must be a single comparison (use nested ifs for "
                                   "conjunction)");
        }
        c.lhs = eval_value(*b->lhs, env);
        c.rhs = eval_value(*b->rhs, env);
        if (std::holds_alternative<RegRef>(c.lhs) || std::holds_alternative<RegRef>(c.rhs)) {
            throw CompileError(e.loc, "guards cannot reference register state directly; "
                                      "read it into metadata first");
        }
        return c;
    }

    // -- Pass 4: assumes + utility ---------------------------------------

    void lower_assumes_and_utility() {
        bool have_optimize = false;
        for (const lang::Decl& d : ast_.decls) {
            if (const auto* a = std::get_if<lang::AssumeDecl>(&d.node)) {
                lower_assume(*a->cond);
            } else if (const auto* o = std::get_if<lang::OptimizeDecl>(&d.node)) {
                if (have_optimize) {
                    throw CompileError(d.loc, "multiple optimize declarations");
                }
                have_optimize = true;
                prog_.utility = lower_poly(*o->objective);
                validate_quadratic_terms(d.loc, prog_.utility);
            }
        }
    }

    void lower_assume(const lang::Expr& e) {
        if (const auto* b = std::get_if<lang::Binary>(&e.node); b != nullptr && b->op == BinaryOp::And) {
            lower_assume(*b->lhs);
            lower_assume(*b->rhs);
            return;
        }
        const auto* b = std::get_if<lang::Binary>(&e.node);
        if (b == nullptr) {
            throw CompileError(e.loc, "assume must be a conjunction of comparisons");
        }
        PolyConstraint pc;
        Polynomial lhs = lower_poly(*b->lhs);
        const Polynomial rhs = lower_poly(*b->rhs);
        lhs -= rhs;  // constraint on (lhs - rhs)
        switch (b->op) {
            case BinaryOp::Le: pc.op = CmpOp::Le; break;
            case BinaryOp::Ge: pc.op = CmpOp::Ge; break;
            case BinaryOp::Eq: pc.op = CmpOp::Eq; break;
            case BinaryOp::Lt:
                // Integer semantics: x < y  ⇔  x - y + 1 ≤ 0.
                lhs += Polynomial(1.0);
                pc.op = CmpOp::Le;
                break;
            case BinaryOp::Gt:
                lhs -= Polynomial(1.0);
                pc.op = CmpOp::Ge;
                break;
            default:
                throw CompileError(e.loc, "assume supports comparisons joined by && only");
        }
        // Normalize Ge to Le by negation.
        if (pc.op == CmpOp::Ge) {
            lhs.negate();
            pc.op = CmpOp::Le;
        }
        pc.poly = std::move(lhs);
        validate_quadratic_terms(e.loc, pc.poly);
        prog_.assumes.push_back(std::move(pc));
    }

    Polynomial lower_poly(const lang::Expr& e) {
        if (const auto* i = std::get_if<lang::IntLit>(&e.node)) {
            return Polynomial(static_cast<double>(i->value));
        }
        if (const auto* f = std::get_if<lang::FloatLit>(&e.node)) {
            return Polynomial(f->value);
        }
        if (const auto* r = std::get_if<lang::FieldRef>(&e.node)) {
            if (r->path.size() == 1 && !r->index) {
                if (const auto it = consts_.find(r->path[0]); it != consts_.end()) {
                    return Polynomial(static_cast<double>(it->second));
                }
                const SymbolId s = prog_.find_symbol(r->path[0]);
                if (s != kNoId) return Polynomial::var(s);
            }
            throw CompileError(e.loc, "'" + r->dotted() +
                                          "' is not a symbolic value or constant");
        }
        if (const auto* u = std::get_if<lang::Unary>(&e.node)) {
            if (u->op != UnaryOp::Neg) {
                throw CompileError(e.loc, "'!' is not valid in a symbolic expression");
            }
            Polynomial p = lower_poly(*u->operand);
            p.negate();
            return p;
        }
        const auto& b = std::get<lang::Binary>(e.node);
        Polynomial l = lower_poly(*b.lhs);
        const Polynomial r = lower_poly(*b.rhs);
        switch (b.op) {
            case BinaryOp::Add: l += r; return l;
            case BinaryOp::Sub: l -= r; return l;
            case BinaryOp::Mul:
                try {
                    return l.multiply(r);
                } catch (const CompileError& err) {
                    throw CompileError(e.loc, err.what());
                }
            case BinaryOp::Div:
                if (!r.is_constant()) {
                    throw CompileError(e.loc, "division by a symbolic value is not supported");
                }
                return l.divide_by_constant(r.constant());
            default:
                throw CompileError(e.loc, "comparison nested inside arithmetic expression");
        }
    }

    /// Quadratic terms must denote register-matrix sizes: instances ×
    /// elements of some declared register matrix (the paper's rows*cols).
    void validate_quadratic_terms(const SourceLoc& loc, const Polynomial& p) {
        for (const PolyTerm& t : p.terms()) {
            if (t.degree() < 2) continue;
            bool matched = false;
            for (const RegisterArray& r : prog_.registers) {
                if (!r.elems.symbolic() || !r.instances.symbolic()) continue;
                const SymbolId lo = std::min(r.elems.sym, r.instances.sym);
                const SymbolId hi = std::max(r.elems.sym, r.instances.sym);
                if (lo == t.a && hi == t.b) {
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                throw CompileError(
                    loc, "product '" + prog_.symbol(t.a).name + " * " + prog_.symbol(t.b).name +
                             "' does not correspond to any register matrix (instances × "
                             "elements); only such products are expressible in the ILP");
            }
        }
    }

    const lang::Program& ast_;
    const ElaborateOptions& options_;
    Program prog_;

    std::map<std::string, std::int64_t, std::less<>> consts_;
    std::map<std::string, const lang::ActionDecl*, std::less<>> action_decls_;
    std::map<std::string, SourceLoc, std::less<>> action_locs_;
    std::map<std::string, const lang::ControlDecl*, std::less<>> control_decls_;
    std::map<std::string, ActionId, std::less<>> action_ids_;
    std::set<std::string> seen_names_;
};

}  // namespace

Program elaborate(const lang::Program& ast, const ElaborateOptions& options) {
    return Elaborator(ast, options).run();
}

Program elaborate_source(std::string_view source, const ElaborateOptions& options) {
    const lang::Program ast = lang::parse(source, options.program_name + ".p4all");
    return elaborate(ast, options);
}

}  // namespace p4all::ir
