// The elaborated P4All program representation.
//
// Elaboration (elaborate.hpp) lowers the parsed AST into this table-based
// IR: symbolic variables with inferred roles, register matrices, metadata
// fields, actions as primitive-op lists, and a flattened ingress flow of
// call sites. The dependency analysis, the ILP generator, the code
// generator, and the simulator all operate on this representation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/linexpr.hpp"
#include "ir/types.hpp"

namespace p4all::ir {

/// How a symbolic value is used. Roles are inferred during elaboration and
/// must be consistent: a value that bounds loops / counts register instances
/// / sizes metadata arrays is an IterationCount; a value that sizes the
/// element dimension of register arrays is an ElementCount. The ILP treats
/// the two differently (unrolled binary indicators vs. an integer size var).
enum class SymbolRole { Unused, IterationCount, ElementCount };

struct SymbolicVar {
    std::string name;
    SymbolRole role = SymbolRole::Unused;
    support::SourceLoc loc;  // declaration site
};

/// Either a literal size or a reference to a symbolic value.
struct Extent {
    SymbolId sym = kNoId;          // kNoId ⇒ concrete
    std::int64_t literal = 1;

    [[nodiscard]] bool symbolic() const noexcept { return sym != kNoId; }
    [[nodiscard]] static Extent of_literal(std::int64_t v) noexcept { return {kNoId, v}; }
    [[nodiscard]] static Extent of_symbol(SymbolId s) noexcept { return {s, 0}; }
};

/// An array of register arrays ("register matrix"): `instances` rows, each
/// with `elems` registers of `width` bits. A plain register array has
/// concrete instances == 1.
struct RegisterArray {
    std::string name;
    int width = 32;
    Extent elems;
    Extent instances;
    support::SourceLoc loc;  // declaration site
};

/// A metadata field; `array` non-trivial makes it a symbolic metadata array
/// with one element per loop iteration.
struct MetaField {
    std::string name;
    int width = 32;
    std::optional<Extent> array;  // disengaged ⇒ scalar
    support::SourceLoc loc;       // declaration site

    [[nodiscard]] bool is_array() const noexcept { return array.has_value(); }
};

struct PacketField {
    std::string name;
    int width = 32;
    support::SourceLoc loc;  // declaration site
};

/// An action: a named, atomic bundle of primitive operations. On PISA all
/// ops of one action instance execute in a single stage (intra-action
/// dataflow is same-stage forwarding); its ALU cost is the sum of its ops'.
struct Action {
    std::string name;
    bool has_iter_param = false;
    std::vector<PrimOp> ops;
    support::SourceLoc loc;  // declaration site
};

/// One action invocation in the flattened ingress flow.
///
/// `loop_bound != kNoId` means the call sits inside `for (i < bound)`; the
/// operands of the action instance are affine in i. `guards` is the
/// conjunction of enclosing `if` conditions. `seq` is program order and
/// breaks ties when classifying dependence edges.
struct CallSite {
    ActionId action = kNoId;
    SymbolId loop_bound = kNoId;
    Affine iter_arg;            // argument bound to the action's iteration param
    std::vector<Cond> guards;
    int seq = 0;
    support::SourceLoc loc;     // the `apply` statement

    [[nodiscard]] bool elastic() const noexcept { return loop_bound != kNoId; }
};

/// The elaborated program.
struct Program {
    std::string name = "program";

    std::vector<SymbolicVar> symbols;
    std::vector<RegisterArray> registers;
    std::vector<MetaField> meta_fields;
    std::vector<PacketField> packet_fields;
    std::vector<Action> actions;
    std::vector<CallSite> flow;
    std::vector<PolyConstraint> assumes;
    Polynomial utility;

    /// PHV bits consumed by inelastic state: all packet fields plus scalar
    /// metadata (the paper's P_fixed).
    [[nodiscard]] int fixed_phv_bits() const noexcept;

    [[nodiscard]] SymbolId find_symbol(std::string_view name) const noexcept;
    [[nodiscard]] RegisterId find_register(std::string_view name) const noexcept;
    [[nodiscard]] MetaFieldId find_meta(std::string_view name) const noexcept;
    [[nodiscard]] PacketFieldId find_packet(std::string_view name) const noexcept;
    [[nodiscard]] ActionId find_action(std::string_view name) const noexcept;

    [[nodiscard]] const SymbolicVar& symbol(SymbolId id) const {
        return symbols.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] const RegisterArray& reg(RegisterId id) const {
        return registers.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] const MetaField& meta(MetaFieldId id) const {
        return meta_fields.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] const PacketField& packet(PacketFieldId id) const {
        return packet_fields.at(static_cast<std::size_t>(id));
    }
    [[nodiscard]] const Action& action(ActionId id) const {
        return actions.at(static_cast<std::size_t>(id));
    }

    /// All symbolic values with IterationCount role (loop bounds).
    [[nodiscard]] std::vector<SymbolId> iteration_symbols() const;

    /// Human-readable dump for debugging and golden tests.
    [[nodiscard]] std::string dump() const;
};

/// A concrete assignment of every symbolic value, indexed by SymbolId.
using Assignment = std::vector<std::int64_t>;

/// Checks `assumes` under `assignment` (used by tests and the greedy
/// backend). Returns true if every constraint holds.
[[nodiscard]] bool satisfies_assumes(const Program& prog, const Assignment& assignment);

}  // namespace p4all::ir
