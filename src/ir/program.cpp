#include "ir/program.hpp"

#include <cmath>

namespace p4all::ir {

const char* prim_kind_name(PrimKind kind) noexcept {
    switch (kind) {
        case PrimKind::Hash: return "hash";
        case PrimKind::RegAdd: return "reg_add";
        case PrimKind::RegRead: return "reg_read";
        case PrimKind::RegWrite: return "reg_write";
        case PrimKind::RegMin: return "reg_min";
        case PrimKind::RegMax: return "reg_max";
        case PrimKind::Set: return "set";
        case PrimKind::Add: return "add";
        case PrimKind::Sub: return "sub";
        case PrimKind::Min: return "min";
        case PrimKind::Max: return "max";
    }
    return "?";
}

bool is_commutative_update(PrimKind kind) noexcept {
    return kind == PrimKind::Min || kind == PrimKind::Max;
}

const char* cmp_op_spelling(CmpOp op) noexcept {
    switch (op) {
        case CmpOp::Lt: return "<";
        case CmpOp::Le: return "<=";
        case CmpOp::Gt: return ">";
        case CmpOp::Ge: return ">=";
        case CmpOp::Eq: return "==";
        case CmpOp::Ne: return "!=";
    }
    return "?";
}

CmpOp negate(CmpOp op) noexcept {
    switch (op) {
        case CmpOp::Lt: return CmpOp::Ge;
        case CmpOp::Le: return CmpOp::Gt;
        case CmpOp::Gt: return CmpOp::Le;
        case CmpOp::Ge: return CmpOp::Lt;
        case CmpOp::Eq: return CmpOp::Ne;
        case CmpOp::Ne: return CmpOp::Eq;
    }
    return CmpOp::Eq;
}

int Program::fixed_phv_bits() const noexcept {
    int bits = 0;
    for (const PacketField& f : packet_fields) bits += f.width;
    for (const MetaField& f : meta_fields) {
        if (!f.is_array()) bits += f.width;
        // Concrete (non-symbolic) metadata arrays are also fixed PHV.
        else if (!f.array->symbolic()) bits += f.width * static_cast<int>(f.array->literal);
    }
    return bits;
}

namespace {
template <typename T>
int find_by_name(const std::vector<T>& table, std::string_view name) noexcept {
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].name == name) return static_cast<int>(i);
    }
    return kNoId;
}
}  // namespace

SymbolId Program::find_symbol(std::string_view n) const noexcept { return find_by_name(symbols, n); }
RegisterId Program::find_register(std::string_view n) const noexcept {
    return find_by_name(registers, n);
}
MetaFieldId Program::find_meta(std::string_view n) const noexcept {
    return find_by_name(meta_fields, n);
}
PacketFieldId Program::find_packet(std::string_view n) const noexcept {
    return find_by_name(packet_fields, n);
}
ActionId Program::find_action(std::string_view n) const noexcept { return find_by_name(actions, n); }

std::vector<SymbolId> Program::iteration_symbols() const {
    std::vector<SymbolId> out;
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        if (symbols[i].role == SymbolRole::IterationCount) out.push_back(static_cast<int>(i));
    }
    return out;
}

namespace {
std::string extent_str(const Program& p, const Extent& e) {
    return e.symbolic() ? p.symbol(e.sym).name : std::to_string(e.literal);
}
}  // namespace

std::string Program::dump() const {
    std::string out = "program " + name + "\n";
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        out += "  symbolic s" + std::to_string(i) + " " + symbols[i].name + " role=";
        switch (symbols[i].role) {
            case SymbolRole::Unused: out += "unused"; break;
            case SymbolRole::IterationCount: out += "iteration"; break;
            case SymbolRole::ElementCount: out += "element"; break;
        }
        out += "\n";
    }
    for (const RegisterArray& r : registers) {
        out += "  register " + r.name + " width=" + std::to_string(r.width) + " elems=" +
               extent_str(*this, r.elems) + " instances=" + extent_str(*this, r.instances) + "\n";
    }
    for (const MetaField& f : meta_fields) {
        out += "  meta " + f.name + " width=" + std::to_string(f.width);
        if (f.is_array()) out += " array=" + extent_str(*this, *f.array);
        out += "\n";
    }
    for (const PacketField& f : packet_fields) {
        out += "  packet " + f.name + " width=" + std::to_string(f.width) + "\n";
    }
    for (const Action& a : actions) {
        out += "  action " + a.name + " ops=" + std::to_string(a.ops.size()) + "\n";
    }
    for (const CallSite& c : flow) {
        out += "  call " + action(c.action).name;
        if (c.elastic()) out += " in-loop-over " + symbol(c.loop_bound).name;
        if (!c.guards.empty()) out += " guards=" + std::to_string(c.guards.size());
        out += "\n";
    }
    for (const PolyConstraint& pc : assumes) out += "  assume " + pc.to_string() + "\n";
    out += "  optimize " + utility.to_string() + "\n";
    return out;
}

bool satisfies_assumes(const Program& prog, const Assignment& assignment) {
    for (const PolyConstraint& pc : prog.assumes) {
        const double v = pc.poly.evaluate(assignment);
        bool ok = true;
        switch (pc.op) {
            case CmpOp::Le: ok = v <= 1e-9; break;
            case CmpOp::Ge: ok = v >= -1e-9; break;
            case CmpOp::Eq: ok = std::abs(v) <= 1e-9; break;
            case CmpOp::Lt: ok = v < 0; break;
            case CmpOp::Gt: ok = v > 0; break;
            case CmpOp::Ne: ok = std::abs(v) > 1e-9; break;
        }
        if (!ok) return false;
    }
    return true;
}

}  // namespace p4all::ir
