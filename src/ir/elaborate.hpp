// Elaboration: lowers a parsed P4All AST to the typed IR.
//
// Elaboration performs name resolution, constant folding, symbolic-role
// inference, primitive signature checking, control-flow flattening (inlining
// control applies, unrolling concrete loops, collecting `if` guards), and
// the lowering of `assume`/`optimize` expressions to degree-≤2 polynomials.
#pragma once

#include <string>

#include "ir/program.hpp"
#include "lang/ast.hpp"

namespace p4all::ir {

/// Options controlling elaboration.
struct ElaborateOptions {
    /// Name recorded in Program::name (reports, codegen headers).
    std::string program_name = "program";
    /// Entry control; must exist in the AST.
    std::string entry_control = "ingress";
};

/// Elaborates `ast` into an IR Program. Throws support::CompileError with a
/// source location on the first semantic error (unknown names, signature
/// mismatches, role conflicts, nested symbolic loops, non-linearizable
/// assume/optimize expressions, ...).
[[nodiscard]] Program elaborate(const lang::Program& ast, const ElaborateOptions& options = {});

/// Convenience: parse + elaborate from source text.
[[nodiscard]] Program elaborate_source(std::string_view source,
                                       const ElaborateOptions& options = {});

}  // namespace p4all::ir
