// Core value/operand types of the elaborated P4All IR.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/source_location.hpp"

namespace p4all::ir {

/// Index types into the Program tables (see program.hpp). Kept as plain ints
/// for cheap copying; -1 means "none".
using SymbolId = int;
using RegisterId = int;
using MetaFieldId = int;
using PacketFieldId = int;
using ActionId = int;

inline constexpr int kNoId = -1;

/// An affine function of the enclosing symbolic loop's iteration variable:
/// value(i) = coeff_iter * i + constant. Concrete literals have
/// coeff_iter == 0. All indices, seeds, and immediate operands inside
/// elastic actions are affine in the iteration variable.
struct Affine {
    std::int64_t coeff_iter = 0;
    std::int64_t constant = 0;

    [[nodiscard]] static Affine literal(std::int64_t c) noexcept { return {0, c}; }
    [[nodiscard]] static Affine iter() noexcept { return {1, 0}; }

    [[nodiscard]] bool is_literal() const noexcept { return coeff_iter == 0; }

    /// Evaluates at iteration `i`.
    [[nodiscard]] std::int64_t at(std::int64_t i) const noexcept {
        return coeff_iter * i + constant;
    }

    friend bool operator==(const Affine&, const Affine&) = default;
};

/// Reference to a metadata field. For symbolic metadata arrays, `index`
/// selects the element (affine in the loop variable); for scalar fields it
/// must be literal 0.
struct MetaRef {
    MetaFieldId field = kNoId;
    Affine index;

    friend bool operator==(const MetaRef&, const MetaRef&) = default;
};

/// Reference to a parsed packet-header field.
struct PacketRef {
    PacketFieldId field = kNoId;

    friend bool operator==(const PacketRef&, const PacketRef&) = default;
};

/// Reference to one instance of a register array (one row of a register
/// matrix). `instance` is affine in the loop variable.
struct RegRef {
    RegisterId reg = kNoId;
    Affine instance;

    friend bool operator==(const RegRef&, const RegRef&) = default;
};

/// A data operand: metadata, packet field, affine immediate, or (only in
/// register-operand positions) a register reference.
using Value = std::variant<MetaRef, PacketRef, Affine, RegRef>;

/// Primitive operations available inside actions. Costs in stateful (H_f)
/// and stateless (H_l) ALUs come from the target specification.
enum class PrimKind {
    Hash,      // hash(dst_meta, seed, src..., modulus_reg_or_const)
    RegAdd,    // reg_add(reg, idx, amount, [dst_meta])  — reg[idx] += amount
    RegRead,   // reg_read(reg, idx, dst_meta)
    RegWrite,  // reg_write(reg, idx, src)
    RegMin,    // reg_min(reg, idx, src, [dst_meta])     — reg[idx] = min(reg[idx], src)
    RegMax,    // reg_max(reg, idx, src, [dst_meta])
    Set,       // set(dst_meta, src)
    Add,       // add(dst_meta, a, b)
    Sub,       // sub(dst_meta, a, b)
    Min,       // min(dst_meta, src)                     — dst = min(dst, src)
    Max,       // max(dst_meta, src)
};

[[nodiscard]] const char* prim_kind_name(PrimKind kind) noexcept;

/// True for read-modify-write updates on their metadata destination that
/// commute with themselves (Min/Min, Max/Max): two such writers of the same
/// field get an exclusion edge instead of a precedence edge (§4.2).
[[nodiscard]] bool is_commutative_update(PrimKind kind) noexcept;

/// One primitive operation. Operand roles depend on `kind`; unused roles are
/// disengaged. `modulus` is used by Hash only (register whose element count
/// is the hash range, or a literal range).
struct PrimOp {
    PrimKind kind = PrimKind::Set;
    std::optional<MetaRef> dst;
    std::optional<RegRef> reg;
    std::vector<Value> srcs;
    std::optional<Value> reg_index;             // register ops: index into the array
    Affine seed;                                // Hash only
    std::optional<std::variant<RegRef, std::int64_t>> modulus;  // Hash only
    support::SourceLoc loc;                     // statement that produced this op
};

/// Comparison operators usable in `if` guards.
enum class CmpOp { Lt, Le, Gt, Ge, Eq, Ne };

[[nodiscard]] const char* cmp_op_spelling(CmpOp op) noexcept;
[[nodiscard]] CmpOp negate(CmpOp op) noexcept;

/// An atomic guard condition `lhs op rhs`. Call sites carry a conjunction of
/// guards from their enclosing `if` statements.
struct Cond {
    CmpOp op = CmpOp::Eq;
    Value lhs;
    Value rhs;
    support::SourceLoc loc;  // the `if` condition expression
};

}  // namespace p4all::ir
