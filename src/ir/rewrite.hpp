// Structural program identity and mechanical rewrite edits.
//
// The optimizer (src/opt/) transforms the elaborated IR through a chain of
// small, certificate-carrying rewrites; the audit's rewrite-validity pass
// replays that chain from the pre-optimization program. Both sides need
// (a) a structural notion of program identity that ignores source locations
// (two programs that compile and simulate identically must hash equal), and
// (b) the mechanical edits themselves, shared so a replay applies exactly
// the transformation the optimizer applied.
//
// Every edit validates its coordinates and throws support::CompileError on
// anything out of range or shape-mismatched, so a forged certificate can
// never silently no-op during replay.
#pragma once

#include <cstdint>
#include <string>

#include "ir/program.hpp"

namespace p4all::ir {

/// Canonical byte encoding of everything semantically relevant in `prog`:
/// all tables, ops, guards, assumes, and the utility — but no source
/// locations and not Program::name. Equal encodings ⇔ structurally equal
/// programs.
[[nodiscard]] std::string structural_encoding(const Program& prog);

/// 64-bit hash of structural_encoding(). Certificates pin their pre/post
/// program states with this.
[[nodiscard]] std::uint64_t program_hash(const Program& prog);

/// Structural equality (exact, via the canonical encoding — not the hash).
[[nodiscard]] bool programs_equal(const Program& a, const Program& b);

/// Which operand of an op a rewrite targets.
enum class OperandSlot { Src, RegIndex, Modulus };

/// Replaces one side of guard `guard` of flow[call] with a literal.
void replace_guard_operand(Program& prog, int call, int guard, bool lhs, std::int64_t literal);

/// Drops guard `guard` from flow[call] (the guard was proved always true).
void drop_guard(Program& prog, int call, int guard);

/// Removes flow[call] entirely (its guard was proved always false). Later
/// call indices shift down by one; `seq` values are left untouched.
void remove_call(Program& prog, int call);

/// Removes op `op` from action `action`.
void remove_action_op(Program& prog, ActionId action, int op);

/// Replaces a data operand of actions[action].ops[op] with a literal:
/// srcs[pos] for OperandSlot::Src, the register index for RegIndex, or the
/// hash range for Modulus (pos ignored for the latter two).
void replace_op_operand(Program& prog, ActionId action, int op, OperandSlot slot, int pos,
                        std::int64_t literal);

/// Rewrites an Add/Sub op whose other operand is literal zero into
/// Set(dst, srcs[kept_src]). For Sub only kept_src == 0 is algebraically
/// valid; the caller proves the identity, this checks the shape.
void reduce_to_set(Program& prog, ActionId action, int op, int kept_src);

/// Removes register `reg` from the register table. The register must be
/// completely unreferenced (no op reg/operand/index/modulus mentions it);
/// all RegisterIds above it are renumbered down by one.
void remove_register(Program& prog, RegisterId reg);

}  // namespace p4all::ir
