#include "ir/rewrite.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace p4all::ir {

using support::CompileError;

namespace {

class Encoder {
public:
    void tag(char c) { out_ += c; }
    void num(std::int64_t v) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRId64 ";", v);
        out_ += buf;
    }
    void real(double v) {
        // %a is exact and deterministic; decimal renderings are neither.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%a;", v);
        out_ += buf;
    }
    void str(const std::string& s) {
        num(static_cast<std::int64_t>(s.size()));
        out_ += s;
    }
    void affine(const Affine& a) {
        num(a.coeff_iter);
        num(a.constant);
    }
    void extent(const Extent& e) {
        num(e.sym);
        num(e.literal);
    }
    void value(const Value& v) {
        tag(static_cast<char>('A' + v.index()));
        if (const auto* m = std::get_if<MetaRef>(&v)) {
            num(m->field);
            affine(m->index);
        } else if (const auto* p = std::get_if<PacketRef>(&v)) {
            num(p->field);
        } else if (const auto* a = std::get_if<Affine>(&v)) {
            affine(*a);
        } else if (const auto* r = std::get_if<RegRef>(&v)) {
            num(r->reg);
            affine(r->instance);
        }
    }
    void poly(const Polynomial& p) {
        num(static_cast<std::int64_t>(p.terms().size()));
        for (const PolyTerm& t : p.terms()) {
            real(t.coeff);
            num(t.a);
            num(t.b);
        }
    }

    [[nodiscard]] std::string take() && { return std::move(out_); }

private:
    std::string out_;
};

}  // namespace

std::string structural_encoding(const Program& prog) {
    Encoder e;
    e.tag('S');
    e.num(static_cast<std::int64_t>(prog.symbols.size()));
    for (const SymbolicVar& s : prog.symbols) {
        e.str(s.name);
        e.num(static_cast<std::int64_t>(s.role));
    }
    e.tag('R');
    e.num(static_cast<std::int64_t>(prog.registers.size()));
    for (const RegisterArray& r : prog.registers) {
        e.str(r.name);
        e.num(r.width);
        e.extent(r.elems);
        e.extent(r.instances);
    }
    e.tag('M');
    e.num(static_cast<std::int64_t>(prog.meta_fields.size()));
    for (const MetaField& m : prog.meta_fields) {
        e.str(m.name);
        e.num(m.width);
        e.num(m.array.has_value() ? 1 : 0);
        if (m.array) e.extent(*m.array);
    }
    e.tag('P');
    e.num(static_cast<std::int64_t>(prog.packet_fields.size()));
    for (const PacketField& p : prog.packet_fields) {
        e.str(p.name);
        e.num(p.width);
    }
    e.tag('A');
    e.num(static_cast<std::int64_t>(prog.actions.size()));
    for (const Action& a : prog.actions) {
        e.str(a.name);
        e.num(a.has_iter_param ? 1 : 0);
        e.num(static_cast<std::int64_t>(a.ops.size()));
        for (const PrimOp& op : a.ops) {
            e.num(static_cast<std::int64_t>(op.kind));
            e.num(op.dst.has_value() ? 1 : 0);
            if (op.dst) {
                e.num(op.dst->field);
                e.affine(op.dst->index);
            }
            e.num(op.reg.has_value() ? 1 : 0);
            if (op.reg) {
                e.num(op.reg->reg);
                e.affine(op.reg->instance);
            }
            e.num(static_cast<std::int64_t>(op.srcs.size()));
            for (const Value& src : op.srcs) e.value(src);
            e.num(op.reg_index.has_value() ? 1 : 0);
            if (op.reg_index) e.value(*op.reg_index);
            e.affine(op.seed);
            e.num(op.modulus.has_value() ? 1 : 0);
            if (op.modulus) {
                if (const auto* r = std::get_if<RegRef>(&*op.modulus)) {
                    e.tag('r');
                    e.num(r->reg);
                    e.affine(r->instance);
                } else {
                    e.tag('l');
                    e.num(std::get<std::int64_t>(*op.modulus));
                }
            }
        }
    }
    e.tag('F');
    e.num(static_cast<std::int64_t>(prog.flow.size()));
    for (const CallSite& c : prog.flow) {
        e.num(c.action);
        e.num(c.loop_bound);
        e.affine(c.iter_arg);
        e.num(c.seq);
        e.num(static_cast<std::int64_t>(c.guards.size()));
        for (const Cond& g : c.guards) {
            e.num(static_cast<std::int64_t>(g.op));
            e.value(g.lhs);
            e.value(g.rhs);
        }
    }
    e.tag('C');
    e.num(static_cast<std::int64_t>(prog.assumes.size()));
    for (const PolyConstraint& pc : prog.assumes) {
        e.num(static_cast<std::int64_t>(pc.op));
        e.poly(pc.poly);
    }
    e.tag('U');
    e.poly(prog.utility);
    return std::move(e).take();
}

std::uint64_t program_hash(const Program& prog) {
    const std::string enc = structural_encoding(prog);
    // Pack the byte encoding into words and reuse the simulator's seeded
    // 64-bit mix; the structural comparison below is the exact check, the
    // hash only has to pin chain order in certificates.
    std::vector<std::uint64_t> words;
    words.reserve(enc.size() / 8 + 1);
    std::uint64_t w = 0;
    int n = 0;
    for (const char c : enc) {
        w = (w << 8) | static_cast<unsigned char>(c);
        if (++n == 8) {
            words.push_back(w);
            w = 0;
            n = 0;
        }
    }
    words.push_back((w << 8) | static_cast<std::uint64_t>(n));
    return support::hash_words(words, 0x9E37'79B9'7F4A'7C15ULL);
}

bool programs_equal(const Program& a, const Program& b) {
    return structural_encoding(a) == structural_encoding(b);
}

namespace {

CallSite& checked_call(Program& prog, int call) {
    if (call < 0 || static_cast<std::size_t>(call) >= prog.flow.size()) {
        throw CompileError("rewrite: call index " + std::to_string(call) + " out of range");
    }
    return prog.flow[static_cast<std::size_t>(call)];
}

Cond& checked_guard(Program& prog, int call, int guard) {
    CallSite& site = checked_call(prog, call);
    if (guard < 0 || static_cast<std::size_t>(guard) >= site.guards.size()) {
        throw CompileError("rewrite: guard index " + std::to_string(guard) +
                           " out of range for call " + std::to_string(call));
    }
    return site.guards[static_cast<std::size_t>(guard)];
}

PrimOp& checked_op(Program& prog, ActionId action, int op) {
    if (action < 0 || static_cast<std::size_t>(action) >= prog.actions.size()) {
        throw CompileError("rewrite: action id " + std::to_string(action) + " out of range");
    }
    Action& a = prog.actions[static_cast<std::size_t>(action)];
    if (op < 0 || static_cast<std::size_t>(op) >= a.ops.size()) {
        throw CompileError("rewrite: op index " + std::to_string(op) +
                           " out of range for action '" + a.name + "'");
    }
    return a.ops[static_cast<std::size_t>(op)];
}

}  // namespace

void replace_guard_operand(Program& prog, int call, int guard, bool lhs, std::int64_t literal) {
    Cond& g = checked_guard(prog, call, guard);
    (lhs ? g.lhs : g.rhs) = Affine::literal(literal);
}

void drop_guard(Program& prog, int call, int guard) {
    CallSite& site = checked_call(prog, call);
    checked_guard(prog, call, guard);
    site.guards.erase(site.guards.begin() + guard);
}

void remove_call(Program& prog, int call) {
    checked_call(prog, call);
    prog.flow.erase(prog.flow.begin() + call);
}

void remove_action_op(Program& prog, ActionId action, int op) {
    checked_op(prog, action, op);
    Action& a = prog.actions[static_cast<std::size_t>(action)];
    a.ops.erase(a.ops.begin() + op);
}

void replace_op_operand(Program& prog, ActionId action, int op, OperandSlot slot, int pos,
                        std::int64_t literal) {
    PrimOp& p = checked_op(prog, action, op);
    switch (slot) {
        case OperandSlot::Src:
            if (pos < 0 || static_cast<std::size_t>(pos) >= p.srcs.size()) {
                throw CompileError("rewrite: src position " + std::to_string(pos) +
                                   " out of range");
            }
            p.srcs[static_cast<std::size_t>(pos)] = Affine::literal(literal);
            return;
        case OperandSlot::RegIndex:
            if (!p.reg_index) throw CompileError("rewrite: op has no register index operand");
            *p.reg_index = Affine::literal(literal);
            return;
        case OperandSlot::Modulus:
            if (p.kind != PrimKind::Hash || !p.modulus) {
                throw CompileError("rewrite: op has no hash modulus operand");
            }
            *p.modulus = literal;
            return;
    }
    throw CompileError("rewrite: unknown operand slot");
}

void reduce_to_set(Program& prog, ActionId action, int op, int kept_src) {
    PrimOp& p = checked_op(prog, action, op);
    if ((p.kind != PrimKind::Add && p.kind != PrimKind::Sub) || p.srcs.size() != 2) {
        throw CompileError("rewrite: reduce_to_set target is not a two-operand Add/Sub");
    }
    if (kept_src != 0 && kept_src != 1) {
        throw CompileError("rewrite: reduce_to_set kept operand must be 0 or 1");
    }
    if (p.kind == PrimKind::Sub && kept_src != 0) {
        throw CompileError("rewrite: 0 - x is not x; only Sub(x, 0) reduces to Set");
    }
    const std::size_t dropped = kept_src == 0 ? 1 : 0;
    const auto* zero = std::get_if<Affine>(&p.srcs[dropped]);
    if (zero == nullptr || !zero->is_literal() || zero->constant != 0) {
        throw CompileError("rewrite: reduce_to_set dropped operand is not literal zero");
    }
    const Value kept = p.srcs[static_cast<std::size_t>(kept_src)];
    p.kind = PrimKind::Set;
    p.srcs.assign(1, kept);
}

void remove_register(Program& prog, RegisterId reg) {
    if (reg < 0 || static_cast<std::size_t>(reg) >= prog.registers.size()) {
        throw CompileError("rewrite: register id " + std::to_string(reg) + " out of range");
    }
    const auto renumber = [reg](RegisterId r) { return r > reg ? r - 1 : r; };
    for (Action& a : prog.actions) {
        for (PrimOp& op : a.ops) {
            if (op.reg && op.reg->reg == reg) {
                throw CompileError("rewrite: register '" + prog.reg(reg).name +
                                   "' is still accessed by action '" + a.name + "'");
            }
            if (op.modulus) {
                if (const auto* r = std::get_if<RegRef>(&*op.modulus); r != nullptr &&
                    r->reg == reg) {
                    throw CompileError("rewrite: register '" + prog.reg(reg).name +
                                       "' is still a hash range in action '" + a.name + "'");
                }
            }
            const auto check_value = [&](const Value& v) {
                if (const auto* r = std::get_if<RegRef>(&v); r != nullptr && r->reg == reg) {
                    throw CompileError("rewrite: register '" + prog.reg(reg).name +
                                       "' is still referenced by action '" + a.name + "'");
                }
            };
            for (const Value& src : op.srcs) check_value(src);
            if (op.reg_index) check_value(*op.reg_index);
        }
    }
    prog.registers.erase(prog.registers.begin() + reg);
    for (Action& a : prog.actions) {
        for (PrimOp& op : a.ops) {
            if (op.reg) op.reg->reg = renumber(op.reg->reg);
            if (op.modulus) {
                if (auto* r = std::get_if<RegRef>(&*op.modulus)) r->reg = renumber(r->reg);
            }
            const auto fix_value = [&](Value& v) {
                if (auto* r = std::get_if<RegRef>(&v)) r->reg = renumber(r->reg);
            };
            for (Value& src : op.srcs) fix_value(src);
            if (op.reg_index) fix_value(*op.reg_index);
        }
    }
}

}  // namespace p4all::ir
