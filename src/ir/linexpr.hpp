// Degree-≤2 polynomials over symbolic variables.
//
// `assume` constraints and `optimize` utility functions are arithmetic
// expressions over symbolic values. The compiler lowers them to polynomials
// with terms of degree 0 (constants), 1 (a symbolic value), or 2 (a product
// of two symbolic values, which must denote a register-matrix size —
// instances × elements — to stay expressible in the ILP, exactly as the
// paper's `rows * cols` term does).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/types.hpp"

namespace p4all::ir {

/// coeff · a · b, where a/b are symbolic variables or absent:
///   a == kNoId && b == kNoId  → constant term
///   a != kNoId && b == kNoId  → linear term
///   a != kNoId && b != kNoId  → quadratic term (a ≤ b canonical order)
struct PolyTerm {
    double coeff = 0.0;
    SymbolId a = kNoId;
    SymbolId b = kNoId;

    [[nodiscard]] int degree() const noexcept { return (a != kNoId ? 1 : 0) + (b != kNoId ? 1 : 0); }
};

/// A sparse polynomial Σ terms. Terms are kept merged and canonical.
class Polynomial {
public:
    Polynomial() = default;
    explicit Polynomial(double constant);

    /// Monomial helpers.
    [[nodiscard]] static Polynomial var(SymbolId v);

    void add_term(PolyTerm t);

    Polynomial& operator+=(const Polynomial& rhs);
    Polynomial& operator-=(const Polynomial& rhs);
    void negate();

    /// Polynomial product. Throws support::CompileError if the result would
    /// exceed degree 2.
    [[nodiscard]] Polynomial multiply(const Polynomial& rhs) const;

    /// Division / modulus by a nonzero constant only.
    [[nodiscard]] Polynomial divide_by_constant(double c) const;

    [[nodiscard]] const std::vector<PolyTerm>& terms() const noexcept { return terms_; }
    [[nodiscard]] double constant() const noexcept;
    [[nodiscard]] int degree() const noexcept;
    [[nodiscard]] bool is_constant() const noexcept { return degree() == 0; }

    /// Evaluates under a full assignment (indexed by SymbolId).
    [[nodiscard]] double evaluate(const std::vector<std::int64_t>& assignment) const;

    /// Debug rendering like "0.4*s0*s1 + 0.6*s2 + 3".
    [[nodiscard]] std::string to_string() const;

private:
    void canonicalize();

    std::vector<PolyTerm> terms_;  // merged; no zero coefficients
};

/// A linear(izable) constraint `poly op 0` produced from an assume clause.
/// Only Le / Ge / Eq survive normalization (strict inequalities over integers
/// are rewritten: x < c  ⇒  x ≤ c-1).
struct PolyConstraint {
    Polynomial poly;  // constraint is: poly (op) 0
    CmpOp op = CmpOp::Le;

    [[nodiscard]] std::string to_string() const;
};

}  // namespace p4all::ir
