#include "ir/linexpr.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace p4all::ir {

using support::CompileError;

Polynomial::Polynomial(double constant) {
    if (constant != 0.0) terms_.push_back({constant, kNoId, kNoId});
}

Polynomial Polynomial::var(SymbolId v) {
    Polynomial p;
    p.terms_.push_back({1.0, v, kNoId});
    return p;
}

void Polynomial::add_term(PolyTerm t) {
    if (t.a == kNoId && t.b != kNoId) std::swap(t.a, t.b);
    if (t.a != kNoId && t.b != kNoId && t.a > t.b) std::swap(t.a, t.b);
    terms_.push_back(t);
    canonicalize();
}

void Polynomial::canonicalize() {
    std::sort(terms_.begin(), terms_.end(), [](const PolyTerm& x, const PolyTerm& y) {
        if (x.a != y.a) return x.a < y.a;
        return x.b < y.b;
    });
    std::vector<PolyTerm> merged;
    for (const PolyTerm& t : terms_) {
        if (!merged.empty() && merged.back().a == t.a && merged.back().b == t.b) {
            merged.back().coeff += t.coeff;
        } else {
            merged.push_back(t);
        }
    }
    std::erase_if(merged, [](const PolyTerm& t) { return t.coeff == 0.0; });
    terms_ = std::move(merged);
}

Polynomial& Polynomial::operator+=(const Polynomial& rhs) {
    terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
    canonicalize();
    return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& rhs) {
    for (PolyTerm t : rhs.terms_) {
        t.coeff = -t.coeff;
        terms_.push_back(t);
    }
    canonicalize();
    return *this;
}

void Polynomial::negate() {
    for (PolyTerm& t : terms_) t.coeff = -t.coeff;
}

Polynomial Polynomial::multiply(const Polynomial& rhs) const {
    Polynomial out;
    for (const PolyTerm& x : terms_) {
        for (const PolyTerm& y : rhs.terms_) {
            PolyTerm t;
            t.coeff = x.coeff * y.coeff;
            // Collect the variable factors of the product.
            std::vector<SymbolId> vars;
            for (const SymbolId v : {x.a, x.b, y.a, y.b}) {
                if (v != kNoId) vars.push_back(v);
            }
            if (vars.size() > 2) {
                throw CompileError(
                    "expression exceeds degree 2: products of more than two symbolic values "
                    "cannot be expressed in the ILP");
            }
            t.a = vars.size() > 0 ? vars[0] : kNoId;
            t.b = vars.size() > 1 ? vars[1] : kNoId;
            out.terms_.push_back(t);
        }
    }
    // add_term canonicalization path
    Polynomial result;
    for (const PolyTerm& t : out.terms_) result.add_term(t);
    return result;
}

Polynomial Polynomial::divide_by_constant(double c) const {
    if (c == 0.0) throw CompileError("division by zero in symbolic expression");
    Polynomial out = *this;
    for (PolyTerm& t : out.terms_) t.coeff /= c;
    return out;
}

double Polynomial::constant() const noexcept {
    for (const PolyTerm& t : terms_) {
        if (t.a == kNoId) return t.coeff;
    }
    return 0.0;
}

int Polynomial::degree() const noexcept {
    int d = 0;
    for (const PolyTerm& t : terms_) d = std::max(d, t.degree());
    return d;
}

double Polynomial::evaluate(const std::vector<std::int64_t>& assignment) const {
    double total = 0.0;
    for (const PolyTerm& t : terms_) {
        double v = t.coeff;
        if (t.a != kNoId) v *= static_cast<double>(assignment.at(static_cast<std::size_t>(t.a)));
        if (t.b != kNoId) v *= static_cast<double>(assignment.at(static_cast<std::size_t>(t.b)));
        total += v;
    }
    return total;
}

std::string Polynomial::to_string() const {
    if (terms_.empty()) return "0";
    std::vector<std::string> parts;
    for (const PolyTerm& t : terms_) {
        std::string s = support::format_double(t.coeff, 6);
        // strip trailing zeros for readability
        while (s.find('.') != std::string::npos && (s.back() == '0')) s.pop_back();
        if (!s.empty() && s.back() == '.') s.pop_back();
        if (t.a != kNoId) s += "*s" + std::to_string(t.a);
        if (t.b != kNoId) s += "*s" + std::to_string(t.b);
        parts.push_back(std::move(s));
    }
    return support::join(parts, " + ");
}

std::string PolyConstraint::to_string() const {
    return poly.to_string() + " " + cmp_op_spelling(op) + " 0";
}

}  // namespace p4all::ir
