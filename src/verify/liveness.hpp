// Liveness facts over register and metadata writes.
//
// Three syntactic-but-sound analyses shared by the optimizer (src/opt/), the
// rewrite-validity audit replay (src/audit/), and two lint passes:
//
//  * register_usage — per-register summary of how the dataplane touches it
//    (written, read back, used as a hash range). The controller can always
//    read register rows off-switch, so "never state_read" does NOT mean the
//    register is dead — it means its contents never influence packets.
//  * dead_meta_stores — metadata writes shadowed by a later write in the same
//    action with no intervening read. Sound per the simulator's semantics:
//    ops within one action instance read their own earlier writes through a
//    local overlay, guards read the stage entry, and other instances never
//    observe intermediate values.
//  * dead_register_stores — register updates overwritten by a later
//    unconditional RegWrite to the syntactically identical cell with no
//    intervening access to the register. Sound because one instance's ops
//    execute contiguously over the (immediately mutated) global register
//    state.
//
// All three are per-action and parameter-independent: shadowing is only
// reported when the two destinations are syntactically identical, which makes
// them the same slot for every loop iteration.
#pragma once

#include <memory>
#include <vector>

#include "ir/program.hpp"

namespace p4all::verify {

class LintPass;

/// How the dataplane uses one register array.
struct RegisterUse {
    bool written = false;     ///< target of RegWrite/RegAdd/RegMin/RegMax
    bool state_read = false;  ///< contents observable in-dataplane: RegRead,
                              ///< an RMW with a meta destination, or a RegRef
                              ///< in operand/index/guard position
    bool hash_range = false;  ///< used as a hash modulus

    [[nodiscard]] bool accessed() const noexcept { return written || state_read || hash_range; }
};

/// Usage summary indexed by RegisterId, over every action in the program
/// (reachable or not — structural references keep a register alive).
[[nodiscard]] std::vector<RegisterUse> register_usage(const ir::Program& prog);

/// One shadowed write: actions[action].ops[op] is made dead by
/// actions[action].ops[overwritten_by].
struct DeadStore {
    ir::ActionId action = ir::kNoId;
    int op = -1;
    int overwritten_by = -1;
};

/// Pure metadata writes (Set/Add/Sub/Min/Max/Hash) shadowed by a later write
/// to the identical destination with no intervening read of the field.
[[nodiscard]] std::vector<DeadStore> dead_meta_stores(const ir::Program& prog);

/// Register updates without a meta destination shadowed by a later RegWrite
/// to the identical cell with no intervening access to the register (and no
/// write to a meta field the cell index depends on).
[[nodiscard]] std::vector<DeadStore> dead_register_stores(const ir::Program& prog);

/// Lint: warns on every write to a register whose contents the dataplane
/// never reads back (check id "dead-register-write").
[[nodiscard]] std::unique_ptr<LintPass> make_dead_register_write_pass();

/// Lint: warns on registers that only serve as a hash range (check id
/// "unused-extern") — the allocated storage is never read or written.
[[nodiscard]] std::unique_ptr<LintPass> make_unused_extern_pass();

}  // namespace p4all::verify
