// Monotone dataflow framework over the elaborated IR.
//
// The lint passes of PR 1 reason about single expressions with BoundEnv;
// this framework generalizes that into a reusable abstract-interpretation
// engine: a worklist fixpoint solver over a per-stage view of the pipeline
// with pluggable lattices. Three domains ship with it —
//
//   IntervalDomain   value ranges (verify::Interval, widened)
//   KnownBitsDomain  per-bit knowledge {known mask, known values}
//   TaintDomain      per-register provenance bitmasks for flow isolation
//
// — and three clients: register-bounds proofs (prove_register_bounds, whose
// ProofFacts let sim::Pipeline elide per-packet bounds checks), the
// cross-flow-interference lint pass, and the audit-side proof re-derivation.
//
// Soundness model (mirrors sim::Pipeline::process exactly):
//   * Per packet, every meta slot starts at zero and every packet field is
//     arbitrary within its width.
//   * Ops inside one action run sequentially over a local overlay; actions
//     within a stage all read the stage-entry state (the pre/post barrier).
//   * An unguarded write is a strong update of the stage-out state; a
//     guarded write may not happen, so it joins with the incoming value.
//   * Register cells hold arbitrary width-bounded values unless a domain
//     tracks them (TaintDomain accumulates per-register summaries and the
//     solver re-runs until those summaries stabilize).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/instances.hpp"
#include "ir/program.hpp"
#include "support/rng.hpp"
#include "verify/interval.hpp"
#include "verify/lint.hpp"

namespace p4all::verify {

// ---------------------------------------------------------------------------
// Dataplane view: the control-flow skeleton the solver walks.
// ---------------------------------------------------------------------------

/// One placed action instance and the stage it executes in. `optional`
/// marks instances that exist only under some admissible sizings (elastic
/// iterations at or above the assume lower bound); their writes are weak
/// updates, exactly like guarded writes.
struct ViewInstance {
    analysis::Instance inst;
    int stage = 0;
    bool optional = false;
};

/// A neutral description of one concrete dataplane: which action instances
/// run in which stage, and how many elements each placed register row has.
/// The compiler builds one from a Layout (compiler::dataplane_view); the
/// layout-free lint passes build a conservative one with min_sizing_view.
struct DataplaneView {
    std::vector<ViewInstance> instances;  // stage-major, deterministic order
    int stage_count = 0;
    /// (register, row instance) -> element count, when statically known.
    std::map<std::pair<ir::RegisterId, std::int64_t>, std::int64_t> reg_elems;

    [[nodiscard]] std::optional<std::int64_t> elems(ir::RegisterId reg,
                                                    std::int64_t instance) const {
        const auto it = reg_elems.find({reg, instance});
        if (it == reg_elems.end()) return std::nullopt;
        return it->second;
    }
};

/// Layout-free view for lint-time analysis: each call site becomes its own
/// stage in program order (the depgraph forces writers to precede readers
/// across stages in any legal layout, so this is the weakest legal
/// schedule), instantiated at the assume lower bounds. Register element
/// counts are recorded only when the extent is pinned to a single value.
[[nodiscard]] DataplaneView min_sizing_view(const ir::Program& prog);

/// Layout-free view covering *every* admissible sizing at once: elastic
/// call sites are instantiated at the assume **upper** bounds, with the
/// iterations at or above the lower bound marked optional (their writes
/// join instead of overwriting). A fact derived over this view holds for
/// any assignment that satisfies the assumes — this is what licenses
/// constant propagation before the layout is known. Returns nullopt when
/// any elastic loop bound has no finite assume upper bound or the total
/// instance count would exceed `max_instances`.
[[nodiscard]] std::optional<DataplaneView> bounded_sizing_view(const ir::Program& prog,
                                                               std::int64_t max_instances = 2048);

// ---------------------------------------------------------------------------
// Abstract domains.
// ---------------------------------------------------------------------------

/// Interval domain: verify::Interval per slot with unsigned wrap semantics.
struct IntervalDomain {
    using Value = Interval;

    [[nodiscard]] Value zero() const { return Interval::point(0); }
    [[nodiscard]] Value top(int width) const { return Interval::of_width(width); }
    [[nodiscard]] Value literal(std::int64_t v) const { return Interval::point(v); }
    [[nodiscard]] Value join(const Value& a, const Value& b) const { return a.join(b); }
    [[nodiscard]] Value widen(const Value& prev, const Value& next) const {
        return prev.widen(next);
    }
    [[nodiscard]] Value mask(const Value& v, int width) const {
        return wrap_to_width(v, width);
    }
    [[nodiscard]] Value add(const Value& a, const Value& b, int width) const {
        return wrap_to_width(a + b, width);
    }
    [[nodiscard]] Value sub(const Value& a, const Value& b, int width) const {
        return wrap_to_width(a - b, width);
    }
    [[nodiscard]] Value min_(const Value& a, const Value& b) const;
    [[nodiscard]] Value max_(const Value& a, const Value& b) const;
    [[nodiscard]] Value hash_result(std::int64_t modulus, const std::vector<Value>& srcs,
                                    int width) const;
    [[nodiscard]] Value reg_result(ir::RegisterId, ir::PrimKind, const Value&, const Value&,
                                   int reg_width) const {
        return Interval::of_width(reg_width);
    }
    void reg_store(ir::RegisterId, ir::PrimKind, const Value&, const Value&) {}
    bool end_round() { return false; }
};

/// Known-bits domain: bit i of `known` set means bit i of the value equals
/// bit i of `value` on every execution. top(w) still knows the bits above
/// the width are zero — that is what proves masked/hashed indices in-bounds
/// for power-of-two arrays where intervals lose precision.
struct KnownBitsValue {
    std::uint64_t known = 0;   // which bits are known
    std::uint64_t value = 0;   // their values (value & ~known == 0)

    [[nodiscard]] std::uint64_t max_value() const { return value | ~known; }
    [[nodiscard]] std::uint64_t min_value() const { return value; }
    friend bool operator==(const KnownBitsValue&, const KnownBitsValue&) = default;
};

struct KnownBitsDomain {
    using Value = KnownBitsValue;

    [[nodiscard]] static std::uint64_t width_mask(int width) {
        if (width <= 0) return 0;
        if (width >= 64) return ~0ULL;
        return (1ULL << width) - 1;
    }

    [[nodiscard]] Value zero() const { return {~0ULL, 0}; }
    [[nodiscard]] Value top(int width) const { return {~width_mask(width), 0}; }
    [[nodiscard]] Value literal(std::int64_t v) const {
        return {~0ULL, static_cast<std::uint64_t>(v)};
    }
    [[nodiscard]] Value join(const Value& a, const Value& b) const {
        const std::uint64_t agree = a.known & b.known & ~(a.value ^ b.value);
        return {agree, a.value & agree};
    }
    [[nodiscard]] Value widen(const Value& prev, const Value& next) const {
        return join(prev, next);  // finite lattice: join terminates on its own
    }
    [[nodiscard]] Value mask(const Value& v, int width) const {
        const std::uint64_t m = width_mask(width);
        return {v.known | ~m, v.value & m};
    }
    [[nodiscard]] Value add(const Value& a, const Value& b, int width) const;
    [[nodiscard]] Value sub(const Value& a, const Value& b, int width) const;
    [[nodiscard]] Value min_(const Value& a, const Value& b) const;
    [[nodiscard]] Value max_(const Value& a, const Value& b) const;
    [[nodiscard]] Value hash_result(std::int64_t modulus, const std::vector<Value>& srcs,
                                    int width) const;
    [[nodiscard]] Value reg_result(ir::RegisterId, ir::PrimKind, const Value&, const Value&,
                                   int reg_width) const {
        return top(reg_width);
    }
    void reg_store(ir::RegisterId, ir::PrimKind, const Value&, const Value&) {}
    bool end_round() { return false; }

    /// Logical shifts by a known amount (shift >= width yields zero); used
    /// by clients reasoning about sub-field packing, exposed for tests.
    [[nodiscard]] static Value shl(const Value& a, int amount, int width);
    [[nodiscard]] static Value shr(const Value& a, int amount, int width);

    /// All bits at or above the position of `bound`'s highest set bit are
    /// known zero (values are < 2^ceil(log2(bound+1))).
    [[nodiscard]] static Value bounded_by(std::uint64_t bound);
};

/// Taint domain: a value's abstract state is the set of registers whose
/// *stored state* may have influenced it (bit r set = register id r,
/// saturating at bit 63). Packet fields and constants carry no taint; a
/// register read yields that register's label plus everything ever stored
/// into it (accumulated across packets — persistent state carries taint
/// forward). The solver re-runs rounds until the accumulators stabilize.
struct TaintDomain {
    using Value = std::uint64_t;

    [[nodiscard]] static Value label(ir::RegisterId reg) {
        return 1ULL << (reg < 63 ? reg : 63);
    }

    [[nodiscard]] Value zero() const { return 0; }
    [[nodiscard]] Value top(int) const { return 0; }  // packet data: no register provenance
    [[nodiscard]] Value literal(std::int64_t) const { return 0; }
    [[nodiscard]] Value join(Value a, Value b) const { return a | b; }
    [[nodiscard]] Value widen(Value a, Value b) const { return a | b; }
    [[nodiscard]] Value mask(Value v, int) const { return v; }
    [[nodiscard]] Value add(Value a, Value b, int) const { return a | b; }
    [[nodiscard]] Value sub(Value a, Value b, int) const { return a | b; }
    [[nodiscard]] Value min_(Value a, Value b) const { return a | b; }
    [[nodiscard]] Value max_(Value a, Value b) const { return a | b; }
    [[nodiscard]] Value hash_result(std::int64_t, const std::vector<Value>& srcs, int) const {
        Value v = 0;
        for (const Value s : srcs) v |= s;
        return v;
    }
    [[nodiscard]] Value reg_result(ir::RegisterId reg, ir::PrimKind, Value operand, Value index,
                                   int) const {
        return label(reg) | stored_in(reg) | operand | index;
    }
    void reg_store(ir::RegisterId reg, ir::PrimKind, Value stored, Value index);
    bool end_round();

    [[nodiscard]] Value stored_in(ir::RegisterId reg) const {
        const auto it = accum_.find(reg);
        return it == accum_.end() ? 0 : it->second;
    }

private:
    std::map<ir::RegisterId, Value> accum_;  // taint ever stored per register
    bool dirty_ = false;
};

// ---------------------------------------------------------------------------
// The solver.
// ---------------------------------------------------------------------------

struct SolveOptions {
    /// 0 processes the worklist LIFO; any other seed permutes the pick
    /// order. The fixpoint must not depend on this (property-tested).
    std::uint64_t order_seed = 0;
    /// Joins tolerated per stage before widening kicks in.
    int widen_delay = 4;
    /// Cap on outer rounds for domains with persistent-state accumulators.
    int max_rounds = 72;
};

/// One static register access discovered by the solver, with the abstract
/// index value that reached it.
template <typename ValueT>
struct RegAccessT {
    ViewInstance where;
    int op_index = 0;                 // position in the action's seq
    const ir::PrimOp* op = nullptr;   // the accessing op (kind in Reg*/Hash)
    std::int64_t row = 0;             // concrete register row instance
    ValueT index;                     // abstract index at the access
    ValueT operand;                   // abstract stored/operand value
};

/// Worklist fixpoint solver over the chain CFG of stages. `Domain` supplies
/// the lattice (see the bundled domains for the duck-typed interface).
template <typename Domain>
class StageDataflow {
public:
    using Value = typename Domain::Value;
    using RegAccess = RegAccessT<Value>;

    StageDataflow(const ir::Program& prog, const DataplaneView& view, Domain domain = {});

    void solve(const SolveOptions& opts = {});

    [[nodiscard]] int slot_count() const { return static_cast<int>(slots_.size()); }
    [[nodiscard]] int slot_of(ir::MetaFieldId field, std::int64_t index) const;
    /// The joined abstract state at entry to `stage` after solve().
    [[nodiscard]] const std::vector<Value>& stage_in(int stage) const {
        return in_[static_cast<std::size_t>(stage)];
    }
    /// Every static register access, in deterministic stage-major order.
    [[nodiscard]] const std::vector<RegAccess>& reg_accesses() const { return accesses_; }

    /// Abstract value of operand `v` as read by op `op_index` of view
    /// instance `instance_index` (ops before it are replayed over the
    /// action's local overlay from the solved stage-entry state; guards are
    /// read at op_index 0). Requires solve(). Only meaningful for domains
    /// without persistent accumulators (interval, known-bits): the replay
    /// re-fires reg_store, which those domains ignore.
    [[nodiscard]] Value value_entering_op(std::size_t instance_index, int op_index,
                                          const ir::Value& v);

    [[nodiscard]] Domain& domain() { return domain_; }

private:
    struct Slot {
        ir::MetaFieldId field = ir::kNoId;
        std::int64_t index = 0;
        int width = 64;
    };

    void collect_slots();
    std::vector<Value> transfer(int stage, const std::vector<Value>& in,
                                std::vector<RegAccess>* record);
    std::optional<Value> op_result(const ir::PrimOp& op, const std::vector<Value>& local,
                                   std::int64_t param, const ViewInstance& vi, int op_index,
                                   std::vector<RegAccess>* record);
    Value eval(const ir::Value& v, const std::vector<Value>& env, std::int64_t param) const;

    const ir::Program* prog_;
    const DataplaneView* view_;
    Domain domain_;
    std::vector<Slot> slots_;
    std::map<std::pair<ir::MetaFieldId, std::int64_t>, int> slot_index_;
    std::vector<std::vector<int>> by_stage_;  // stage -> indices into view_->instances
    std::vector<std::vector<Value>> in_;
    std::vector<RegAccess> accesses_;
};

extern template class StageDataflow<IntervalDomain>;
extern template class StageDataflow<KnownBitsDomain>;
extern template class StageDataflow<TaintDomain>;

// ---------------------------------------------------------------------------
// Register-bounds proofs.
// ---------------------------------------------------------------------------

/// A machine-checkable claim about one static register access: for the
/// concrete layout behind `view`, the access at op `op` of instance
/// (call, iter) touches row `instance` of `reg`, which has `elems`
/// elements, with an index provably inside [index_lo, index_hi]. `proved`
/// means index_hi < elems and index_lo >= 0, so the per-packet bounds check
/// is redundant. Facts ride in CompileArtifacts, are re-derived by the
/// audit, and are consumed by sim::Pipeline to elide the check.
struct ProofFact {
    std::int32_t call = 0;       // index into Program::flow
    std::int64_t iter = 0;       // loop iteration of the instance
    std::int32_t op = 0;         // op index within the action body
    ir::RegisterId reg = ir::kNoId;
    std::int64_t instance = 0;   // register row instance
    std::int64_t elems = 0;      // element count the proof is against
    std::int64_t index_lo = 0;
    std::int64_t index_hi = 0;
    bool proved = false;
    std::string domain;          // "interval" | "known-bits" | "" when unproved
    support::SourceLoc loc;

    friend bool operator==(const ProofFact&, const ProofFact&) = default;
};

struct BoundsProofs {
    std::vector<ProofFact> facts;

    [[nodiscard]] std::size_t proved_count() const {
        std::size_t n = 0;
        for (const ProofFact& f : facts) n += f.proved ? 1 : 0;
        return n;
    }
};

/// Runs the interval and known-bits domains over `view` and emits one
/// ProofFact per static register access, in deterministic order.
[[nodiscard]] BoundsProofs prove_register_bounds(const ir::Program& prog,
                                                 const DataplaneView& view);

/// Factory for the cross-flow-interference (tenant taint) lint pass;
/// registered with the builtin passes.
[[nodiscard]] std::unique_ptr<LintPass> make_cross_flow_interference_pass();

}  // namespace p4all::verify
