// The built-in lint passes.
//
// Five are located ports of the original verify.cpp checks (index-bounds,
// hash-range, seed-overlap, dead-code, constant-guard); three are new
// analyses on top of the interval substrate and the dependency graph
// (guard-unreachable, width-overflow, schedule-infeasible). Each pass is a
// self-contained LintPass registered by register_builtin_passes; check ids
// double as the --checks= spelling and the SARIF ruleId.
#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>

#include "analysis/depgraph.hpp"
#include "analysis/instances.hpp"
#include "analysis/unroll.hpp"
#include "verify/dataflow.hpp"
#include "verify/liveness.hpp"
#include "verify/lint.hpp"

namespace p4all::verify {

namespace {

using ir::Affine;
using ir::CallSite;
using ir::MetaRef;
using ir::PacketRef;
using ir::PrimOp;
using ir::RegRef;
using ir::SymbolId;
using ir::Value;
using support::SourceLoc;

/// Largest admissible value of the iteration variable for a call site:
/// bound's assume upper bound minus one, if known.
std::optional<std::int64_t> max_iter(const ir::Program& prog, const CallSite& site) {
    if (!site.elastic()) return 0;
    if (const auto ub = analysis::assume_upper_bound(prog, site.loop_bound)) {
        return *ub - 1;
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// index-bounds
// ---------------------------------------------------------------------------

class IndexBoundsPass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "index-bounds"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "symbolic-array and register-matrix indices stay in bounds for every "
               "admissible loop bound";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        for (const CallSite& site : prog.flow) {
            const ir::Action& action = prog.action(site.action);
            const std::string where = "in " + action.name;
            for (const ir::Cond& guard : site.guards) {
                check_value(ctx, site, guard.loc, guard.lhs, where + " (guard)");
                check_value(ctx, site, guard.loc, guard.rhs, where + " (guard)");
            }
            for (const PrimOp& op : action.ops) {
                if (op.dst) check_value(ctx, site, op.loc, *op.dst, where);
                if (op.reg) check_value(ctx, site, op.loc, Value(*op.reg), where);
                if (op.reg_index) check_value(ctx, site, op.loc, *op.reg_index, where);
                for (const Value& src : op.srcs) check_value(ctx, site, op.loc, src, where);
                if (op.kind == ir::PrimKind::Hash) {
                    if (const auto* mod = std::get_if<RegRef>(&*op.modulus)) {
                        check_value(ctx, site, op.loc, Value(*mod), where + " (hash range)");
                    }
                }
            }
        }
    }

private:
    void check_value(LintContext& ctx, const CallSite& site, const SourceLoc& loc, const Value& v,
                     const std::string& what) {
        if (const auto* m = std::get_if<MetaRef>(&v)) {
            const ir::MetaField& f = ctx.program().meta(m->field);
            if (f.is_array()) {
                check_index(ctx, site, loc, m->index, *f.array, what + " meta." + f.name);
            }
        } else if (const auto* r = std::get_if<RegRef>(&v)) {
            check_index(ctx, site, loc, r->instance, ctx.program().reg(r->reg).instances,
                        what + " register " + ctx.program().reg(r->reg).name);
        }
    }

    /// Checks 0 ≤ f(i) < extent for all admissible iterations i of `site`.
    /// `extent` may be symbolic; a symbolic extent equal to the loop bound
    /// admits exactly the indices 0..i (contiguity of instantiation).
    void check_index(LintContext& ctx, const CallSite& site, const SourceLoc& loc,
                     const Affine& index, const ir::Extent& extent, const std::string& what) {
        const ir::Program& prog = ctx.program();
        const std::int64_t at0 = index.at(0);
        if (index.coeff_iter >= 0 && at0 < 0) {
            ctx.error(loc, what + ": index " + std::to_string(at0) +
                               " is negative at iteration 0");
            return;
        }
        if (index.coeff_iter < 0) {
            // Decreasing index: minimum at the largest iteration.
            if (const auto mi = max_iter(prog, site)) {
                if (index.at(*mi) < 0) {
                    ctx.error(loc, what + ": index becomes negative at iteration " +
                                       std::to_string(*mi));
                    return;
                }
            } else {
                ctx.warning(loc,
                            what + ": decreasing index with unbounded loop cannot be proven in "
                                   "bounds (add an assume upper bound)",
                            "add `assume " + prog.symbol(site.loop_bound).name +
                                " <= ...;` to bound the loop");
                return;
            }
        }

        if (extent.symbolic()) {
            if (site.elastic() && extent.sym == site.loop_bound) {
                // Element k exists whenever iteration k is instantiated, and
                // iterations are contiguous from 0 — so f(i) ≤ i is safe.
                if (index.coeff_iter > 1 || (index.coeff_iter == 1 && index.constant > 0) ||
                    (index.coeff_iter == 0 && index.constant > 0)) {
                    ctx.error(loc,
                              what + ": index can exceed the iteration count (f(i) > i); element "
                                     "f(i) need not be instantiated",
                              "index elements with at most the iteration variable itself");
                }
                return;
            }
            // Different symbol: compare worst-case index against the
            // extent's assumed minimum.
            const auto extent_min = analysis::assume_lower_bound(prog, extent.sym);
            std::optional<std::int64_t> worst;
            if (index.coeff_iter <= 0) {
                worst = index.at(0);
            } else if (const auto mi = max_iter(prog, site)) {
                worst = index.at(*mi);
            }
            if (!worst) {
                ctx.warning(loc,
                            what + ": cannot bound the index (no assume upper bound on the loop)",
                            "add an assume upper bound on the loop's symbolic bound");
                return;
            }
            if (!extent_min || *worst >= *extent_min) {
                ctx.warning(loc, what + ": index may reach " + std::to_string(*worst) +
                                     " but the array is only assumed to have at least " +
                                     (extent_min ? std::to_string(*extent_min) : std::string("1")) +
                                     " elements",
                            "raise the array's assume lower bound above the largest index");
            }
            return;
        }
        // Concrete extent.
        std::optional<std::int64_t> worst;
        if (index.coeff_iter <= 0) {
            worst = index.at(0);
        } else if (const auto mi = max_iter(prog, site)) {
            worst = index.at(*mi);
        }
        if (!worst) {
            ctx.warning(loc, what + ": cannot bound the index (no assume upper bound on the loop)",
                        "add an assume upper bound on the loop's symbolic bound");
            return;
        }
        if (*worst >= extent.literal) {
            ctx.error(loc, what + ": index reaches " + std::to_string(*worst) +
                               " but the array has " + std::to_string(extent.literal) +
                               " elements");
        }
    }
};

// ---------------------------------------------------------------------------
// hash-range
// ---------------------------------------------------------------------------

class HashRangePass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "hash-range"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "register indices produced by hash were ranged over the same register";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        for (const CallSite& site : prog.flow) {
            const ir::Action& action = prog.action(site.action);
            const std::string where = "in " + action.name;
            std::map<std::tuple<ir::MetaFieldId, std::int64_t, std::int64_t>, const PrimOp*>
                hash_by_dst;
            for (const PrimOp& op : action.ops) {
                if (op.kind == ir::PrimKind::Hash) {
                    hash_by_dst[{op.dst->field, op.dst->index.coeff_iter,
                                 op.dst->index.constant}] = &op;
                    continue;
                }
                if (!op.reg || !op.reg_index) continue;
                const auto* idx = std::get_if<MetaRef>(&*op.reg_index);
                if (idx == nullptr) continue;
                const auto it =
                    hash_by_dst.find({idx->field, idx->index.coeff_iter, idx->index.constant});
                if (it == hash_by_dst.end()) continue;
                const PrimOp& hash_op = *it->second;
                const auto* range = std::get_if<RegRef>(&*hash_op.modulus);
                if (range == nullptr) continue;
                if (range->reg != op.reg->reg || !(range->instance == op.reg->instance)) {
                    // Distinct arrays are fine when they provably have the
                    // same element count (e.g. a key array and its value
                    // array are declared with the same symbolic size).
                    const ir::Extent& a = prog.reg(range->reg).elems;
                    const ir::Extent& b = prog.reg(op.reg->reg).elems;
                    const bool same_size =
                        (a.symbolic() && b.symbolic() && a.sym == b.sym) ||
                        (!a.symbolic() && !b.symbolic() && a.literal == b.literal);
                    if (same_size) continue;
                    ctx.warning(op.loc,
                                where + ": register " + prog.reg(op.reg->reg).name +
                                    " is indexed by a hash ranged over " +
                                    prog.reg(range->reg).name +
                                    " — index distribution will not match the array size",
                                "range the hash over " + prog.reg(op.reg->reg).name +
                                    " (or give both registers the same element count)");
                }
            }
        }
    }
};

// ---------------------------------------------------------------------------
// seed-overlap
// ---------------------------------------------------------------------------

class SeedOverlapPass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "seed-overlap"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "distinct register matrices are hashed with disjoint seed ranges";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        struct SeedUse {
            ir::RegisterId reg = ir::kNoId;
            Affine seed;
            SymbolId loop = ir::kNoId;
            SourceLoc loc;
        };
        std::vector<SeedUse> uses;
        for (const CallSite& site : prog.flow) {
            for (const PrimOp& op : prog.action(site.action).ops) {
                if (op.kind != ir::PrimKind::Hash) continue;
                if (const auto* mod = std::get_if<RegRef>(&*op.modulus)) {
                    uses.push_back({mod->reg, op.seed, site.loop_bound, op.loc});
                }
            }
        }
        const auto range_of = [&](const SeedUse& u) -> std::pair<std::int64_t, std::int64_t> {
            std::int64_t hi_iter = 0;
            if (u.loop != ir::kNoId) {
                if (const auto ub = analysis::assume_upper_bound(prog, u.loop)) {
                    hi_iter = *ub - 1;
                } else {
                    hi_iter = 64;  // conservative window for unbounded loops
                }
            }
            const std::int64_t a = u.seed.at(0);
            const std::int64_t b = u.seed.at(hi_iter);
            return {std::min(a, b), std::max(a, b)};
        };
        for (std::size_t a = 0; a < uses.size(); ++a) {
            for (std::size_t b = a + 1; b < uses.size(); ++b) {
                const SeedUse& x = uses[a];
                const SeedUse& y = uses[b];
                if (x.reg == y.reg) continue;
                const auto [xl, xh] = range_of(x);
                const auto [yl, yh] = range_of(y);
                if (std::max(xl, yl) <= std::min(xh, yh)) {
                    ctx.warning(y.loc,
                                "registers " + prog.reg(x.reg).name + " and " +
                                    prog.reg(y.reg).name +
                                    " are hashed with overlapping seed ranges; their hash "
                                    "functions are correlated",
                                "offset one seed expression so the ranges are disjoint");
                }
            }
        }
    }
};

// ---------------------------------------------------------------------------
// dead-code
// ---------------------------------------------------------------------------

class DeadCodePass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "dead-code"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "declared symbols, registers, metadata, and actions are reachable from the flow";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        std::set<ir::MetaFieldId> used_meta;
        std::set<ir::RegisterId> used_regs;
        std::set<ir::ActionId> used_actions;
        const auto mark = [&](const Value& v) {
            if (const auto* m = std::get_if<MetaRef>(&v)) {
                used_meta.insert(m->field);
            } else if (const auto* r = std::get_if<RegRef>(&v)) {
                used_regs.insert(r->reg);
            }
        };
        for (const CallSite& site : prog.flow) {
            used_actions.insert(site.action);
            for (const ir::Cond& guard : site.guards) {
                mark(guard.lhs);
                mark(guard.rhs);
            }
            for (const PrimOp& op : prog.action(site.action).ops) {
                if (op.dst) mark(*op.dst);
                if (op.reg) mark(Value(*op.reg));
                if (op.reg_index) mark(*op.reg_index);
                for (const Value& src : op.srcs) mark(src);
                if (op.kind == ir::PrimKind::Hash) {
                    if (const auto* mod = std::get_if<RegRef>(&*op.modulus)) {
                        used_regs.insert(mod->reg);
                    }
                }
            }
        }
        for (const ir::SymbolicVar& sym : prog.symbols) {
            if (sym.role == ir::SymbolRole::Unused) {
                ctx.warning(sym.loc,
                            "symbolic value '" + sym.name + "' is declared but never used",
                            "delete the declaration (or size something with it)");
            }
        }
        for (std::size_t i = 0; i < prog.registers.size(); ++i) {
            if (used_regs.count(static_cast<ir::RegisterId>(i)) == 0) {
                ctx.warning(prog.registers[i].loc, "register '" + prog.registers[i].name +
                                                       "' is declared but never accessed",
                            "delete the declaration");
            }
        }
        for (std::size_t i = 0; i < prog.meta_fields.size(); ++i) {
            if (used_meta.count(static_cast<ir::MetaFieldId>(i)) == 0) {
                ctx.warning(prog.meta_fields[i].loc, "metadata field '" +
                                                         prog.meta_fields[i].name +
                                                         "' is declared but never accessed",
                            "delete the declaration");
            }
        }
        for (std::size_t i = 0; i < prog.actions.size(); ++i) {
            if (used_actions.count(static_cast<ir::ActionId>(i)) == 0) {
                ctx.warning(prog.actions[i].loc,
                            "action '" + prog.actions[i].name + "' is never invoked",
                            "delete the action (or apply it from a control)");
            }
        }
    }
};

// ---------------------------------------------------------------------------
// constant-guard
// ---------------------------------------------------------------------------

bool constant_guard_holds(ir::CmpOp op, std::int64_t l, std::int64_t r) {
    switch (op) {
        case ir::CmpOp::Lt: return l < r;
        case ir::CmpOp::Le: return l <= r;
        case ir::CmpOp::Gt: return l > r;
        case ir::CmpOp::Ge: return l >= r;
        case ir::CmpOp::Eq: return l == r;
        case ir::CmpOp::Ne: return l != r;
    }
    return false;
}

class ConstantGuardPass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "constant-guard"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "guards do not compare two compile-time constants";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        for (const CallSite& site : prog.flow) {
            const std::string where = "in " + prog.action(site.action).name;
            for (const ir::Cond& guard : site.guards) {
                const auto* l = std::get_if<Affine>(&guard.lhs);
                const auto* r = std::get_if<Affine>(&guard.rhs);
                if (l != nullptr && r != nullptr && l->is_literal() && r->is_literal()) {
                    ctx.warning(guard.loc,
                                where + ": guard compares two constants (" +
                                    std::to_string(l->constant) + " vs " +
                                    std::to_string(r->constant) + ") — always " +
                                    (constant_guard_holds(guard.op, l->constant, r->constant)
                                         ? "true"
                                         : "false"),
                                "fold the guard away (or compare a run-time field)");
                }
            }
        }
    }
};

// ---------------------------------------------------------------------------
// guard-unreachable
// ---------------------------------------------------------------------------

class GuardUnreachablePass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "guard-unreachable"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "guards are neither statically false (dead branch) nor statically true "
               "(redundant) under the assume-derived bounds";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        for (const CallSite& site : prog.flow) {
            const std::string where = "in " + prog.action(site.action).name;
            for (const ir::Cond& guard : site.guards) {
                const auto* l = std::get_if<Affine>(&guard.lhs);
                const auto* r = std::get_if<Affine>(&guard.rhs);
                if (l != nullptr && r != nullptr && l->is_literal() && r->is_literal()) {
                    continue;  // constant-guard's domain
                }
                const Truth truth = decide(ctx, site, guard);
                if (truth == Truth::False) {
                    ctx.warning(guard.loc,
                                where + ": guard is false for every admissible symbolic "
                                        "assignment — the guarded call is unreachable",
                                "delete the branch, or widen the assume bounds it depends on");
                } else if (truth == Truth::True) {
                    ctx.warning(guard.loc,
                                where + ": guard is true for every admissible symbolic "
                                        "assignment — the condition is redundant",
                                "drop the guard (the call runs unconditionally)");
                }
            }
        }
    }

private:
    Truth decide(LintContext& ctx, const CallSite& site, const ir::Cond& guard) const {
        return guard_truth(ctx.bounds(), ctx.program(), site, guard);
    }
};

// ---------------------------------------------------------------------------
// width-overflow
// ---------------------------------------------------------------------------

class WidthOverflowPass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "width-overflow"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "stored values provably fit the declared cell / field width";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        for (const CallSite& site : prog.flow) {
            const ir::Action& action = prog.action(site.action);
            const std::string where = "in " + action.name;
            const Interval iter = ctx.bounds().iterations(site.loop_bound);
            for (const PrimOp& op : action.ops) {
                switch (op.kind) {
                    case ir::PrimKind::RegAdd:
                    case ir::PrimKind::RegWrite:
                    case ir::PrimKind::RegMin:
                    case ir::PrimKind::RegMax:
                        check_store(ctx, where, op, iter);
                        break;
                    case ir::PrimKind::RegRead:
                        check_read(ctx, where, op);
                        break;
                    case ir::PrimKind::Hash:
                        check_hash(ctx, where, op);
                        break;
                    case ir::PrimKind::Set:
                        check_set(ctx, where, op, iter);
                        break;
                    default:
                        break;
                }
            }
        }
    }

private:
    static Interval width_range(int bits) { return Interval::of_width(bits); }

    void check_store(LintContext& ctx, const std::string& where, const PrimOp& op,
                     const Interval& iter) {
        const ir::Program& prog = ctx.program();
        const ir::RegisterArray& reg = prog.reg(op.reg->reg);
        const Interval cell = width_range(reg.width);
        const Value& src = op.srcs.front();
        if (const auto* a = std::get_if<Affine>(&src)) {
            const Interval v = ctx.bounds().affine(*a, iter);
            if (!v.empty() && ((v.bounded_above() && v.hi > cell.hi) || v.lo < 0)) {
                ctx.warning(op.loc,
                            where + ": value can reach " + std::to_string(v.lo < 0 ? v.lo : v.hi) +
                                " but register '" + reg.name + "' cells are " +
                                std::to_string(reg.width) + " bits wide (max " +
                                std::to_string(cell.hi) + ")",
                            "widen the register cells or clamp the operand");
            }
        } else if (const auto* m = std::get_if<MetaRef>(&src)) {
            const ir::MetaField& f = prog.meta(m->field);
            if (f.width > reg.width) {
                truncation(ctx, where, op.loc, "meta." + f.name, f.width,
                           "register '" + reg.name + "'", reg.width);
            }
        } else if (const auto* p = std::get_if<PacketRef>(&src)) {
            const ir::PacketField& f = prog.packet(p->field);
            if (f.width > reg.width) {
                truncation(ctx, where, op.loc, "pkt." + f.name, f.width,
                           "register '" + reg.name + "'", reg.width);
            }
        }
        // A RegAdd accumulates without bound: if the cell is narrower than
        // the add amount's width requirement we already warned above; the
        // classic saturating-counter sizing is the operator's choice, so we
        // stay quiet for in-range amounts.
        if (op.dst) {
            const ir::MetaField& dst = prog.meta(op.dst->field);
            if (reg.width > dst.width) {
                truncation(ctx, where, op.loc, "register '" + reg.name + "'", reg.width,
                           "metadata field meta." + dst.name, dst.width);
            }
        }
    }

    void check_read(LintContext& ctx, const std::string& where, const PrimOp& op) {
        const ir::Program& prog = ctx.program();
        const ir::RegisterArray& reg = prog.reg(op.reg->reg);
        const ir::MetaField& dst = prog.meta(op.dst->field);
        if (reg.width > dst.width) {
            truncation(ctx, where, op.loc, "register '" + reg.name + "'", reg.width,
                       "metadata field meta." + dst.name, dst.width);
        }
    }

    void check_hash(LintContext& ctx, const std::string& where, const PrimOp& op) {
        const ir::Program& prog = ctx.program();
        const ir::MetaField& dst = prog.meta(op.dst->field);
        const Interval dst_range = width_range(dst.width);
        std::optional<std::int64_t> max_hash;
        if (const auto* lit = std::get_if<std::int64_t>(&*op.modulus)) {
            max_hash = *lit - 1;
        } else if (const auto* reg = std::get_if<RegRef>(&*op.modulus)) {
            const ir::Extent& elems = prog.reg(reg->reg).elems;
            if (!elems.symbolic()) max_hash = elems.literal - 1;
            // A symbolic range is sized by the ILP; its upper bound is the
            // memory budget, which cannot be decided here — stay quiet.
        }
        if (max_hash && *max_hash > dst_range.hi) {
            ctx.warning(op.loc,
                        where + ": hash result can reach " + std::to_string(*max_hash) +
                            " but destination meta." + dst.name + " is only " +
                            std::to_string(dst.width) + " bits wide (max " +
                            std::to_string(dst_range.hi) + ")",
                        "widen the destination field or shrink the hash range");
        }
    }

    void check_set(LintContext& ctx, const std::string& where, const PrimOp& op,
                   const Interval& iter) {
        const ir::Program& prog = ctx.program();
        const ir::MetaField& dst = prog.meta(op.dst->field);
        const Interval dst_range = width_range(dst.width);
        const Value& src = op.srcs.front();
        if (const auto* a = std::get_if<Affine>(&src)) {
            const Interval v = ctx.bounds().affine(*a, iter);
            if (!v.empty() && ((v.bounded_above() && v.hi > dst_range.hi) || v.lo < 0)) {
                ctx.warning(op.loc,
                            where + ": value can reach " + std::to_string(v.lo < 0 ? v.lo : v.hi) +
                                " but meta." + dst.name + " is only " + std::to_string(dst.width) +
                                " bits wide (max " + std::to_string(dst_range.hi) + ")",
                            "widen the destination field");
            }
        } else if (const auto* m = std::get_if<MetaRef>(&src)) {
            const ir::MetaField& f = prog.meta(m->field);
            if (f.width > dst.width) {
                truncation(ctx, where, op.loc, "meta." + f.name, f.width,
                           "metadata field meta." + dst.name, dst.width);
            }
        } else if (const auto* p = std::get_if<PacketRef>(&src)) {
            const ir::PacketField& f = prog.packet(p->field);
            if (f.width > dst.width) {
                truncation(ctx, where, op.loc, "pkt." + f.name, f.width,
                           "metadata field meta." + dst.name, dst.width);
            }
        }
    }

    void truncation(LintContext& ctx, const std::string& where, const SourceLoc& loc,
                    const std::string& src, int src_width, const std::string& dst, int dst_width) {
        ctx.warning(loc, where + ": " + std::to_string(src_width) + "-bit " + src +
                             " is truncated into " + std::to_string(dst_width) + "-bit " + dst,
                    "match the widths to avoid silently dropping high bits");
    }
};

// ---------------------------------------------------------------------------
// schedule-infeasible
// ---------------------------------------------------------------------------

class ScheduleInfeasiblePass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "schedule-infeasible"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "the dependency graph is acyclic and its minimum stage requirement fits the "
               "target before the ILP runs";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        if (prog.flow.empty()) return;
        const target::TargetSpec& target = ctx.target();

        // Lint at the smallest admissible unrolling: one iteration per
        // elastic loop (raised to the assume lower bound). If even that
        // cannot be scheduled, no elastic sizing will help.
        std::vector<std::int64_t> bounds(prog.symbols.size(), 1);
        for (std::size_t s = 0; s < prog.symbols.size(); ++s) {
            if (prog.symbols[s].role != ir::SymbolRole::IterationCount) continue;
            if (const auto lb =
                    analysis::assume_lower_bound(prog, static_cast<SymbolId>(s))) {
                bounds[s] = std::max<std::int64_t>(1, *lb);
            }
        }
        const std::vector<analysis::Instance> instances =
            analysis::instantiate_all(prog, bounds);
        const analysis::DepGraph g = analysis::build_dep_graph(prog, target, instances);

        const auto node_loc = [&](int node) -> const SourceLoc& {
            const analysis::Instance& inst =
                g.instances[static_cast<std::size_t>(g.members[static_cast<std::size_t>(node)]
                                                         .front())];
            return prog.flow[static_cast<std::size_t>(inst.call)].loc;
        };
        const auto node_name = [&](int node) {
            const analysis::Instance& inst =
                g.instances[static_cast<std::size_t>(g.members[static_cast<std::size_t>(node)]
                                                         .front())];
            const CallSite& site = prog.flow[static_cast<std::size_t>(inst.call)];
            std::string name = prog.action(site.action).name;
            if (site.elastic()) name += "[" + std::to_string(inst.iter) + "]";
            return name;
        };
        const auto chain_string = [&](const std::vector<int>& nodes) {
            std::string out;
            for (const int n : nodes) {
                if (!out.empty()) out += " -> ";
                out += node_name(n);
            }
            return out;
        };

        if (g.infeasible) {
            ctx.error(prog.flow.front().loc,
                      "dependency graph is unschedulable: " + g.infeasible_reason,
                      "restructure the conflicting register/metadata accesses");
            return;
        }
        const analysis::CriticalPath path = analysis::critical_path(g);
        if (path.cyclic) {
            ctx.error(path.nodes.empty() ? prog.flow.front().loc : node_loc(path.nodes.front()),
                      "dependency cycle prevents any stage assignment: " +
                          chain_string(path.nodes),
                      "break the cycle by splitting one of the actions");
            return;
        }
        if (path.stages > target.stages) {
            ctx.error(path.nodes.empty() ? prog.flow.front().loc : node_loc(path.nodes.front()),
                      "program needs at least " + std::to_string(path.stages) +
                          " stages even at the smallest admissible sizing, but target '" +
                          target.name + "' has " + std::to_string(target.stages) +
                          "; critical dependency chain: " + chain_string(path.nodes),
                      "shorten the dependency chain or target a deeper pipeline");
        }
    }
};

}  // namespace

void register_builtin_passes(PassRegistry& registry) {
    if (registry.find("index-bounds") != nullptr) return;  // already registered
    registry.add(std::make_unique<IndexBoundsPass>());
    registry.add(std::make_unique<HashRangePass>());
    registry.add(std::make_unique<SeedOverlapPass>());
    registry.add(std::make_unique<DeadCodePass>());
    registry.add(std::make_unique<ConstantGuardPass>());
    registry.add(std::make_unique<GuardUnreachablePass>());
    registry.add(std::make_unique<WidthOverflowPass>());
    registry.add(std::make_unique<ScheduleInfeasiblePass>());
    registry.add(make_cross_flow_interference_pass());
    registry.add(make_dead_register_write_pass());
    registry.add(make_unused_extern_pass());
}

}  // namespace p4all::verify
