#include "verify/lint.hpp"

#include <algorithm>
#include <tuple>

namespace p4all::verify {

namespace {

const char* severity_name(support::Severity severity) noexcept {
    switch (severity) {
        case support::Severity::Note: return "note";
        case support::Severity::Warning: return "warning";
        case support::Severity::Error: return "error";
    }
    return "?";
}

/// SARIF levels: error / warning / note.
const char* sarif_level(support::Severity severity) noexcept {
    return severity_name(severity);
}

}  // namespace

std::string Finding::to_string() const {
    std::string out = loc.known() ? loc.to_string() : std::string(loc.file.empty() ? "<program>" : loc.file);
    out += ": ";
    out += severity_name(severity);
    out += ": ";
    out += message;
    out += " [";
    out += check;
    out += "]";
    return out;
}

void LintContext::error(support::SourceLoc loc, std::string message, std::string fix_hint) {
    report({support::Severity::Error, active_check_, std::move(loc), std::move(message),
            std::move(fix_hint)});
}

void LintContext::warning(support::SourceLoc loc, std::string message, std::string fix_hint) {
    report({support::Severity::Warning, active_check_, std::move(loc), std::move(message),
            std::move(fix_hint)});
}

void LintContext::note(support::SourceLoc loc, std::string message, std::string fix_hint) {
    report({support::Severity::Note, active_check_, std::move(loc), std::move(message),
            std::move(fix_hint)});
}

PassRegistry& PassRegistry::global() {
    static PassRegistry* registry = [] {
        auto* r = new PassRegistry();
        register_builtin_passes(*r);
        return r;
    }();
    return *registry;
}

void PassRegistry::add(std::unique_ptr<LintPass> pass) {
    passes_.push_back(std::move(pass));
}

LintPass* PassRegistry::find(std::string_view id) const noexcept {
    for (const auto& pass : passes_) {
        if (pass->id() == id) return pass.get();
    }
    return nullptr;
}

std::vector<LintPass*> PassRegistry::passes() const {
    std::vector<LintPass*> out;
    out.reserve(passes_.size());
    for (const auto& pass : passes_) out.push_back(pass.get());
    return out;
}

bool LintResult::has_errors() const noexcept {
    return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == support::Severity::Error;
    });
}

std::string LintResult::render() const {
    std::string out;
    for (const Finding& f : findings) {
        out += f.to_string();
        out += '\n';
        if (!f.fix_hint.empty()) {
            out += "    hint: ";
            out += f.fix_hint;
            out += '\n';
        }
    }
    return out;
}

support::Json LintResult::to_json() const {
    support::Json rules = support::Json::array();
    for (const std::string& id : checks_run) {
        support::Json rule = support::Json::object();
        rule.set("id", id);
        if (const LintPass* pass = PassRegistry::global().find(id)) {
            support::Json text = support::Json::object();
            text.set("text", std::string(pass->description()));
            rule.set("shortDescription", std::move(text));
        }
        rules.push_back(std::move(rule));
    }

    support::Json results = support::Json::array();
    for (const Finding& f : findings) {
        support::Json message = support::Json::object();
        message.set("text", f.message);

        support::Json result = support::Json::object();
        result.set("ruleId", f.check);
        result.set("level", std::string(sarif_level(f.severity)));
        result.set("message", std::move(message));
        if (!f.fix_hint.empty()) {
            support::Json props = support::Json::object();
            props.set("fixHint", f.fix_hint);
            result.set("properties", std::move(props));
        }
        if (f.loc.known()) {
            support::Json artifact = support::Json::object();
            artifact.set("uri", f.loc.file);
            support::Json region = support::Json::object();
            region.set("startLine", static_cast<std::int64_t>(f.loc.line));
            region.set("startColumn", static_cast<std::int64_t>(f.loc.column));
            support::Json physical = support::Json::object();
            physical.set("artifactLocation", std::move(artifact));
            physical.set("region", std::move(region));
            support::Json location = support::Json::object();
            location.set("physicalLocation", std::move(physical));
            support::Json locations = support::Json::array();
            locations.push_back(std::move(location));
            result.set("locations", std::move(locations));
        }
        results.push_back(std::move(result));
    }

    support::Json driver = support::Json::object();
    driver.set("name", "p4all-lint");
    driver.set("informationUri", "docs/LINTING.md");
    driver.set("rules", std::move(rules));
    support::Json tool = support::Json::object();
    tool.set("driver", std::move(driver));
    support::Json run = support::Json::object();
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    support::Json runs = support::Json::array();
    runs.push_back(std::move(run));

    support::Json doc = support::Json::object();
    doc.set("version", "2.1.0");
    doc.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    doc.set("runs", std::move(runs));
    return doc;
}

LintResult run_lint(const ir::Program& prog, const LintOptions& options) {
    PassRegistry& registry = PassRegistry::global();
    std::vector<LintPass*> selected;
    if (options.checks.empty()) {
        selected = registry.passes();
    } else {
        for (const std::string& id : options.checks) {
            LintPass* pass = registry.find(id);
            if (pass == nullptr) {
                throw support::CompileError("unknown lint check '" + id +
                                            "' (see --list-checks for the registered passes)");
            }
            selected.push_back(pass);
        }
    }

    LintContext ctx(prog, options);
    LintResult result;
    for (LintPass* pass : selected) {
        ctx.set_active_check(pass->id());
        pass->run(ctx);
        result.checks_run.emplace_back(pass->id());
    }
    result.findings = ctx.take_findings();

    if (options.werror) {
        for (Finding& f : result.findings) {
            if (f.severity == support::Severity::Warning) {
                f.severity = support::Severity::Error;
            }
        }
    }

    // Full-tuple sort key: identical inputs must yield byte-identical output
    // regardless of pass registration or execution order, so two findings at
    // the same position are ordered by check id, then severity, then text.
    std::stable_sort(result.findings.begin(), result.findings.end(),
                     [](const Finding& a, const Finding& b) {
                         return std::tie(a.loc.file, a.loc.line, a.loc.column, a.check,
                                         a.severity, a.message) <
                                std::tie(b.loc.file, b.loc.line, b.loc.column, b.check,
                                         b.severity, b.message);
                     });
    // One action applied from several call sites repeats its per-op findings
    // verbatim; collapse exact duplicates.
    result.findings.erase(
        std::unique(result.findings.begin(), result.findings.end(),
                    [](const Finding& a, const Finding& b) {
                        return a.check == b.check && a.loc == b.loc && a.message == b.message &&
                               a.severity == b.severity;
                    }),
        result.findings.end());
    return result;
}

void to_diagnostics(const LintResult& result, support::Diagnostics& diags) {
    for (const Finding& f : result.findings) {
        std::string message = f.message + " [" + f.check + "]";
        switch (f.severity) {
            case support::Severity::Note: diags.note(f.loc, std::move(message)); break;
            case support::Severity::Warning: diags.warning(f.loc, std::move(message)); break;
            case support::Severity::Error: diags.error(f.loc, std::move(message)); break;
        }
    }
}

}  // namespace p4all::verify
