// Interval analysis over symbolic values and affine index expressions.
//
// The lint passes need conservative ranges for the quantities appearing in
// the elaborated IR: symbolic sizes (bounded by `assume` constraints),
// iteration variables (0 .. bound-1), affine functions of the iteration
// variable, and the run-time contents of fixed-width fields (0 .. 2^w - 1).
// BoundEnv derives all of these from a Program once; Interval is the shared
// abstract domain. All arithmetic saturates at the int64 limits, so the
// domain is closed under the operations (and UBSan-clean) even for the
// "unbounded" rays produced by assume-less symbols.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"

namespace p4all::verify {

/// A closed integer interval [lo, hi]. The int64 limits act as -inf / +inf.
/// Empty intervals (lo > hi) arise from contradictory constraints.
struct Interval {
    static constexpr std::int64_t kNegInf = INT64_MIN;
    static constexpr std::int64_t kPosInf = INT64_MAX;

    std::int64_t lo = kNegInf;
    std::int64_t hi = kPosInf;

    [[nodiscard]] static Interval all() noexcept { return {}; }
    [[nodiscard]] static Interval point(std::int64_t v) noexcept { return {v, v}; }
    [[nodiscard]] static Interval of(std::int64_t lo, std::int64_t hi) noexcept {
        return {lo, hi};
    }
    /// The value range of an unsigned w-bit field: [0, 2^w - 1].
    [[nodiscard]] static Interval of_width(int bits) noexcept;

    [[nodiscard]] bool empty() const noexcept { return lo > hi; }
    [[nodiscard]] bool is_point() const noexcept { return lo == hi; }
    [[nodiscard]] bool contains(std::int64_t v) const noexcept { return lo <= v && v <= hi; }
    [[nodiscard]] bool bounded_below() const noexcept { return lo != kNegInf; }
    [[nodiscard]] bool bounded_above() const noexcept { return hi != kPosInf; }

    /// Intersection and convex hull.
    [[nodiscard]] Interval meet(const Interval& o) const noexcept;
    [[nodiscard]] Interval join(const Interval& o) const noexcept;

    /// Standard interval widening: a bound that moved since the last
    /// iterate jumps straight to its infinity, so ascending chains in a
    /// fixpoint computation stabilize after finitely many steps.
    [[nodiscard]] Interval widen(const Interval& next) const noexcept;

    friend bool operator==(const Interval&, const Interval&) = default;
};

/// Saturating scalar arithmetic (infinities stay pinned, no signed overflow).
[[nodiscard]] std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept;
[[nodiscard]] std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept;

/// Interval arithmetic built on the saturating scalar ops.
[[nodiscard]] Interval operator+(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval operator-(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval operator*(const Interval& a, const Interval& b) noexcept;

/// Three-valued truth for comparisons evaluated over intervals.
enum class Truth { False, True, Unknown };

/// Decides `l op r` when it holds (or fails) for every pair of values drawn
/// from the operand intervals; Unknown otherwise (or when either is empty).
[[nodiscard]] Truth compare(ir::CmpOp op, const Interval& l, const Interval& r) noexcept;

/// Models truncation of a value into an unsigned `bits`-wide cell (the
/// simulator's `& mask` semantics): an interval already inside [0, 2^bits)
/// passes through unchanged; anything that could wrap collapses to the full
/// width range.
[[nodiscard]] Interval wrap_to_width(const Interval& a, int bits) noexcept;

/// Logical shifts on unsigned `width`-bit values. Shift amounts >= width
/// yield the point interval {0} (every bit is shifted out) rather than the
/// C++ undefined behaviour; negative amounts are treated as unknown.
[[nodiscard]] Interval shift_left(const Interval& a, int amount, int width) noexcept;
[[nodiscard]] Interval shift_right(const Interval& a, int amount, int width) noexcept;

/// Assume-derived bounds for one program. Symbolic values default to
/// [1, +inf) — sizes are at least 1 — and are refined by every
/// single-variable linear `assume` constraint.
class BoundEnv {
public:
    explicit BoundEnv(const ir::Program& prog);

    /// The admissible values of symbol `sym`.
    [[nodiscard]] Interval symbol(ir::SymbolId sym) const;

    /// The admissible iteration values of a loop bounded by `loop_bound`:
    /// [0, max(bound) - 1], or the single iteration {0} for kNoId.
    [[nodiscard]] Interval iterations(ir::SymbolId loop_bound) const;

    /// The range of `a` evaluated over the iteration interval `iter`.
    [[nodiscard]] Interval affine(const ir::Affine& a, const Interval& iter) const;

    /// The admissible sizes denoted by an extent (literal or symbolic).
    [[nodiscard]] Interval extent(const ir::Extent& e) const;

private:
    const ir::Program* prog_;
    std::vector<Interval> symbols_;  // indexed by SymbolId
};

/// Decides a guard of `site` purely from the assume-derived bounds: True or
/// False only when the comparison holds (or fails) for every admissible
/// symbolic assignment and loop iteration. Affine-vs-affine guards compare
/// the operand difference, which stays exact for correlated operands like
/// `i < i + 1`; metadata and packet operands range over their full width.
/// Shared by the guard-unreachable lint pass, the optimizer's guard rules,
/// and the rewrite-validity audit replay.
[[nodiscard]] Truth guard_truth(const BoundEnv& bounds, const ir::Program& prog,
                                const ir::CallSite& site, const ir::Cond& guard);

}  // namespace p4all::verify
