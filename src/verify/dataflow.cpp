// Monotone dataflow solver, the bundled abstract domains, register-bounds
// proof emission, and the cross-flow-interference (tenant taint) lint pass.
#include "verify/dataflow.hpp"

#include <algorithm>
#include <set>
#include <tuple>
#include <variant>

namespace p4all::verify {

// ---------------------------------------------------------------------------
// Views.
// ---------------------------------------------------------------------------

DataplaneView min_sizing_view(const ir::Program& prog) {
    DataplaneView view;
    const BoundEnv env(prog);

    std::vector<std::int64_t> bounds(prog.symbols.size(), 1);
    for (std::size_t s = 0; s < prog.symbols.size(); ++s) {
        if (prog.symbols[s].role != ir::SymbolRole::IterationCount) continue;
        const Interval dom = env.symbol(static_cast<ir::SymbolId>(s));
        bounds[s] = std::max<std::int64_t>(1, dom.empty() ? 1 : dom.lo);
    }

    // One stage per call site, program order: the weakest schedule any legal
    // layout can realize (depgraph precedence only ever merges stages).
    view.stage_count = static_cast<int>(prog.flow.size());
    for (const analysis::Instance& inst : analysis::instantiate_all(prog, bounds)) {
        view.instances.push_back({inst, inst.call});
    }

    for (const ViewInstance& vi : view.instances) {
        const ir::CallSite& site = prog.flow[static_cast<std::size_t>(vi.inst.call)];
        const ir::Action& action = prog.action(site.action);
        const std::int64_t param = site.iter_arg.at(vi.inst.iter);
        const auto note_row = [&](const ir::RegRef& rr) {
            const Interval elems = env.extent(prog.reg(rr.reg).elems);
            if (!elems.empty() && elems.is_point()) {
                view.reg_elems[{rr.reg, rr.instance.at(param)}] = elems.lo;
            }
        };
        for (const ir::PrimOp& op : action.ops) {
            if (op.reg) note_row(*op.reg);
            if (op.modulus) {
                if (const auto* rr = std::get_if<ir::RegRef>(&*op.modulus)) note_row(*rr);
            }
        }
    }
    return view;
}

std::optional<DataplaneView> bounded_sizing_view(const ir::Program& prog,
                                                 std::int64_t max_instances) {
    DataplaneView view;
    const BoundEnv env(prog);

    // Upper-bound every iteration symbol; instances past the lower bound
    // only exist under some sizings and become weak (optional) writers.
    std::vector<std::int64_t> uppers(prog.symbols.size(), 1);
    std::vector<std::int64_t> lowers(prog.symbols.size(), 1);
    for (std::size_t s = 0; s < prog.symbols.size(); ++s) {
        if (prog.symbols[s].role != ir::SymbolRole::IterationCount) continue;
        const Interval dom = env.symbol(static_cast<ir::SymbolId>(s));
        if (dom.empty() || !dom.bounded_above() || dom.hi < 1) return std::nullopt;
        uppers[s] = dom.hi;
        lowers[s] = std::max<std::int64_t>(1, dom.lo);
    }

    std::int64_t total = 0;
    for (const ir::CallSite& site : prog.flow) {
        total += site.elastic() ? uppers[static_cast<std::size_t>(site.loop_bound)] : 1;
        if (total > max_instances) return std::nullopt;
    }

    view.stage_count = static_cast<int>(prog.flow.size());
    for (const analysis::Instance& inst : analysis::instantiate_all(prog, uppers)) {
        const ir::CallSite& site = prog.flow[static_cast<std::size_t>(inst.call)];
        const bool optional =
            site.elastic() && inst.iter >= lowers[static_cast<std::size_t>(site.loop_bound)];
        view.instances.push_back({inst, inst.call, optional});
    }

    for (const ViewInstance& vi : view.instances) {
        const ir::CallSite& site = prog.flow[static_cast<std::size_t>(vi.inst.call)];
        const ir::Action& action = prog.action(site.action);
        const std::int64_t param = site.iter_arg.at(vi.inst.iter);
        const auto note_row = [&](const ir::RegRef& rr) {
            const Interval elems = env.extent(prog.reg(rr.reg).elems);
            if (!elems.empty() && elems.is_point()) {
                view.reg_elems[{rr.reg, rr.instance.at(param)}] = elems.lo;
            }
        };
        for (const ir::PrimOp& op : action.ops) {
            if (op.reg) note_row(*op.reg);
            if (op.modulus) {
                if (const auto* rr = std::get_if<ir::RegRef>(&*op.modulus)) note_row(*rr);
            }
        }
    }
    return view;
}

// ---------------------------------------------------------------------------
// Domain operations.
// ---------------------------------------------------------------------------

Interval IntervalDomain::min_(const Value& a, const Value& b) const {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval IntervalDomain::max_(const Value& a, const Value& b) const {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval IntervalDomain::hash_result(std::int64_t modulus, const std::vector<Value>&,
                                     int width) const {
    if (modulus > 0) return Interval::of(0, modulus - 1);
    return Interval::of_width(width);
}

KnownBitsValue KnownBitsDomain::bounded_by(std::uint64_t bound) {
    const int bits = bound == 0 ? 0 : 64 - __builtin_clzll(bound);
    if (bits >= 64) return {0, 0};
    return {~((1ULL << bits) - 1), 0};
}

KnownBitsValue KnownBitsDomain::add(const Value& a, const Value& b, int width) const {
    if (a.known == ~0ULL && b.known == ~0ULL) {
        return mask({~0ULL, a.value + b.value}, width);
    }
    // Exact trailing run: bits are known while both operands and the carry
    // into the position are known.
    std::uint64_t known = 0;
    std::uint64_t value = 0;
    int carry = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t bit = 1ULL << i;
        if (!(a.known & bit) || !(b.known & bit)) break;
        const int sum = static_cast<int>((a.value >> i) & 1) +
                        static_cast<int>((b.value >> i) & 1) + carry;
        if (sum & 1) value |= bit;
        known |= bit;
        carry = sum >> 1;
    }
    // Magnitude: the true sum never exceeds max(a) + max(b), so everything
    // above that bound's top bit is known zero.
    const unsigned __int128 max_sum =
        static_cast<unsigned __int128>(a.max_value()) + b.max_value();
    if (max_sum <= ~0ULL) {
        known |= bounded_by(static_cast<std::uint64_t>(max_sum)).known;
    }
    return mask({known, value}, width);
}

KnownBitsValue KnownBitsDomain::sub(const Value& a, const Value& b, int width) const {
    if (a.known == ~0ULL && b.known == ~0ULL) {
        return mask({~0ULL, a.value - b.value}, width);
    }
    return top(width);  // borrow can flip every bit
}

KnownBitsValue KnownBitsDomain::min_(const Value& a, const Value& b) const {
    if (a.known == ~0ULL && b.known == ~0ULL) {
        return {~0ULL, std::min(a.value, b.value)};
    }
    return bounded_by(std::min(a.max_value(), b.max_value()));
}

KnownBitsValue KnownBitsDomain::max_(const Value& a, const Value& b) const {
    if (a.known == ~0ULL && b.known == ~0ULL) {
        return {~0ULL, std::max(a.value, b.value)};
    }
    return bounded_by(std::max(a.max_value(), b.max_value()));
}

KnownBitsValue KnownBitsDomain::hash_result(std::int64_t modulus, const std::vector<Value>&,
                                            int width) const {
    if (modulus > 0) return bounded_by(static_cast<std::uint64_t>(modulus) - 1);
    return top(width);
}

KnownBitsValue KnownBitsDomain::shl(const Value& a, int amount, int width) {
    if (amount < 0) return {~width_mask(width), 0};
    if (amount >= width) return {~0ULL, 0};
    const std::uint64_t m = width_mask(width);
    const std::uint64_t known = (a.known << amount) | ((1ULL << amount) - 1);
    return {known | ~m, (a.value << amount) & m};
}

KnownBitsValue KnownBitsDomain::shr(const Value& a, int amount, int width) {
    if (amount < 0) return {~width_mask(width), 0};
    if (amount >= width) return {~0ULL, 0};
    const std::uint64_t m = width_mask(width);
    // Bits shifted in from beyond the width are zero, hence known.
    const std::uint64_t known = ((a.known & m) >> amount) | ~(m >> amount);
    return {known, (a.value & m) >> amount};
}

void TaintDomain::reg_store(ir::RegisterId reg, ir::PrimKind, Value stored, Value index) {
    Value& acc = accum_[reg];
    const Value added = stored | index;
    if ((acc | added) != acc) {
        acc |= added;
        dirty_ = true;
    }
}

bool TaintDomain::end_round() {
    const bool d = dirty_;
    dirty_ = false;
    return d;
}

// ---------------------------------------------------------------------------
// The solver.
// ---------------------------------------------------------------------------

template <typename Domain>
StageDataflow<Domain>::StageDataflow(const ir::Program& prog, const DataplaneView& view,
                                     Domain domain)
    : prog_(&prog), view_(&view), domain_(std::move(domain)) {
    int stages = view.stage_count;
    for (const ViewInstance& vi : view.instances) stages = std::max(stages, vi.stage + 1);
    by_stage_.assign(static_cast<std::size_t>(std::max(stages, 0)), {});
    for (std::size_t i = 0; i < view.instances.size(); ++i) {
        by_stage_[static_cast<std::size_t>(view.instances[i].stage)].push_back(
            static_cast<int>(i));
    }
    collect_slots();
}

template <typename Domain>
void StageDataflow<Domain>::collect_slots() {
    std::set<std::pair<ir::MetaFieldId, std::int64_t>> seen;
    const auto note = [&](const ir::MetaRef& m, std::int64_t param) {
        seen.insert({m.field, m.index.at(param)});
    };
    const auto note_value = [&](const ir::Value& v, std::int64_t param) {
        if (const auto* m = std::get_if<ir::MetaRef>(&v)) note(*m, param);
    };
    for (const ViewInstance& vi : view_->instances) {
        const ir::CallSite& site = prog_->flow[static_cast<std::size_t>(vi.inst.call)];
        const ir::Action& action = prog_->action(site.action);
        const std::int64_t param = site.iter_arg.at(vi.inst.iter);
        for (const ir::Cond& guard : site.guards) {
            note_value(guard.lhs, param);
            note_value(guard.rhs, param);
        }
        for (const ir::PrimOp& op : action.ops) {
            if (op.dst) note(*op.dst, param);
            if (op.reg_index) note_value(*op.reg_index, param);
            for (const ir::Value& src : op.srcs) note_value(src, param);
        }
    }
    for (const auto& key : seen) {
        slot_index_[key] = static_cast<int>(slots_.size());
        slots_.push_back({key.first, key.second, prog_->meta(key.first).width});
    }
}

template <typename Domain>
int StageDataflow<Domain>::slot_of(ir::MetaFieldId field, std::int64_t index) const {
    const auto it = slot_index_.find({field, index});
    return it == slot_index_.end() ? -1 : it->second;
}

template <typename Domain>
typename Domain::Value StageDataflow<Domain>::eval(const ir::Value& v,
                                                   const std::vector<Value>& env,
                                                   std::int64_t param) const {
    if (const auto* m = std::get_if<ir::MetaRef>(&v)) {
        const int slot = slot_of(m->field, m->index.at(param));
        if (slot >= 0) return env[static_cast<std::size_t>(slot)];
        return domain_.top(prog_->meta(m->field).width);
    }
    if (const auto* p = std::get_if<ir::PacketRef>(&v)) {
        return domain_.top(prog_->packet(p->field).width);
    }
    if (const auto* a = std::get_if<ir::Affine>(&v)) {
        return domain_.literal(a->at(param));
    }
    if (const auto* r = std::get_if<ir::RegRef>(&v)) {
        // A register used in operand position reads like an unconstrained
        // cell of that register (carrying its provenance for taint).
        return domain_.reg_result(r->reg, ir::PrimKind::RegRead, domain_.zero(), domain_.zero(),
                                  prog_->reg(r->reg).width);
    }
    return domain_.top(64);
}

template <typename Domain>
std::optional<typename Domain::Value> StageDataflow<Domain>::op_result(
    const ir::PrimOp& op, const std::vector<Value>& local, std::int64_t param,
    const ViewInstance& vi, int op_index, std::vector<RegAccess>* record) {
    std::optional<Value> result;
    switch (op.kind) {
        case ir::PrimKind::Hash: {
            std::int64_t mod = 0;
            if (op.modulus) {
                if (const auto* lit = std::get_if<std::int64_t>(&*op.modulus)) {
                    mod = *lit;
                } else if (const auto* rr = std::get_if<ir::RegRef>(&*op.modulus)) {
                    mod = view_->elems(rr->reg, rr->instance.at(param)).value_or(0);
                }
            }
            std::vector<Value> srcs;
            srcs.reserve(op.srcs.size());
            for (const ir::Value& src : op.srcs) srcs.push_back(eval(src, local, param));
            const int w = op.dst ? prog_->meta(op.dst->field).width : 64;
            result = domain_.hash_result(mod, srcs, w);
            break;
        }
        case ir::PrimKind::Set:
            result = eval(op.srcs.at(0), local, param);
            break;
        case ir::PrimKind::Add:
            result = domain_.add(eval(op.srcs.at(0), local, param),
                                 eval(op.srcs.at(1), local, param), 64);
            break;
        case ir::PrimKind::Sub:
            result = domain_.sub(eval(op.srcs.at(0), local, param),
                                 eval(op.srcs.at(1), local, param), 64);
            break;
        case ir::PrimKind::Min:
        case ir::PrimKind::Max: {
            const Value cur = op.dst ? eval(ir::Value(*op.dst), local, param) : domain_.top(64);
            const Value src = eval(op.srcs.at(0), local, param);
            result = op.kind == ir::PrimKind::Min ? domain_.min_(cur, src)
                                                  : domain_.max_(cur, src);
            break;
        }
        case ir::PrimKind::RegAdd:
        case ir::PrimKind::RegRead:
        case ir::PrimKind::RegWrite:
        case ir::PrimKind::RegMin:
        case ir::PrimKind::RegMax: {
            const ir::RegRef& rr = *op.reg;
            const std::int64_t row = rr.instance.at(param);
            const Value idxv =
                op.reg_index ? eval(*op.reg_index, local, param) : domain_.literal(0);
            const Value operand =
                op.srcs.empty() ? domain_.zero() : eval(op.srcs.at(0), local, param);
            if (record) {
                record->push_back({vi, op_index, &op, row, idxv, operand});
            }
            if (op.kind != ir::PrimKind::RegRead) {
                domain_.reg_store(rr.reg, op.kind, operand, idxv);
            }
            if (op.dst) {
                result = domain_.reg_result(rr.reg, op.kind, operand, idxv,
                                            prog_->reg(rr.reg).width);
            }
            break;
        }
    }
    return result;
}

template <typename Domain>
std::vector<typename Domain::Value> StageDataflow<Domain>::transfer(
    int stage, const std::vector<Value>& in, std::vector<RegAccess>* record) {
    std::vector<Value> out = in;
    std::vector<char> written(slots_.size(), 0);
    for (const int idx : by_stage_[static_cast<std::size_t>(stage)]) {
        const ViewInstance& vi = view_->instances[static_cast<std::size_t>(idx)];
        const ir::CallSite& site = prog_->flow[static_cast<std::size_t>(vi.inst.call)];
        const ir::Action& action = prog_->action(site.action);
        const std::int64_t param = site.iter_arg.at(vi.inst.iter);
        // Optional instances (sizing-dependent iterations) may not exist, so
        // their writes are as weak as guarded ones.
        const bool guarded = !site.guards.empty() || vi.optional;
        // Ops inside one action run sequentially over a local overlay.
        std::vector<Value> local = in;
        for (std::size_t oi = 0; oi < action.ops.size(); ++oi) {
            const ir::PrimOp& op = action.ops[oi];
            std::optional<Value> result =
                op_result(op, local, param, vi, static_cast<int>(oi), record);
            if (op.dst && result) {
                const int slot = slot_of(op.dst->field, op.dst->index.at(param));
                if (slot < 0) continue;
                const auto s = static_cast<std::size_t>(slot);
                const Value v = domain_.mask(*result, prog_->meta(op.dst->field).width);
                local[s] = v;
                // Unguarded single writers update strongly; a guarded write
                // may not execute, so it keeps the incoming value in play.
                out[s] = (guarded || written[s]) ? domain_.join(out[s], v) : v;
                written[s] = 1;
            }
        }
    }
    return out;
}

template <typename Domain>
void StageDataflow<Domain>::solve(const SolveOptions& opts) {
    const int n = static_cast<int>(by_stage_.size());
    in_.assign(static_cast<std::size_t>(std::max(n, 1)),
               std::vector<Value>(slots_.size(), domain_.zero()));
    if (n == 0) {
        accesses_.clear();
        return;
    }

    int round = 0;
    do {
        for (auto& state : in_) state.assign(slots_.size(), domain_.zero());
        std::vector<char> reached(static_cast<std::size_t>(n), 0);
        std::vector<char> queued(static_cast<std::size_t>(n), 0);
        std::vector<int> visits(static_cast<std::size_t>(n), 0);
        std::vector<int> worklist{0};
        reached[0] = 1;
        queued[0] = 1;
        support::Xoshiro256 rng(opts.order_seed ^ 0x9E3779B97F4A7C15ULL);

        while (!worklist.empty()) {
            const std::size_t pick =
                opts.order_seed == 0 ? worklist.size() - 1
                                     : static_cast<std::size_t>(rng.next_below(worklist.size()));
            const int s = worklist[pick];
            worklist.erase(worklist.begin() + static_cast<std::ptrdiff_t>(pick));
            queued[static_cast<std::size_t>(s)] = 0;

            std::vector<Value> out = transfer(s, in_[static_cast<std::size_t>(s)], nullptr);
            const int t = s + 1;
            if (t >= n) continue;
            const auto ti = static_cast<std::size_t>(t);
            bool changed = false;
            if (!reached[ti]) {
                in_[ti] = std::move(out);
                reached[ti] = 1;
                changed = true;
            } else {
                std::vector<Value> joined = in_[ti];
                for (std::size_t i = 0; i < joined.size(); ++i) {
                    joined[i] = domain_.join(joined[i], out[i]);
                }
                if (joined != in_[ti]) {
                    ++visits[ti];
                    if (visits[ti] > opts.widen_delay) {
                        for (std::size_t i = 0; i < joined.size(); ++i) {
                            joined[i] = domain_.widen(in_[ti][i], joined[i]);
                        }
                    }
                    in_[ti] = std::move(joined);
                    changed = true;
                }
            }
            if (changed && !queued[ti]) {
                worklist.push_back(t);
                queued[ti] = 1;
            }
        }
    } while (domain_.end_round() && ++round < opts.max_rounds);

    // Deterministic stage-major access collection over the final states.
    accesses_.clear();
    for (int s = 0; s < n; ++s) {
        (void)transfer(s, in_[static_cast<std::size_t>(s)], &accesses_);
    }
}

template <typename Domain>
typename Domain::Value StageDataflow<Domain>::value_entering_op(std::size_t instance_index,
                                                                int op_index,
                                                                const ir::Value& v) {
    const ViewInstance& vi = view_->instances.at(instance_index);
    const ir::CallSite& site = prog_->flow[static_cast<std::size_t>(vi.inst.call)];
    const ir::Action& action = prog_->action(site.action);
    const std::int64_t param = site.iter_arg.at(vi.inst.iter);
    // Replay the ops before op_index over the solved stage-entry state: ops in
    // one action read their own earlier writes through the local overlay,
    // while guards (op_index 0) and the first op read the stage entry as-is.
    std::vector<Value> local = in_.at(static_cast<std::size_t>(vi.stage));
    const int upto = std::min<int>(op_index, static_cast<int>(action.ops.size()));
    for (int oi = 0; oi < upto; ++oi) {
        const ir::PrimOp& op = action.ops[static_cast<std::size_t>(oi)];
        std::optional<Value> result = op_result(op, local, param, vi, oi, nullptr);
        if (op.dst && result) {
            const int slot = slot_of(op.dst->field, op.dst->index.at(param));
            if (slot < 0) continue;
            local[static_cast<std::size_t>(slot)] =
                domain_.mask(*result, prog_->meta(op.dst->field).width);
        }
    }
    return eval(v, local, param);
}

template class StageDataflow<IntervalDomain>;
template class StageDataflow<KnownBitsDomain>;
template class StageDataflow<TaintDomain>;

// ---------------------------------------------------------------------------
// Register-bounds proofs.
// ---------------------------------------------------------------------------

BoundsProofs prove_register_bounds(const ir::Program& prog, const DataplaneView& view) {
    BoundsProofs out;
    StageDataflow<IntervalDomain> intervals(prog, view);
    intervals.solve();
    StageDataflow<KnownBitsDomain> bits(prog, view);
    bits.solve();

    const auto& ia = intervals.reg_accesses();
    const auto& ka = bits.reg_accesses();
    out.facts.reserve(ia.size());
    for (std::size_t i = 0; i < ia.size(); ++i) {
        const auto& access = ia[i];
        ProofFact fact;
        fact.call = access.where.inst.call;
        fact.iter = access.where.inst.iter;
        fact.op = access.op_index;
        fact.reg = access.op->reg->reg;
        fact.instance = access.row;
        fact.loc = access.op->loc;
        const std::optional<std::int64_t> elems = view.elems(fact.reg, fact.instance);
        fact.elems = elems.value_or(0);

        const Interval iv = access.index;
        fact.index_lo = iv.empty() ? 0 : iv.lo;
        fact.index_hi = iv.empty() ? -1 : iv.hi;
        if (elems && *elems > 0) {
            if (!iv.empty() && iv.lo >= 0 && iv.hi < *elems) {
                fact.proved = true;
                fact.domain = "interval";
            } else if (i < ka.size()) {
                const KnownBitsValue kb = ka[i].index;
                if (kb.max_value() < static_cast<std::uint64_t>(*elems)) {
                    fact.proved = true;
                    fact.domain = "known-bits";
                    fact.index_lo = static_cast<std::int64_t>(kb.min_value());
                    fact.index_hi = static_cast<std::int64_t>(kb.max_value());
                }
            }
        }
        out.facts.push_back(std::move(fact));
    }
    return out;
}

// ---------------------------------------------------------------------------
// cross-flow-interference (tenant taint)
// ---------------------------------------------------------------------------

namespace {

/// Union-find over register ids for grouping registers into "flows".
class RegGroups {
public:
    explicit RegGroups(std::size_t n) : parent_(n) {
        for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
    }
    int find(int x) {
        while (parent_[static_cast<std::size_t>(x)] != x) {
            parent_[static_cast<std::size_t>(x)] =
                parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
            x = parent_[static_cast<std::size_t>(x)];
        }
        return x;
    }
    void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

private:
    std::vector<int> parent_;
};

class CrossFlowInterferencePass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "cross-flow-interference";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "state written to one flow's registers is never derived from another flow's "
               "register state (tenant-isolation taint analysis)";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        if (prog.registers.empty() || prog.flow.empty()) return;

        // Flow groups: registers co-accessed by one action (including hash
        // moduli) belong to the same module/flow.
        RegGroups groups(prog.registers.size());
        for (const ir::CallSite& site : prog.flow) {
            int first = -1;
            const auto touch = [&](ir::RegisterId reg) {
                if (first < 0) {
                    first = reg;
                } else {
                    groups.unite(first, reg);
                }
            };
            for (const ir::PrimOp& op : prog.action(site.action).ops) {
                if (op.reg) touch(op.reg->reg);
                if (op.modulus) {
                    if (const auto* rr = std::get_if<ir::RegRef>(&*op.modulus)) touch(rr->reg);
                }
                for (const ir::Value& src : op.srcs) {
                    if (const auto* rr = std::get_if<ir::RegRef>(&src)) touch(rr->reg);
                }
            }
        }
        const auto group_mask = [&](int root) {
            TaintDomain::Value m = 0;
            for (std::size_t r = 0; r < prog.registers.size(); ++r) {
                if (groups.find(static_cast<int>(r)) == root) {
                    m |= TaintDomain::label(static_cast<ir::RegisterId>(r));
                }
            }
            return m;
        };

        const DataplaneView view = min_sizing_view(prog);
        StageDataflow<TaintDomain> taint(prog, view);
        taint.solve();

        std::set<std::tuple<int, int, ir::RegisterId>> reported;  // (call, op, source)
        for (const auto& access : taint.reg_accesses()) {
            if (access.op->kind == ir::PrimKind::RegRead) continue;  // writes only
            const auto reg = access.op->reg->reg;
            const TaintDomain::Value own = group_mask(groups.find(reg));
            const TaintDomain::Value foreign = (access.index | access.operand) & ~own;
            if (foreign == 0) continue;
            for (std::size_t src = 0; src < prog.registers.size() && src < 64; ++src) {
                if (!(foreign & (1ULL << src))) continue;
                const auto key = std::make_tuple(access.where.inst.call, access.op_index,
                                                 static_cast<ir::RegisterId>(src));
                if (!reported.insert(key).second) continue;
                ctx.warning(
                    access.op->loc,
                    "write to register '" + prog.reg(reg).name + "' is derived from state of '" +
                        prog.reg(static_cast<ir::RegisterId>(src)).name +
                        "', which belongs to a different flow — cross-flow interference",
                    "keep per-flow state isolated, or co-locate the registers in one module if "
                    "the coupling is intended");
            }
        }
    }
};

}  // namespace

std::unique_ptr<LintPass> make_cross_flow_interference_pass() {
    return std::make_unique<CrossFlowInterferencePass>();
}

}  // namespace p4all::verify
