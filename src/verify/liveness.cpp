#include "verify/liveness.hpp"

#include <string>
#include <variant>

#include "verify/lint.hpp"

namespace p4all::verify {

namespace {

using ir::MetaRef;
using ir::PrimKind;
using ir::PrimOp;
using ir::RegRef;
using ir::Value;

bool is_reg_op(PrimKind k) {
    return k == PrimKind::RegAdd || k == PrimKind::RegRead || k == PrimKind::RegWrite ||
           k == PrimKind::RegMin || k == PrimKind::RegMax;
}

bool is_reg_update(PrimKind k) {
    return is_reg_op(k) && k != PrimKind::RegRead;
}

/// Does `op` read metadata field `field` through a source or index operand?
bool reads_meta(const PrimOp& op, ir::MetaFieldId field) {
    const auto hit = [field](const Value& v) {
        const auto* m = std::get_if<MetaRef>(&v);
        return m != nullptr && m->field == field;
    };
    for (const Value& src : op.srcs) {
        if (hit(src)) return true;
    }
    return op.reg_index && hit(*op.reg_index);
}

/// Does `op` mention register `reg` anywhere (target, operand, index, range)?
bool references_reg(const PrimOp& op, ir::RegisterId reg) {
    if (op.reg && op.reg->reg == reg) return true;
    if (op.modulus) {
        if (const auto* r = std::get_if<RegRef>(&*op.modulus); r != nullptr && r->reg == reg) {
            return true;
        }
    }
    const auto hit = [reg](const Value& v) {
        const auto* r = std::get_if<RegRef>(&v);
        return r != nullptr && r->reg == reg;
    };
    for (const Value& src : op.srcs) {
        if (hit(src)) return true;
    }
    return op.reg_index && hit(*op.reg_index);
}

}  // namespace

std::vector<RegisterUse> register_usage(const ir::Program& prog) {
    std::vector<RegisterUse> use(prog.registers.size());
    const auto mark_read = [&](const Value& v) {
        if (const auto* r = std::get_if<RegRef>(&v)) {
            use[static_cast<std::size_t>(r->reg)].state_read = true;
        }
    };
    for (const ir::Action& action : prog.actions) {
        for (const PrimOp& op : action.ops) {
            if (op.reg) {
                auto& u = use[static_cast<std::size_t>(op.reg->reg)];
                if (is_reg_update(op.kind)) u.written = true;
                // The dataplane sees the contents through a plain read or a
                // read-modify-write that lands the result in metadata.
                if (op.kind == PrimKind::RegRead || op.dst) u.state_read = true;
            }
            if (op.modulus) {
                if (const auto* r = std::get_if<RegRef>(&*op.modulus)) {
                    use[static_cast<std::size_t>(r->reg)].hash_range = true;
                }
            }
            for (const Value& src : op.srcs) mark_read(src);
            if (op.reg_index) mark_read(*op.reg_index);
        }
    }
    for (const ir::CallSite& site : prog.flow) {
        for (const ir::Cond& guard : site.guards) {
            mark_read(guard.lhs);
            mark_read(guard.rhs);
        }
    }
    return use;
}

std::vector<DeadStore> dead_meta_stores(const ir::Program& prog) {
    std::vector<DeadStore> out;
    for (std::size_t ai = 0; ai < prog.actions.size(); ++ai) {
        const ir::Action& action = prog.actions[ai];
        for (std::size_t j = 0; j < action.ops.size(); ++j) {
            const PrimOp& store = action.ops[j];
            // Only a pure op can be deleted outright; register ops keep their
            // state side effect even when the meta result is shadowed.
            if (!store.dst || is_reg_op(store.kind)) continue;
            for (std::size_t k = j + 1; k < action.ops.size(); ++k) {
                const PrimOp& later = action.ops[k];
                if (reads_meta(later, store.dst->field)) break;
                const bool reads_own_dst =
                    later.kind == PrimKind::Min || later.kind == PrimKind::Max;
                if (reads_own_dst && later.dst && later.dst->field == store.dst->field) break;
                if (later.dst && !reads_own_dst && *later.dst == *store.dst) {
                    out.push_back({static_cast<ir::ActionId>(ai), static_cast<int>(j),
                                   static_cast<int>(k)});
                    break;
                }
            }
        }
    }
    return out;
}

std::vector<DeadStore> dead_register_stores(const ir::Program& prog) {
    std::vector<DeadStore> out;
    for (std::size_t ai = 0; ai < prog.actions.size(); ++ai) {
        const ir::Action& action = prog.actions[ai];
        for (std::size_t j = 0; j < action.ops.size(); ++j) {
            const PrimOp& store = action.ops[j];
            // The shadowed update must not land anything in metadata, or
            // deleting it would lose that write.
            if (!is_reg_update(store.kind) || store.dst || !store.reg) continue;
            const auto* index_meta =
                store.reg_index ? std::get_if<MetaRef>(&*store.reg_index) : nullptr;
            for (std::size_t k = j + 1; k < action.ops.size(); ++k) {
                const PrimOp& later = action.ops[k];
                // A write to the field the cell index reads would redirect the
                // later store to a different cell.
                if (index_meta && later.dst && later.dst->field == index_meta->field) break;
                const bool same_cell =
                    later.kind == PrimKind::RegWrite && later.reg && *later.reg == *store.reg &&
                    later.reg_index.has_value() == store.reg_index.has_value() &&
                    (!later.reg_index || *later.reg_index == *store.reg_index);
                if (same_cell) {
                    // The overwriting value itself must not read the register.
                    bool clean = true;
                    for (const Value& src : later.srcs) {
                        if (const auto* r = std::get_if<RegRef>(&src);
                            r != nullptr && r->reg == store.reg->reg) {
                            clean = false;
                        }
                    }
                    if (clean) {
                        out.push_back({static_cast<ir::ActionId>(ai), static_cast<int>(j),
                                       static_cast<int>(k)});
                    }
                    break;
                }
                if (references_reg(later, store.reg->reg)) break;
            }
        }
    }
    return out;
}

namespace {

class DeadRegisterWritePass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "dead-register-write"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "register writes are read back somewhere in the dataplane";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        const std::vector<RegisterUse> use = register_usage(prog);
        for (const ir::Action& action : prog.actions) {
            for (const PrimOp& op : action.ops) {
                if (!op.reg || !is_reg_update(op.kind)) continue;
                const auto& u = use[static_cast<std::size_t>(op.reg->reg)];
                if (!u.written || u.state_read) continue;
                ctx.warning(op.loc,
                            "write to register '" + prog.reg(op.reg->reg).name +
                                "' is never read back by the dataplane",
                            "read the register in a later stage, or drop it if the "
                            "controller does not poll it either");
            }
        }
    }
};

class UnusedExternPass final : public LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "unused-extern"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "register storage backing a hash range is actually read or written";
    }

    void run(LintContext& ctx) override {
        const ir::Program& prog = ctx.program();
        const std::vector<RegisterUse> use = register_usage(prog);
        for (std::size_t i = 0; i < prog.registers.size(); ++i) {
            const auto& u = use[i];
            if (!u.hash_range || u.written || u.state_read) continue;
            ctx.warning(prog.registers[i].loc,
                        "register '" + prog.registers[i].name +
                            "' only sizes a hash range; its storage is never read or written",
                        "hash modulo a constant instead of allocating a register");
        }
    }
};

}  // namespace

std::unique_ptr<LintPass> make_dead_register_write_pass() {
    return std::make_unique<DeadRegisterWritePass>();
}

std::unique_ptr<LintPass> make_unused_extern_pass() {
    return std::make_unique<UnusedExternPass>();
}

}  // namespace p4all::verify
