#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "analysis/unroll.hpp"

namespace p4all::verify {

using ir::Affine;
using ir::CallSite;
using ir::MetaRef;
using ir::PrimOp;
using ir::RegRef;
using ir::SymbolId;
using ir::Value;

const char* check_name(Check check) noexcept {
    switch (check) {
        case Check::IndexBounds: return "index-bounds";
        case Check::HashRange: return "hash-range";
        case Check::SeedOverlap: return "seed-overlap";
        case Check::DeadCode: return "dead-code";
        case Check::ConstantGuard: return "constant-guard";
    }
    return "?";
}

namespace {

class Verifier {
public:
    explicit Verifier(const ir::Program& prog) : prog_(prog) {}

    std::vector<Issue> run() {
        for (const CallSite& site : prog_.flow) visit_site(site);
        check_dead_code();
        std::stable_sort(issues_.begin(), issues_.end(), [](const Issue& a, const Issue& b) {
            return a.severity == Severity::Error && b.severity == Severity::Warning;
        });
        return std::move(issues_);
    }

private:
    void error(Check check, std::string message) {
        issues_.push_back({Severity::Error, check, std::move(message)});
    }
    void warn(Check check, std::string message) {
        issues_.push_back({Severity::Warning, check, std::move(message)});
    }

    /// Largest admissible value of the iteration variable for a call site:
    /// bound's assume upper bound minus one, if known.
    [[nodiscard]] std::optional<std::int64_t> max_iter(const CallSite& site) const {
        if (!site.elastic()) return 0;
        if (const auto ub = analysis::assume_upper_bound(prog_, site.loop_bound)) {
            return *ub - 1;
        }
        return std::nullopt;
    }

    /// Checks 0 ≤ f(i) < extent for all admissible iterations i of `site`.
    /// `extent` may be symbolic; a symbolic extent equal to the loop bound
    /// admits exactly the indices 0..i (contiguity of instantiation).
    void check_index(const CallSite& site, const Affine& index, const ir::Extent& extent,
                     const std::string& what) {
        // Lower bound: f is monotone in i, so its minimum over i ≥ 0 is at
        // i = 0 when the coefficient is nonnegative.
        const std::int64_t at0 = index.at(0);
        if ((index.coeff_iter >= 0 && at0 < 0) || (index.coeff_iter < 0 && !site.elastic())) {
            if (at0 < 0) {
                error(Check::IndexBounds, what + ": index " + std::to_string(at0) +
                                              " is negative at iteration 0");
                return;
            }
        }
        if (index.coeff_iter < 0) {
            // Decreasing index: minimum at the largest iteration.
            if (const auto mi = max_iter(site)) {
                if (index.at(*mi) < 0) {
                    error(Check::IndexBounds,
                          what + ": index becomes negative at iteration " + std::to_string(*mi));
                    return;
                }
            } else {
                warn(Check::IndexBounds,
                     what + ": decreasing index with unbounded loop cannot be proven in bounds "
                            "(add an assume upper bound)");
                return;
            }
        }

        if (extent.symbolic()) {
            if (site.elastic() && extent.sym == site.loop_bound) {
                // Element k exists whenever iteration k is instantiated, and
                // iterations are contiguous from 0 — so f(i) ≤ i is safe.
                if (index.coeff_iter > 1 || (index.coeff_iter == 1 && index.constant > 0) ||
                    (index.coeff_iter == 0 && index.constant > 0)) {
                    error(Check::IndexBounds,
                          what + ": index can exceed the iteration count (f(i) > i); element "
                                 "f(i) need not be instantiated");
                }
                return;
            }
            // Different symbol: compare worst-case index against the
            // extent's assumed minimum.
            const auto extent_min = analysis::assume_lower_bound(prog_, extent.sym);
            std::optional<std::int64_t> worst;
            if (index.coeff_iter <= 0) {
                worst = index.at(0);
            } else if (const auto mi = max_iter(site)) {
                worst = index.at(*mi);
            }
            if (!worst) {
                warn(Check::IndexBounds,
                     what + ": cannot bound the index (no assume upper bound on the loop)");
                return;
            }
            if (!extent_min || *worst >= *extent_min) {
                warn(Check::IndexBounds,
                     what + ": index may reach " + std::to_string(*worst) +
                         " but the array is only assumed to have at least " +
                         (extent_min ? std::to_string(*extent_min) : std::string("1")) +
                         " elements");
            }
            return;
        }
        // Concrete extent.
        std::optional<std::int64_t> worst;
        if (index.coeff_iter <= 0) {
            worst = index.at(0);
        } else if (const auto mi = max_iter(site)) {
            worst = index.at(*mi);
        }
        if (!worst) {
            warn(Check::IndexBounds,
                 what + ": cannot bound the index (no assume upper bound on the loop)");
            return;
        }
        if (*worst >= extent.literal) {
            error(Check::IndexBounds, what + ": index reaches " + std::to_string(*worst) +
                                          " but the array has " +
                                          std::to_string(extent.literal) + " elements");
        }
    }

    void check_value(const CallSite& site, const Value& v, const std::string& what) {
        if (const auto* m = std::get_if<MetaRef>(&v)) {
            used_meta_.insert(m->field);
            const ir::MetaField& f = prog_.meta(m->field);
            if (f.is_array()) {
                check_index(site, m->index, *f.array, what + " meta." + f.name);
            }
        } else if (const auto* r = std::get_if<RegRef>(&v)) {
            used_regs_.insert(r->reg);
            check_index(site, r->instance, prog_.reg(r->reg).instances,
                        what + " register " + prog_.reg(r->reg).name);
        }
    }

    void visit_site(const CallSite& site) {
        used_actions_.insert(site.action);
        if (site.elastic()) used_symbols_.insert(site.loop_bound);
        const ir::Action& action = prog_.action(site.action);
        const std::string where = "in " + action.name;

        for (const ir::Cond& guard : site.guards) {
            check_value(site, guard.lhs, where + " (guard)");
            check_value(site, guard.rhs, where + " (guard)");
            const auto* l = std::get_if<Affine>(&guard.lhs);
            const auto* r = std::get_if<Affine>(&guard.rhs);
            if (l != nullptr && r != nullptr && l->is_literal() && r->is_literal()) {
                warn(Check::ConstantGuard,
                     where + ": guard compares two constants (" + std::to_string(l->constant) +
                         " vs " + std::to_string(r->constant) + ") — always " +
                         (constant_guard_holds(guard.op, l->constant, r->constant) ? "true"
                                                                                   : "false"));
            }
        }

        // Hash bookkeeping for hash-range and seed-overlap checks.
        std::map<std::tuple<ir::MetaFieldId, std::int64_t, std::int64_t>, const PrimOp*>
            hash_by_dst;
        for (const PrimOp& op : action.ops) {
            if (op.dst) check_value(site, *op.dst, where);
            if (op.reg) check_value(site, Value(*op.reg), where);
            if (op.reg_index) check_value(site, *op.reg_index, where);
            for (const Value& src : op.srcs) check_value(site, src, where);

            if (op.kind == ir::PrimKind::Hash) {
                hash_by_dst[{op.dst->field, op.dst->index.coeff_iter,
                             op.dst->index.constant}] = &op;
                if (const auto* mod = std::get_if<RegRef>(&*op.modulus)) {
                    used_regs_.insert(mod->reg);
                    check_value(site, Value(*mod), where + " (hash range)");
                    seed_uses_.push_back({mod->reg, op.seed, site.loop_bound});
                }
                continue;
            }
            if (!op.reg || !op.reg_index) continue;
            const auto* idx = std::get_if<MetaRef>(&*op.reg_index);
            if (idx == nullptr) continue;
            const auto it =
                hash_by_dst.find({idx->field, idx->index.coeff_iter, idx->index.constant});
            if (it == hash_by_dst.end()) continue;
            const PrimOp& hash_op = *it->second;
            const auto* range = std::get_if<RegRef>(&*hash_op.modulus);
            if (range == nullptr) continue;
            if (range->reg != op.reg->reg || !(range->instance == op.reg->instance)) {
                // Distinct arrays are fine when they provably have the same
                // element count (e.g. a key array and its value array are
                // declared with the same symbolic size).
                const ir::Extent& a = prog_.reg(range->reg).elems;
                const ir::Extent& b = prog_.reg(op.reg->reg).elems;
                const bool same_size = (a.symbolic() && b.symbolic() && a.sym == b.sym) ||
                                       (!a.symbolic() && !b.symbolic() && a.literal == b.literal);
                if (same_size) continue;
                warn(Check::HashRange,
                     where + ": register " + prog_.reg(op.reg->reg).name +
                         " is indexed by a hash ranged over " + prog_.reg(range->reg).name +
                         " — index distribution will not match the array size");
            }
        }
    }

    static bool constant_guard_holds(ir::CmpOp op, std::int64_t l, std::int64_t r) {
        switch (op) {
            case ir::CmpOp::Lt: return l < r;
            case ir::CmpOp::Le: return l <= r;
            case ir::CmpOp::Gt: return l > r;
            case ir::CmpOp::Ge: return l >= r;
            case ir::CmpOp::Eq: return l == r;
            case ir::CmpOp::Ne: return l != r;
        }
        return false;
    }

    void check_dead_code() {
        // Seed overlap across distinct register matrices: same seed value
        // reachable by both seed affines over their admissible iterations.
        for (std::size_t a = 0; a < seed_uses_.size(); ++a) {
            for (std::size_t b = a + 1; b < seed_uses_.size(); ++b) {
                const SeedUse& x = seed_uses_[a];
                const SeedUse& y = seed_uses_[b];
                if (x.reg == y.reg) continue;
                if (seed_sets_overlap(x, y)) {
                    warn(Check::SeedOverlap,
                         "registers " + prog_.reg(x.reg).name + " and " + prog_.reg(y.reg).name +
                             " are hashed with overlapping seed ranges; their hash functions "
                             "are correlated");
                }
            }
        }
        for (std::size_t i = 0; i < prog_.symbols.size(); ++i) {
            if (prog_.symbols[i].role == ir::SymbolRole::Unused) {
                warn(Check::DeadCode, "symbolic value '" + prog_.symbols[i].name +
                                          "' is declared but never used");
            }
        }
        for (std::size_t i = 0; i < prog_.registers.size(); ++i) {
            if (used_regs_.count(static_cast<ir::RegisterId>(i)) == 0) {
                warn(Check::DeadCode,
                     "register '" + prog_.registers[i].name + "' is declared but never accessed");
            }
        }
        for (std::size_t i = 0; i < prog_.meta_fields.size(); ++i) {
            if (used_meta_.count(static_cast<ir::MetaFieldId>(i)) == 0) {
                warn(Check::DeadCode, "metadata field '" + prog_.meta_fields[i].name +
                                          "' is declared but never accessed");
            }
        }
        for (std::size_t i = 0; i < prog_.actions.size(); ++i) {
            if (used_actions_.count(static_cast<ir::ActionId>(i)) == 0) {
                warn(Check::DeadCode,
                     "action '" + prog_.actions[i].name + "' is never invoked");
            }
        }
    }

    struct SeedUse {
        ir::RegisterId reg = ir::kNoId;
        Affine seed;
        SymbolId loop = ir::kNoId;
    };

    [[nodiscard]] bool seed_sets_overlap(const SeedUse& x, const SeedUse& y) const {
        const auto range_of = [&](const SeedUse& u) -> std::pair<std::int64_t, std::int64_t> {
            std::int64_t hi_iter = 0;
            if (u.loop != ir::kNoId) {
                if (const auto ub = analysis::assume_upper_bound(prog_, u.loop)) {
                    hi_iter = *ub - 1;
                } else {
                    hi_iter = 64;  // conservative window for unbounded loops
                }
            }
            const std::int64_t a = u.seed.at(0);
            const std::int64_t b = u.seed.at(hi_iter);
            return {std::min(a, b), std::max(a, b)};
        };
        const auto [xl, xh] = range_of(x);
        const auto [yl, yh] = range_of(y);
        return std::max(xl, yl) <= std::min(xh, yh);
    }

    const ir::Program& prog_;
    std::vector<Issue> issues_;
    std::set<ir::MetaFieldId> used_meta_;
    std::set<ir::RegisterId> used_regs_;
    std::set<ir::ActionId> used_actions_;
    std::set<SymbolId> used_symbols_;
    std::vector<SeedUse> seed_uses_;
};

}  // namespace

std::vector<Issue> verify_program(const ir::Program& prog) { return Verifier(prog).run(); }

bool has_errors(const std::vector<Issue>& issues) noexcept {
    return std::any_of(issues.begin(), issues.end(),
                       [](const Issue& i) { return i.severity == Severity::Error; });
}

std::string render(const std::vector<Issue>& issues) {
    std::string out;
    for (const Issue& issue : issues) {
        out += issue.severity == Severity::Error ? "error" : "warning";
        out += " [";
        out += check_name(issue.check);
        out += "]: ";
        out += issue.message;
        out += '\n';
    }
    return out;
}

}  // namespace p4all::verify
