// Compatibility shim: the original bare-string verification API, now backed
// by the located lint engine (lint.hpp). verify_program runs exactly the
// five original checks and strips the source locations; new code should call
// run_lint directly.
#include "verify/verify.hpp"

#include <algorithm>
#include <optional>

#include "verify/lint.hpp"

namespace p4all::verify {

const char* check_name(Check check) noexcept {
    switch (check) {
        case Check::IndexBounds: return "index-bounds";
        case Check::HashRange: return "hash-range";
        case Check::SeedOverlap: return "seed-overlap";
        case Check::DeadCode: return "dead-code";
        case Check::ConstantGuard: return "constant-guard";
    }
    return "?";
}

namespace {

constexpr Check kLegacyChecks[] = {Check::IndexBounds, Check::HashRange, Check::SeedOverlap,
                                   Check::DeadCode, Check::ConstantGuard};

std::optional<Check> check_from_id(const std::string& id) {
    for (const Check c : kLegacyChecks) {
        if (id == check_name(c)) return c;
    }
    return std::nullopt;
}

}  // namespace

std::vector<Issue> verify_program(const ir::Program& prog) {
    LintOptions options;
    for (const Check c : kLegacyChecks) options.checks.emplace_back(check_name(c));
    const LintResult result = run_lint(prog, options);

    std::vector<Issue> issues;
    issues.reserve(result.findings.size());
    for (const Finding& f : result.findings) {
        const auto check = check_from_id(f.check);
        if (!check) continue;
        issues.push_back({f.severity == support::Severity::Error ? Severity::Error
                                                                 : Severity::Warning,
                          *check, f.message});
    }
    std::stable_sort(issues.begin(), issues.end(), [](const Issue& a, const Issue& b) {
        return a.severity == Severity::Error && b.severity == Severity::Warning;
    });
    return issues;
}

bool has_errors(const std::vector<Issue>& issues) noexcept {
    return std::any_of(issues.begin(), issues.end(),
                       [](const Issue& i) { return i.severity == Severity::Error; });
}

std::string render(const std::vector<Issue>& issues) {
    std::string out;
    for (const Issue& issue : issues) {
        out += issue.severity == Severity::Error ? "error" : "warning";
        out += " [";
        out += check_name(issue.check);
        out += "]: ";
        out += issue.message;
        out += '\n';
    }
    return out;
}

}  // namespace p4all::verify
