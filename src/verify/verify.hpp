// Static verification of elastic programs.
//
// The paper's related-work section names verification as a natural
// extension: "we hope to verify that all indices used with symbolic arrays
// are in bounds". This pass implements that check and several further
// lint-style analyses over the elaborated IR, using the assume-derived
// bounds on symbolic values:
//
//   - index-bounds:   every metadata-array element and register-matrix row
//                     touched by any loop iteration exists for every
//                     admissible value of the loop bound;
//   - hash-range:     a register op whose index was produced by `hash`
//                     uses the same register (array and row) that the hash
//                     ranged over — the classic copy-paste sketch bug;
//   - seed-overlap:   two different register matrices hashed over the same
//                     key with overlapping seed ranges behave as correlated
//                     hash functions (accuracy analyses assume independence);
//   - dead code:      declared symbols / registers / metadata / actions the
//                     flattened flow never uses;
//   - constant guard: a guard that compares two compile-time constants.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace p4all::verify {

enum class Severity { Error, Warning };

enum class Check {
    IndexBounds,
    HashRange,
    SeedOverlap,
    DeadCode,
    ConstantGuard,
};

struct Issue {
    Severity severity = Severity::Warning;
    Check check = Check::IndexBounds;
    std::string message;
};

[[nodiscard]] const char* check_name(Check check) noexcept;

/// Runs every check over the elaborated program; returns all issues found
/// (errors first). An empty result means the program verified clean.
[[nodiscard]] std::vector<Issue> verify_program(const ir::Program& prog);

/// True if any issue is an error.
[[nodiscard]] bool has_errors(const std::vector<Issue>& issues) noexcept;

/// One-line-per-issue rendering.
[[nodiscard]] std::string render(const std::vector<Issue>& issues);

}  // namespace p4all::verify
