#include "verify/interval.hpp"

#include <algorithm>
#include <cmath>
#include <variant>

namespace p4all::verify {

Interval Interval::of_width(int bits) noexcept {
    if (bits <= 0) return point(0);
    if (bits >= 63) return {0, kPosInf};
    return {0, (std::int64_t{1} << bits) - 1};
}

Interval Interval::meet(const Interval& o) const noexcept {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::join(const Interval& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::widen(const Interval& next) const noexcept {
    if (empty()) return next;
    if (next.empty()) return *this;
    return {next.lo < lo ? kNegInf : lo, next.hi > hi ? kPosInf : hi};
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
    std::int64_t out = 0;
    if (__builtin_add_overflow(a, b, &out)) {
        return a > 0 ? Interval::kPosInf : Interval::kNegInf;
    }
    return out;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept {
    std::int64_t out = 0;
    if (__builtin_mul_overflow(a, b, &out)) {
        return ((a > 0) == (b > 0)) ? Interval::kPosInf : Interval::kNegInf;
    }
    return out;
}

namespace {

/// Saturating multiply that treats the infinities as genuine infinities:
/// inf * 0 = 0 (an empty factor contributes nothing), inf * x keeps sign.
std::int64_t inf_mul(std::int64_t a, std::int64_t b) noexcept {
    if (a == 0 || b == 0) return 0;
    const bool a_inf = a == Interval::kPosInf || a == Interval::kNegInf;
    const bool b_inf = b == Interval::kPosInf || b == Interval::kNegInf;
    if (a_inf || b_inf) {
        return ((a > 0) == (b > 0)) ? Interval::kPosInf : Interval::kNegInf;
    }
    return sat_mul(a, b);
}

}  // namespace

Interval operator+(const Interval& a, const Interval& b) noexcept {
    if (a.empty() || b.empty()) return {1, 0};
    return {sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)};
}

Interval operator-(const Interval& a, const Interval& b) noexcept {
    if (a.empty() || b.empty()) return {1, 0};
    return {sat_add(a.lo, b.hi == Interval::kPosInf ? Interval::kNegInf : -b.hi),
            sat_add(a.hi, b.lo == Interval::kNegInf ? Interval::kPosInf : -b.lo)};
}

Interval operator*(const Interval& a, const Interval& b) noexcept {
    if (a.empty() || b.empty()) return {1, 0};
    const std::int64_t c[4] = {inf_mul(a.lo, b.lo), inf_mul(a.lo, b.hi), inf_mul(a.hi, b.lo),
                               inf_mul(a.hi, b.hi)};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Truth compare(ir::CmpOp op, const Interval& l, const Interval& r) noexcept {
    if (l.empty() || r.empty()) return Truth::Unknown;
    switch (op) {
        case ir::CmpOp::Lt:
            if (l.hi < r.lo) return Truth::True;
            if (l.lo >= r.hi) return Truth::False;
            return Truth::Unknown;
        case ir::CmpOp::Le:
            if (l.hi <= r.lo) return Truth::True;
            if (l.lo > r.hi) return Truth::False;
            return Truth::Unknown;
        case ir::CmpOp::Gt:
            return compare(ir::CmpOp::Lt, r, l);
        case ir::CmpOp::Ge:
            return compare(ir::CmpOp::Le, r, l);
        case ir::CmpOp::Eq:
            if (l.is_point() && r.is_point() && l.lo == r.lo) return Truth::True;
            if (l.meet(r).empty()) return Truth::False;
            return Truth::Unknown;
        case ir::CmpOp::Ne: {
            const Truth eq = compare(ir::CmpOp::Eq, l, r);
            if (eq == Truth::True) return Truth::False;
            if (eq == Truth::False) return Truth::True;
            return Truth::Unknown;
        }
    }
    return Truth::Unknown;
}

Interval wrap_to_width(const Interval& a, int bits) noexcept {
    if (a.empty()) return a;
    const Interval range = Interval::of_width(bits);
    if (a.lo >= 0 && a.hi <= range.hi) return a;
    return range;
}

Interval shift_left(const Interval& a, int amount, int width) noexcept {
    const Interval range = Interval::of_width(width);
    if (a.empty()) return a;
    if (amount < 0) return range;
    if (amount >= width) return Interval::point(0);
    const Interval in = wrap_to_width(a, width);
    const std::int64_t scale = amount >= 62 ? Interval::kPosInf : (std::int64_t{1} << amount);
    const Interval scaled = in * Interval::point(scale);
    // If any shifted bit would leave the width, high bits are lost: wrap.
    if (scaled.hi > range.hi) return range;
    return scaled;
}

Interval shift_right(const Interval& a, int amount, int width) noexcept {
    if (a.empty()) return a;
    if (amount < 0) return Interval::of_width(width);
    if (amount >= width) return Interval::point(0);
    const Interval in = wrap_to_width(a, width);
    const auto div = [amount](std::int64_t v) {
        return v == Interval::kPosInf ? Interval::kPosInf : (v >> amount);
    };
    return {div(in.lo), div(in.hi)};
}

BoundEnv::BoundEnv(const ir::Program& prog) : prog_(&prog) {
    // Sizes are at least 1: a loop that never runs or an empty array leaves
    // no trace in the pipeline, and the ILP's size variables start at 1.
    symbols_.assign(prog.symbols.size(), Interval{1, Interval::kPosInf});

    // Refine from single-variable linear assume clauses. Elaboration
    // normalizes every clause to `poly <= 0` or `poly == 0`.
    for (const ir::PolyConstraint& pc : prog.assumes) {
        ir::SymbolId sym = ir::kNoId;
        double coeff = 0.0;
        double constant = 0.0;
        bool usable = true;
        for (const ir::PolyTerm& t : pc.poly.terms()) {
            if (t.degree() == 0) {
                constant += t.coeff;
            } else if (t.degree() == 1 && (sym == ir::kNoId || sym == t.a)) {
                sym = t.a;
                coeff += t.coeff;
            } else {
                usable = false;  // multi-variable or quadratic clause
                break;
            }
        }
        if (!usable || sym == ir::kNoId || coeff == 0.0) continue;
        Interval& dom = symbols_[static_cast<std::size_t>(sym)];
        // coeff*s + constant <= 0  ⇒  s <= floor(-constant/coeff) (coeff > 0)
        //                             s >= ceil(-constant/coeff)  (coeff < 0)
        const double bound = -constant / coeff;
        if (pc.op == ir::CmpOp::Eq) {
            const auto v = static_cast<std::int64_t>(std::llround(bound));
            if (static_cast<double>(v) * coeff + constant == 0.0) {
                dom = dom.meet(Interval::point(v));
            }
        } else if (coeff > 0.0) {
            dom = dom.meet({Interval::kNegInf, static_cast<std::int64_t>(std::floor(bound))});
        } else {
            dom = dom.meet({static_cast<std::int64_t>(std::ceil(bound)), Interval::kPosInf});
        }
    }
}

Interval BoundEnv::symbol(ir::SymbolId sym) const {
    if (sym == ir::kNoId || static_cast<std::size_t>(sym) >= symbols_.size()) {
        return {1, Interval::kPosInf};
    }
    return symbols_[static_cast<std::size_t>(sym)];
}

Interval BoundEnv::iterations(ir::SymbolId loop_bound) const {
    if (loop_bound == ir::kNoId) return Interval::point(0);
    const Interval bound = symbol(loop_bound);
    if (bound.empty()) return bound;
    return {0, bound.hi == Interval::kPosInf ? Interval::kPosInf : bound.hi - 1};
}

Interval BoundEnv::affine(const ir::Affine& a, const Interval& iter) const {
    return Interval::point(a.coeff_iter) * iter + Interval::point(a.constant);
}

Interval BoundEnv::extent(const ir::Extent& e) const {
    return e.symbolic() ? symbol(e.sym) : Interval::point(e.literal);
}

namespace {

Interval guard_operand_range(const BoundEnv& bounds, const ir::Program& prog,
                             const ir::Value& v, const Interval& iter) {
    if (const auto* a = std::get_if<ir::Affine>(&v)) {
        return bounds.affine(*a, iter);
    }
    if (const auto* m = std::get_if<ir::MetaRef>(&v)) {
        return Interval::of_width(prog.meta(m->field).width);
    }
    if (const auto* p = std::get_if<ir::PacketRef>(&v)) {
        return Interval::of_width(prog.packet(p->field).width);
    }
    return Interval::all();
}

}  // namespace

Truth guard_truth(const BoundEnv& bounds, const ir::Program& prog, const ir::CallSite& site,
                  const ir::Cond& guard) {
    const Interval iter = bounds.iterations(site.loop_bound);
    const auto* l = std::get_if<ir::Affine>(&guard.lhs);
    const auto* r = std::get_if<ir::Affine>(&guard.rhs);
    if (l != nullptr && r != nullptr) {
        // Both sides affine in the same iteration variable: compare the
        // difference, which is exact even for correlated operands like
        // `i < i + 1` (interval-pair comparison would lose the correlation
        // and answer Unknown).
        const ir::Affine diff{l->coeff_iter - r->coeff_iter, l->constant - r->constant};
        return compare(guard.op, bounds.affine(diff, iter), Interval::point(0));
    }
    return compare(guard.op, guard_operand_range(bounds, prog, guard.lhs, iter),
                   guard_operand_range(bounds, prog, guard.rhs, iter));
}

}  // namespace p4all::verify
