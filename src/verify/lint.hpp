// The p4all-lint static-analysis engine.
//
// Each check is a LintPass: a named, individually selectable analysis over
// the elaborated IR that reports Findings carrying a source location,
// severity, check id, and fix hint — the located successor of the bare
// string Issues in verify.hpp (which is now a thin compatibility shim over
// this engine). Passes register in a global PassRegistry, LLVM-Analysis
// style; run_lint executes a selection of them and collects the findings,
// sorted by source position, with optional warnings-as-errors promotion.
// Results render as one-per-line text diagnostics or as a SARIF-shaped JSON
// document for machine consumption.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/program.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "target/spec.hpp"
#include "verify/interval.hpp"

namespace p4all::verify {

/// One located diagnostic produced by a lint pass.
struct Finding {
    support::Severity severity = support::Severity::Warning;
    std::string check;       // id of the pass that produced it
    support::SourceLoc loc;  // loc.known() is false only for whole-program findings
    std::string message;
    std::string fix_hint;    // optional "how to silence / repair" suggestion

    [[nodiscard]] std::string to_string() const;
};

/// Opaque extension point: extra input a registered pass may need beyond the
/// IR and target (e.g. compiled artifacts for the audit passes). Passes
/// dynamic_cast LintContext::payload() to their expected concrete type and
/// no-op when it is absent, so payload-carrying passes are safe to leave in
/// the registry for plain source-only lint runs.
struct LintPayload {
    virtual ~LintPayload() = default;
};

/// Options selecting and configuring a lint run.
struct LintOptions {
    /// Pass ids to run; empty means every registered pass. Unknown ids make
    /// run_lint throw support::CompileError.
    std::vector<std::string> checks;
    /// Promote warnings to errors in the result.
    bool werror = false;
    /// Target spec for target-dependent passes (schedule-infeasible).
    target::TargetSpec target = target::tofino_like();
    /// Extra pass input (not owned; must outlive the run). See LintPayload.
    const LintPayload* payload = nullptr;
};

/// Shared state handed to each pass: the program, the target, lazily usable
/// assume-derived bounds, and the finding sink.
class LintContext {
public:
    LintContext(const ir::Program& prog, const LintOptions& options)
        : prog_(&prog), options_(&options), bounds_(prog) {}

    [[nodiscard]] const ir::Program& program() const noexcept { return *prog_; }
    [[nodiscard]] const target::TargetSpec& target() const noexcept { return options_->target; }
    [[nodiscard]] const BoundEnv& bounds() const noexcept { return bounds_; }
    [[nodiscard]] const LintPayload* payload() const noexcept { return options_->payload; }

    void report(Finding finding) { findings_.push_back(std::move(finding)); }

    /// Convenience reporters stamping the current pass id.
    void error(support::SourceLoc loc, std::string message, std::string fix_hint = {});
    void warning(support::SourceLoc loc, std::string message, std::string fix_hint = {});
    void note(support::SourceLoc loc, std::string message, std::string fix_hint = {});

    [[nodiscard]] std::vector<Finding> take_findings() { return std::move(findings_); }

    /// Set by the driver before each pass runs; reporters stamp it.
    void set_active_check(std::string_view id) { active_check_ = id; }

private:
    const ir::Program* prog_;
    const LintOptions* options_;
    BoundEnv bounds_;
    std::string active_check_;
    std::vector<Finding> findings_;
};

/// A named static-analysis pass over the elaborated IR.
class LintPass {
public:
    virtual ~LintPass() = default;

    /// Stable kebab-case id used by --checks= and in rendered findings.
    [[nodiscard]] virtual std::string_view id() const noexcept = 0;
    /// One-line description for --list-checks and SARIF rule metadata.
    [[nodiscard]] virtual std::string_view description() const noexcept = 0;

    virtual void run(LintContext& ctx) = 0;
};

/// The process-wide pass registry. Built-in passes self-register on first
/// access; additional passes may be added by embedders.
class PassRegistry {
public:
    /// The global registry, populated with the built-in passes.
    static PassRegistry& global();

    void add(std::unique_ptr<LintPass> pass);

    [[nodiscard]] LintPass* find(std::string_view id) const noexcept;
    /// All passes in registration order.
    [[nodiscard]] std::vector<LintPass*> passes() const;

private:
    std::vector<std::unique_ptr<LintPass>> passes_;
};

/// The outcome of a lint run.
struct LintResult {
    std::vector<Finding> findings;       // sorted by (file, line, column, check, …)
    std::vector<std::string> checks_run; // pass ids, execution order

    [[nodiscard]] bool has_errors() const noexcept;
    /// One finding per line: "file:line:col: severity: message [check]".
    [[nodiscard]] std::string render() const;
    /// SARIF 2.1.0-shaped document (version, runs[0].tool.driver.rules,
    /// runs[0].results with ruleId/level/message/locations).
    [[nodiscard]] support::Json to_json() const;
};

/// Runs the selected passes over `prog`. Throws support::CompileError when
/// options.checks names a pass the registry does not know.
[[nodiscard]] LintResult run_lint(const ir::Program& prog, const LintOptions& options = {});

/// Replays the findings into a Diagnostics accumulator (severity-preserving),
/// unifying lint output with the compiler's diagnostic machinery.
void to_diagnostics(const LintResult& result, support::Diagnostics& diags);

/// Registers the built-in passes into `registry` (idempotent per registry;
/// called automatically for PassRegistry::global()).
void register_builtin_passes(PassRegistry& registry);

}  // namespace p4all::verify
