// The remaining benchmark applications of Figure 11: SketchLearn,
// Precision, and ConQuest, composed from the elastic module library.
// (NetCache lives in netcache.hpp.)
#pragma once

#include <cstdint>
#include <string>

#include "sim/pipeline.hpp"
#include "workload/trace.hpp"

namespace p4all::apps {

/// SketchLearn-style hierarchical sketch: `levels` stacked count-min
/// sketches over the same key (level ℓ models the ℓ-th bit plane of the
/// flow ID in the original system), each elastic, sharing the utility
/// equally. Level sizes are tied together with assume equalities.
[[nodiscard]] std::string sketchlearn_source(int levels = 4);

/// Precision-style heavy hitter: an elastic d-way counting hash table plus
/// forwarding. Admission/eviction runs in the controller (recirculation
/// substitute; see DESIGN.md).
[[nodiscard]] std::string precision_source();

/// ConQuest-style queue measurement: `snapshots` rotating count-min
/// sketches plus an aggregation chain over their estimates.
[[nodiscard]] std::string conquest_source(int snapshots = 4);

/// Replays a trace through a compiled Precision pipeline with the
/// controller admission policy (claim an empty way on miss; otherwise evict
/// the minimum-count way with probability 1/(count+1), Precision's rule).
/// Returns the recall of the true top-`k` flows.
struct PrecisionResult {
    std::size_t top_k = 0;
    std::size_t found = 0;
    [[nodiscard]] double recall() const noexcept {
        return top_k == 0 ? 0.0 : static_cast<double>(found) / static_cast<double>(top_k);
    }
};

[[nodiscard]] PrecisionResult run_precision(sim::Pipeline& pipeline,
                                            const workload::Trace& trace, std::size_t top_k,
                                            std::uint64_t seed = 42);

/// FlowRadar-style flow monitoring (Figure 1's Bloom-filter composition):
/// an elastic Bloom filter detects new flows in the data plane (query and
/// same-packet insert) while an elastic counting table tracks per-flow
/// packet counts. Every flow should be reported exactly on its first
/// packet; a Bloom false positive silently swallows the report.
[[nodiscard]] std::string flowradar_source();

struct FlowRadarResult {
    std::size_t flows_total = 0;
    std::size_t flows_detected = 0;   // reported new exactly once
    std::size_t duplicate_reports = 0;

    [[nodiscard]] double detection_rate() const noexcept {
        return flows_total == 0
                   ? 0.0
                   : static_cast<double>(flows_detected) / static_cast<double>(flows_total);
    }
};

/// Replays a trace through a compiled FlowRadar pipeline; the controller
/// records a new-flow report whenever the Bloom query misses.
[[nodiscard]] FlowRadarResult run_flowradar(sim::Pipeline& pipeline,
                                            const workload::Trace& trace);

}  // namespace p4all::apps
