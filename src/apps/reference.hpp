// Host-side reference implementations of the Figure 1 data structures.
//
// These are exact, well-understood C++ implementations of the structures
// the elastic module library compiles to the data plane: count-min sketch,
// Bloom filter, hash-addressed key-value store, and hash table. They serve
// (a) as ground truth the simulator's behaviour is tested against, and
// (b) as fast stand-ins for sweeping large configuration grids (Figure 4)
// where compiling and simulating every grid point would be wasteful.
// They use the same hash family as the simulator, so a reference structure
// configured identically to a compiled layout behaves identically.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace p4all::apps {

/// Count-min sketch: `rows` hash rows of `cols` counters. Estimates
/// overcount but never undercount.
class CountMinSketch {
public:
    CountMinSketch(int rows, std::int64_t cols, std::uint64_t seed_base = 0);

    void update(std::uint64_t key, std::uint64_t amount = 1);
    [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const;
    void clear();

    [[nodiscard]] int rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }

private:
    int rows_;
    std::int64_t cols_;
    std::uint64_t seed_base_;
    std::vector<std::vector<std::uint64_t>> counts_;
};

/// Bloom filter: `hashes` hash functions over `bits` bits per row (one row
/// per hash, mirroring the register-matrix layout the module compiles to).
/// No false negatives; false-positive rate shrinks with bits.
class BloomFilter {
public:
    BloomFilter(int hashes, std::int64_t bits, std::uint64_t seed_base = 100);

    void insert(std::uint64_t key);
    [[nodiscard]] bool maybe_contains(std::uint64_t key) const;
    void clear();

    [[nodiscard]] int hashes() const noexcept { return hashes_; }
    [[nodiscard]] std::int64_t bits() const noexcept { return bits_; }

private:
    int hashes_;
    std::int64_t bits_;
    std::uint64_t seed_base_;
    std::vector<std::vector<bool>> rows_;
};

/// Hash-addressed key-value store, `ways` independent hash rows of `slots`
/// entries each (the in-switch KVS layout: key register + value register
/// per row). Lookup probes every way; insert takes the first empty probe.
class HashKvStore {
public:
    HashKvStore(int ways, std::int64_t slots, std::uint64_t seed_base = 200);

    /// Returns the value if the key is cached.
    [[nodiscard]] std::optional<std::uint64_t> lookup(std::uint64_t key) const;
    /// Inserts/overwrites; returns false if every probe slot is taken by
    /// another key (collision eviction is the caller's policy).
    bool insert(std::uint64_t key, std::uint64_t value);
    /// Removes a key if present.
    void erase(std::uint64_t key);
    void clear();

    /// The keys currently stored in `key`'s probe slot of each way (0 for
    /// empty) — the same view the data plane exposes via meta.kv_stored[i].
    [[nodiscard]] std::vector<std::uint64_t> probe_contents(std::uint64_t key) const;
    /// Overwrites `key`'s probe slot in `way` (the controller's eviction
    /// write; pairs with probe_contents).
    void replace_at(int way, std::uint64_t key, std::uint64_t value);

    [[nodiscard]] std::int64_t capacity() const noexcept {
        return static_cast<std::int64_t>(ways_) * slots_;
    }
    [[nodiscard]] std::int64_t occupied() const noexcept { return occupied_; }

private:
    struct Slot {
        bool used = false;
        std::uint64_t key = 0;
        std::uint64_t value = 0;
    };

    int ways_;
    std::int64_t slots_;
    std::uint64_t seed_base_;
    std::int64_t occupied_ = 0;
    std::vector<std::vector<Slot>> rows_;
};

/// Single-hash counting hash table (the Precision-style stage): each slot
/// holds (key, count); on collision the incumbent keeps the slot unless the
/// challenger's carried count exceeds it (Precision's entry replacement).
class CountingHashTable {
public:
    CountingHashTable(std::int64_t slots, std::uint64_t seed);

    /// Processes one packet for `key`: hit increments, miss may claim an
    /// empty slot; returns the count recorded for this key (0 if evicted /
    /// not admitted).
    std::uint64_t update(std::uint64_t key);
    [[nodiscard]] std::uint64_t count(std::uint64_t key) const;
    void clear();

private:
    struct Slot {
        std::uint64_t key = 0;
        std::uint64_t count = 0;
    };

    std::int64_t slots_;
    std::uint64_t seed_;
    std::vector<Slot> table_;
};

}  // namespace p4all::apps
