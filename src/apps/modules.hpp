// The reusable elastic-module library (§6.1, Figure 1).
//
// Each function renders one elastic data structure as a P4All source
// fragment with a caller-chosen name prefix, so multiple instances compose
// into one program (the paper's reuse story: NetCache = count-min sketch +
// key-value store; ConQuest = several count-min sketches; ...). A fragment
// carries its declarations, the apply-statements for the ingress control,
// and its utility term; Application stitches fragments into a complete
// program with a weighted utility function.
//
// Hash-seed bases are fixed per structure kind and shared with the
// host-side reference implementations (reference.hpp), so a compiled
// pipeline and an identically-sized reference structure behave identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p4all::apps {

/// Hash-seed bases shared between data-plane modules and host references.
inline constexpr std::uint64_t kCmsSeedBase = 0;
inline constexpr std::uint64_t kBloomSeedBase = 20;
inline constexpr std::uint64_t kKvSeedBase = 40;
inline constexpr std::uint64_t kPrecisionSeedBase = 60;

/// One module's contribution to a composed program.
struct ModuleParts {
    std::string decls;         // symbolics, assumes, metadata, registers, actions, controls
    std::string apply;         // statements for the ingress apply block
    std::string utility_term;  // e.g. "(cms_rows * cms_cols)"
};

/// Elastic count-min sketch over `key` (a packet-field expression like
/// "pkt.key"). Result: meta.<prefix>_min after the apply statements.
/// `seed_base` selects the hash-family slice (distinct instances may share
/// or separate hash functions as the application requires).
[[nodiscard]] ModuleParts cms_module(const std::string& prefix, const std::string& key,
                                     int max_rows = 4, std::int64_t min_cols = 64,
                                     std::uint64_t seed_base = kCmsSeedBase);

/// Elastic Bloom filter: query (meta.<prefix>_miss == 0 ⇒ maybe present)
/// and same-packet insert.
[[nodiscard]] ModuleParts bloom_module(const std::string& prefix, const std::string& key,
                                       int max_hashes = 4, std::int64_t min_bits = 128);

/// Elastic hash-addressed key-value store: after the apply statements
/// meta.<prefix>_hit is 1 and meta.<prefix>_out holds the value on a hit.
[[nodiscard]] ModuleParts kv_module(const std::string& prefix, const std::string& key,
                                    int max_ways = 9, std::int64_t min_slots = 16);

/// Elastic d-way counting hash table (the Precision-style heavy-hitter
/// stage chain): per-way probe + guarded count; admission/eviction runs in
/// the controller (standing in for Precision's recirculation).
[[nodiscard]] ModuleParts hash_table_module(const std::string& prefix, const std::string& key,
                                            int max_ways = 4, std::int64_t min_slots = 16);

/// A weighted utility term.
struct UtilityTerm {
    double weight = 1.0;
    std::string term;
};

/// Composes modules into a complete P4All program.
class Application {
public:
    explicit Application(std::string name) : name_(std::move(name)) {}

    /// Adds a packet-header field.
    Application& packet_field(const std::string& name, int width);
    /// Adds a module's fragments, weighting its utility term.
    Application& add(const ModuleParts& parts, double utility_weight);
    /// Appends a raw declaration (extra assumes, inelastic actions, ...).
    Application& raw_decl(std::string decl);
    /// Appends a raw statement to the ingress apply block.
    Application& raw_apply(std::string stmt);
    /// Appends an extra utility term.
    Application& utility(double weight, std::string term);

    /// Renders the full P4All program.
    [[nodiscard]] std::string source() const;
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    std::vector<std::pair<std::string, int>> packet_fields_;
    std::vector<std::string> decls_;
    std::vector<std::string> apply_;
    std::vector<UtilityTerm> utility_;
};

}  // namespace p4all::apps
