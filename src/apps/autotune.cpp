#include "apps/autotune.hpp"

#include "apps/netcache.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace p4all::apps {

std::string AutotuneResult::best_utility() const {
    const AutotuneCandidate& c = best_candidate();
    return "optimize " + support::format_double(1.0 - c.w_kv, 2) +
           " * (cms_rows * cms_cols) + " + support::format_double(c.w_kv, 2) +
           " * (kv_ways * kv_slots);";
}

AutotuneResult autotune_netcache(const workload::Trace& trace, const AutotuneOptions& options) {
    AutotuneResult result;
    double best_rate = -1.0;
    for (const double w_kv : options.kv_weights) {
        compiler::CompileOptions copts;
        copts.target = options.target;
        copts.backend = options.backend;
        AutotuneCandidate candidate;
        candidate.w_kv = w_kv;
        try {
            const compiler::CompileResult r = compiler::compile_source(
                netcache_source(1.0 - w_kv, w_kv, options.min_kv_bits), copts, "netcache");
            candidate.cms_rows = r.layout.binding(r.program.find_symbol("cms_rows"));
            candidate.cms_cols = r.layout.binding(r.program.find_symbol("cms_cols"));
            candidate.kv_ways = r.layout.binding(r.program.find_symbol("kv_ways"));
            candidate.kv_slots = r.layout.binding(r.program.find_symbol("kv_slots"));
            candidate.compile_seconds = r.stats.total_seconds;
        } catch (const support::CompileError&) {
            continue;  // candidate does not fit this target
        }
        const NetCacheResult q = netcache_quality(
            static_cast<int>(candidate.cms_rows), candidate.cms_cols,
            static_cast<int>(candidate.kv_ways), candidate.kv_slots, trace,
            options.promote_threshold);
        candidate.hit_rate = q.hit_rate();
        if (candidate.hit_rate > best_rate) {
            best_rate = candidate.hit_rate;
            result.best = result.candidates.size();
        }
        result.candidates.push_back(candidate);
    }
    if (result.candidates.empty()) {
        throw support::CompileError("autotune: no candidate utility fits the target");
    }
    return result;
}

}  // namespace p4all::apps
