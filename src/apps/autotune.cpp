#include "apps/autotune.hpp"

#include <algorithm>

#include "apps/netcache.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace p4all::apps {

namespace {

/// Order-preserving seeded subsample of `trace` (cache behavior depends on
/// packet order, so the sample keeps the original sequence).
workload::Trace subsample_trace(const workload::Trace& trace, std::size_t max_packets,
                                std::uint64_t seed) {
    if (max_packets == 0 || trace.keys.size() <= max_packets) return trace;
    support::Xoshiro256 rng(seed);
    std::vector<std::size_t> picks(trace.keys.size());
    for (std::size_t i = 0; i < picks.size(); ++i) picks[i] = i;
    // Partial Fisher-Yates: choose max_packets distinct indices.
    for (std::size_t i = 0; i < max_packets; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.next_below(picks.size() - i));
        std::swap(picks[i], picks[j]);
    }
    picks.resize(max_packets);
    std::sort(picks.begin(), picks.end());
    workload::Trace out;
    out.keys.reserve(max_packets);
    for (const std::size_t i : picks) {
        out.keys.push_back(trace.keys[i]);
        ++out.counts[trace.keys[i]];
    }
    return out;
}

}  // namespace

std::string AutotuneResult::best_utility() const {
    const AutotuneCandidate& c = best_candidate();
    return "optimize " + support::format_double(1.0 - c.w_kv, 2) +
           " * (cms_rows * cms_cols) + " + support::format_double(c.w_kv, 2) +
           " * (kv_ways * kv_slots);";
}

AutotuneResult autotune_netcache(const workload::Trace& trace, const AutotuneOptions& options) {
    AutotuneResult result;
    const workload::Trace eval_trace =
        subsample_trace(trace, options.max_eval_packets, options.eval_seed);
    result.eval_seed = options.eval_seed;
    result.eval_packets = eval_trace.keys.size();
    double best_rate = -1.0;
    for (const double w_kv : options.kv_weights) {
        compiler::CompileOptions copts;
        copts.target = options.target;
        copts.backend = options.backend;
        AutotuneCandidate candidate;
        candidate.w_kv = w_kv;
        try {
            const compiler::CompileResult r = compiler::compile_source(
                netcache_source(1.0 - w_kv, w_kv, options.min_kv_bits), copts, "netcache");
            candidate.cms_rows = r.layout.binding(r.program.find_symbol("cms_rows"));
            candidate.cms_cols = r.layout.binding(r.program.find_symbol("cms_cols"));
            candidate.kv_ways = r.layout.binding(r.program.find_symbol("kv_ways"));
            candidate.kv_slots = r.layout.binding(r.program.find_symbol("kv_slots"));
            candidate.compile_seconds = r.stats.total_seconds;
        } catch (const support::CompileError&) {
            continue;  // candidate does not fit this target
        }
        candidate.eval_seed = options.eval_seed;
        candidate.eval_packets = eval_trace.keys.size();
        const NetCacheResult q = netcache_quality(
            static_cast<int>(candidate.cms_rows), candidate.cms_cols,
            static_cast<int>(candidate.kv_ways), candidate.kv_slots, eval_trace,
            options.promote_threshold);
        candidate.hit_rate = q.hit_rate();
        if (candidate.hit_rate > best_rate) {
            best_rate = candidate.hit_rate;
            result.best = result.candidates.size();
        }
        result.candidates.push_back(candidate);
    }
    if (result.candidates.empty()) {
        throw support::CompileError("autotune: no candidate utility fits the target");
    }
    return result;
}

}  // namespace p4all::apps
