#include "apps/netcache.hpp"

#include "apps/modules.hpp"
#include "apps/reference.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace p4all::apps {

std::string netcache_source(double w_cms, double w_kv, std::int64_t min_kv_bits) {
    Application app("netcache");
    app.packet_field("key", 64);
    app.packet_field("dst", 32);
    // The paper's §3.2.1 assume caps the sketch at four hash rows
    // (diminishing returns beyond that); with the sketch capped, the
    // key-value store absorbs the remaining pipeline — the Figure 7 shape.
    // The KVS way count is structurally bounded by the pipeline depth.
    app.add(kv_module("kv", "pkt.key", /*max_ways=*/9), w_kv);
    app.add(cms_module("cms", "pkt.key", /*max_rows=*/4), w_cms);
    // Inelastic forwarding baggage every real switch program carries.
    app.raw_decl(R"(
metadata { bit<32> egress; }
action route() { set(meta.egress, pkt.dst); }
)");
    app.raw_apply("route();");
    if (min_kv_bits > 0) {
        // Each KVS slot is a 64-bit key plus a 64-bit value register.
        app.raw_decl("assume kv_ways * kv_slots * 128 >= " + std::to_string(min_kv_bits) +
                     ";\n");
    }
    return app.source();
}

namespace {

/// Shared controller policy (the real NetCache controller's promote/evict
/// loop, host-side in both the simulated and modeled runs):
///  - miss with estimate ≥ threshold: install into an empty probe slot, or
///    evict the probe-slot resident whose *current* sketch estimate is the
///    lowest, if this key's estimate beats it. Comparing live counter values
///    (the controller reads the sketch, as NetCache's does via switch RPCs)
///    is what makes sketch accuracy matter: an undersized sketch cannot
///    tell hot keys from cold residents.
/// Callbacks:
///  - lookup(key) -> {hit, estimate}  (processes one packet / model step)
///  - probe(key) -> stored key per way (0 = empty)
///  - estimate_of(key)                (current sketch estimate, no update)
///  - write(way, key)                 (install at key's probe slot in way)
template <typename LookupFn, typename ProbeFn, typename EstimateFn, typename WriteFn>
void drive_netcache(const workload::Trace& trace, std::uint64_t threshold, LookupFn&& lookup,
                    ProbeFn&& probe, EstimateFn&& estimate_of, WriteFn&& write,
                    NetCacheResult& result) {
    for (const std::uint64_t raw_key : trace.keys) {
        const std::uint64_t key = raw_key + 1;  // 0 is the empty-slot sentinel
        ++result.queries;
        const auto [hit, estimate] = lookup(key);
        if (hit) {
            ++result.hits;
            continue;
        }
        if (estimate < threshold) continue;
        const std::vector<std::uint64_t> residents = probe(key);
        int victim_way = -1;
        std::uint64_t victim_est = ~0ULL;
        std::uint64_t victim_key = 0;
        for (std::size_t w = 0; w < residents.size(); ++w) {
            if (residents[w] == 0) {
                victim_way = static_cast<int>(w);
                victim_est = 0;
                victim_key = 0;
                break;
            }
            const std::uint64_t est = estimate_of(residents[w]);
            if (est < victim_est) {
                victim_est = est;
                victim_way = static_cast<int>(w);
                victim_key = residents[w];
            }
        }
        if (victim_way < 0) continue;
        if (victim_key != 0 && estimate <= victim_est) continue;  // incumbent stays
        write(victim_way, key);
        ++result.promotions;
    }
}

}  // namespace

NetCacheResult run_netcache(sim::Pipeline& pipeline, const workload::Trace& trace,
                            std::uint64_t promote_threshold) {
    const ir::Program& prog = pipeline.program();
    const std::int64_t kv_ways_binding = [&] {
        std::int64_t ways = 0;
        while (pipeline.reg_size("kv_keys", ways) > 0) ++ways;
        return ways;
    }();

    NetCacheResult result;
    const ir::PacketFieldId key_field = prog.find_packet("key");
    const ir::PacketFieldId dst_field = prog.find_packet("dst");
    sim::Packet pkt(prog.packet_fields.size(), 0);

    // The data plane computes this key's probe index and resident key per
    // way (meta.kv_idx[i] / meta.kv_stored[i]); the controller's probe and
    // write callbacks read them back, exactly like NetCache's switch RPCs.
    drive_netcache(
        trace, promote_threshold,
        [&](std::uint64_t key) -> std::pair<bool, std::uint64_t> {
            pkt[static_cast<std::size_t>(key_field)] = key;
            pkt[static_cast<std::size_t>(dst_field)] = key & 0xFF;
            pipeline.process(pkt);
            return {pipeline.meta("kv_hit") == 1, pipeline.meta("cms_min")};
        },
        [&](std::uint64_t key) {
            (void)key;  // indices already latched in the PHV
            std::vector<std::uint64_t> residents;
            for (std::int64_t way = 0; way < kv_ways_binding; ++way) {
                residents.push_back(pipeline.meta("kv_stored", way));
            }
            return residents;
        },
        [&](std::uint64_t key) {
            // Controller-side sketch query: hash with the module's seeds and
            // read the counters (the switch-RPC the real controller issues).
            std::uint64_t best = ~0ULL;
            for (std::int64_t row = 0;; ++row) {
                const std::int64_t cols = pipeline.reg_size("cms_cms", row);
                if (cols == 0) break;
                const std::uint64_t idx = support::hash_index(
                    key, kCmsSeedBase + static_cast<std::uint64_t>(row),
                    static_cast<std::uint64_t>(cols));
                best = std::min(best,
                                pipeline.reg_read("cms_cms", row, static_cast<std::int64_t>(idx)));
            }
            return best;
        },
        [&](int way, std::uint64_t key) {
            const auto idx = static_cast<std::int64_t>(pipeline.meta("kv_idx", way));
            pipeline.reg_write("kv_keys", way, idx, key);
            pipeline.reg_write("kv_vals", way, idx, key * 31 + 7);  // deterministic payload
        },
        result);
    return result;
}

NetCacheResult netcache_quality(int cms_rows, std::int64_t cms_cols, int kv_ways,
                                std::int64_t kv_slots, const workload::Trace& trace,
                                std::uint64_t promote_threshold) {
    CountMinSketch cms(cms_rows, cms_cols, kCmsSeedBase);
    HashKvStore kv(kv_ways, kv_slots, kKvSeedBase);
    NetCacheResult result;
    drive_netcache(
        trace, promote_threshold,
        [&](std::uint64_t key) -> std::pair<bool, std::uint64_t> {
            const bool hit = kv.lookup(key).has_value();
            cms.update(key);
            return {hit, cms.estimate(key)};
        },
        [&](std::uint64_t key) { return kv.probe_contents(key); },
        [&](std::uint64_t key) { return cms.estimate(key); },
        [&](int way, std::uint64_t key) { kv.replace_at(way, key, key * 31 + 7); }, result);
    return result;
}

}  // namespace p4all::apps
