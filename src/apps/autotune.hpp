// Utility-function auto-generation from expected workloads.
//
// The paper closes §6.2 with: "An interesting extension would involve
// building a system to generate utility functions automatically from
// expected workloads. We leave this topic to future research." This module
// implements that loop for NetCache: sweep the utility weight between the
// sketch and the store, compile each candidate, evaluate the resulting
// configuration's cache hit rate on a representative trace with the
// host-side quality model, and return the weights (and the concrete
// `optimize` line) that maximize measured quality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "workload/trace.hpp"

namespace p4all::apps {

struct AutotuneOptions {
    target::TargetSpec target = target::tofino_like();
    /// Candidate KVS weights (the CMS weight is the complement).
    std::vector<double> kv_weights = {0.1, 0.3, 0.5, 0.6, 0.7, 0.85, 0.95};
    std::uint64_t promote_threshold = 8;
    std::int64_t min_kv_bits = 0;
    /// Backend per candidate. The greedy backend is the default: the search
    /// measures each candidate's *quality on the trace*, so near-optimal
    /// layouts suffice and the sweep stays interactive; recompile the
    /// winner exactly afterwards if desired.
    compiler::Backend backend = compiler::Backend::Greedy;
    /// Seed for every random choice in candidate evaluation (currently the
    /// trace subsample draw). Recorded per candidate and in the result so a
    /// sweep replays bit-for-bit.
    std::uint64_t eval_seed = 7;
    /// Evaluate each candidate on at most this many packets, drawn as a
    /// seeded order-preserving subsample of the trace. 0 = full trace.
    std::size_t max_eval_packets = 0;
};

struct AutotuneCandidate {
    double w_kv = 0.0;
    double hit_rate = 0.0;
    std::int64_t cms_rows = 0;
    std::int64_t cms_cols = 0;
    std::int64_t kv_ways = 0;
    std::int64_t kv_slots = 0;
    double compile_seconds = 0.0;
    std::uint64_t eval_seed = 0;   ///< seed this candidate was evaluated under
    std::size_t eval_packets = 0;  ///< packets the quality model replayed
};

struct AutotuneResult {
    std::vector<AutotuneCandidate> candidates;  // in sweep order
    std::size_t best = 0;                       // index into candidates
    std::uint64_t eval_seed = 0;                // the sweep-wide evaluation seed
    std::size_t eval_packets = 0;               // per-candidate replay length

    [[nodiscard]] const AutotuneCandidate& best_candidate() const {
        return candidates.at(best);
    }
    /// The generated `optimize` declaration for the winning weights.
    [[nodiscard]] std::string best_utility() const;
};

/// Sweeps utility weights for NetCache against `trace`. Candidates whose
/// programs do not fit the target are skipped. Throws if none fit.
[[nodiscard]] AutotuneResult autotune_netcache(const workload::Trace& trace,
                                               const AutotuneOptions& options = {});

}  // namespace p4all::apps
