#include "apps/applications.hpp"

#include <algorithm>
#include <set>

#include "apps/modules.hpp"
#include "support/rng.hpp"

namespace p4all::apps {

std::string sketchlearn_source(int levels) {
    Application app("sketchlearn");
    app.packet_field("flow_id", 64);
    app.packet_field("dst", 32);
    const double weight = 1.0 / levels;
    for (int l = 0; l < levels; ++l) {
        const std::string prefix = "lvl" + std::to_string(l);
        // Each bit-plane level uses its own hash-family slice.
        app.add(cms_module(prefix, "pkt.flow_id", /*max_rows=*/2, /*min_cols=*/64,
                           kCmsSeedBase + static_cast<std::uint64_t>(l) * 8),
                weight);
    }
    // Tie all level geometries together (the hierarchical sketch is
    // uniform across levels).
    for (int l = 1; l < levels; ++l) {
        app.raw_decl("assume lvl0_rows == lvl" + std::to_string(l) + "_rows;\n");
        app.raw_decl("assume lvl0_cols == lvl" + std::to_string(l) + "_cols;\n");
    }
    app.raw_decl(R"(
metadata { bit<32> egress; }
action route() { set(meta.egress, pkt.dst); }
)");
    app.raw_apply("route();");
    return app.source();
}

std::string precision_source() {
    Application app("precision");
    app.packet_field("flow_id", 64);
    app.packet_field("dst", 32);
    app.add(hash_table_module("hh", "pkt.flow_id"), 1.0);
    app.raw_decl(R"(
metadata { bit<32> egress; }
action route() { set(meta.egress, pkt.dst); }
)");
    app.raw_apply("route();");
    return app.source();
}

std::string conquest_source(int snapshots) {
    Application app("conquest");
    app.packet_field("flow_id", 64);
    app.packet_field("dst", 32);
    const double weight = 1.0 / snapshots;
    std::string total_decl = "metadata { bit<32> cq_total; }\n";
    std::string agg_actions;
    std::string agg_calls;
    for (int s = 0; s < snapshots; ++s) {
        const std::string prefix = "snap" + std::to_string(s);
        // Snapshots deliberately share one hash-family slice: they are
        // time-rotated copies of the same sketch.
        app.add(cms_module(prefix, "pkt.flow_id", /*max_rows=*/2), weight);
        agg_actions += "action cq_add" + std::to_string(s) + "() { add(meta.cq_total, meta.cq_total, meta." +
                       prefix + "_min); }\n";
        agg_calls += "cq_add" + std::to_string(s) + "();\n";
    }
    // Snapshots are interchangeable: force identical geometry.
    for (int s = 1; s < snapshots; ++s) {
        app.raw_decl("assume snap0_rows == snap" + std::to_string(s) + "_rows;\n");
        app.raw_decl("assume snap0_cols == snap" + std::to_string(s) + "_cols;\n");
    }
    app.raw_decl(total_decl + agg_actions);
    app.raw_apply(agg_calls);
    return app.source();
}

std::string flowradar_source() {
    Application app("flowradar");
    app.packet_field("flow_id", 64);
    app.packet_field("dst", 32);
    app.add(bloom_module("ff", "pkt.flow_id"), 0.5);
    app.add(hash_table_module("fc", "pkt.flow_id", /*max_ways=*/2), 0.5);
    app.raw_decl(R"(
metadata { bit<32> egress; }
action route() { set(meta.egress, pkt.dst); }
)");
    app.raw_apply("route();");
    return app.source();
}

FlowRadarResult run_flowradar(sim::Pipeline& pipeline, const workload::Trace& trace) {
    const ir::Program& prog = pipeline.program();
    const ir::PacketFieldId flow_field = prog.find_packet("flow_id");
    const ir::PacketFieldId dst_field = prog.find_packet("dst");
    sim::Packet pkt(prog.packet_fields.size(), 0);

    std::set<std::uint64_t> reported;
    FlowRadarResult result;
    for (const std::uint64_t key : trace.keys) {
        pkt[static_cast<std::size_t>(flow_field)] = key;
        pkt[static_cast<std::size_t>(dst_field)] = key & 0xFF;
        pipeline.process(pkt);
        // The Bloom query counted zero misses => "seen before"; any miss
        // means at least one row bit was clear, i.e. a new flow.
        if (pipeline.meta("ff_miss") > 0) {
            if (!reported.insert(key).second) ++result.duplicate_reports;
        }
    }
    result.flows_total = trace.counts.size();
    result.flows_detected = reported.size();
    return result;
}

PrecisionResult run_precision(sim::Pipeline& pipeline, const workload::Trace& trace,
                              std::size_t top_k, std::uint64_t seed) {
    const ir::Program& prog = pipeline.program();
    const ir::PacketFieldId flow_field = prog.find_packet("flow_id");
    const ir::PacketFieldId dst_field = prog.find_packet("dst");
    const std::int64_t ways = [&] {
        std::int64_t w = 0;
        while (pipeline.reg_size("hh_keys", w) > 0) ++w;
        return w;
    }();
    support::Xoshiro256 rng(seed);
    sim::Packet pkt(prog.packet_fields.size(), 0);

    for (const std::uint64_t key : trace.keys) {
        pkt[static_cast<std::size_t>(flow_field)] = key;
        pkt[static_cast<std::size_t>(dst_field)] = key & 0xFF;
        pipeline.process(pkt);
        if (pipeline.meta("hh_matched") == 1) continue;

        // Controller admission (recirculation substitute): claim an empty
        // way, else evict the min-count way with probability 1/(count+1).
        std::int64_t best_way = -1;
        std::uint64_t best_count = ~0ULL;
        for (std::int64_t w = 0; w < ways; ++w) {
            const auto idx = static_cast<std::int64_t>(pipeline.meta("hh_idx", w));
            const std::uint64_t stored = pipeline.reg_read("hh_keys", w, idx);
            if (stored == 0) {
                best_way = w;
                best_count = 0;
                break;
            }
            const std::uint64_t count = pipeline.reg_read("hh_cnts", w, idx);
            if (count < best_count) {
                best_count = count;
                best_way = w;
            }
        }
        if (best_way < 0) continue;
        const bool admit =
            best_count == 0 || rng.next_below(best_count + 1) == 0;  // P = 1/(count+1)
        if (admit) {
            const auto idx = static_cast<std::int64_t>(pipeline.meta("hh_idx", best_way));
            pipeline.reg_write("hh_keys", best_way, idx, key);
            pipeline.reg_write("hh_cnts", best_way, idx, best_count + 1);
        }
    }

    // Recall of the true top-k flows among the table's residents.
    std::set<std::uint64_t> resident;
    for (std::int64_t w = 0; w < ways; ++w) {
        const std::int64_t slots = pipeline.reg_size("hh_keys", w);
        for (std::int64_t i = 0; i < slots; ++i) {
            const std::uint64_t key = pipeline.reg_read("hh_keys", w, i);
            if (key != 0) resident.insert(key);
        }
    }
    PrecisionResult result;
    const std::vector<std::uint64_t> truth = workload::top_keys(trace, top_k);
    result.top_k = truth.size();
    for (const std::uint64_t key : truth) {
        result.found += resident.count(key) != 0 ? 1 : 0;
    }
    return result;
}

}  // namespace p4all::apps
