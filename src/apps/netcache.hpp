// NetCache (§3, §6): an in-switch key-value cache built from the elastic
// count-min sketch and key-value store modules.
//
// The data plane serves cached keys and tracks key popularity; a controller
// (host-side here, as in the real system) promotes keys whose popularity
// estimate crosses a threshold into the cache. Quality = cache hit rate,
// the metric behind the paper's Figure 4.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/compiler.hpp"
#include "sim/pipeline.hpp"
#include "workload/trace.hpp"

namespace p4all::apps {

/// The NetCache P4All program: CMS (prefix "cms") + KVS (prefix "kv") +
/// an inelastic forwarding action, with utility
/// w_cms·(cms_rows·cms_cols) + w_kv·(kv_ways·kv_slots).
/// `min_kv_bits` > 0 adds the paper's §6.2 assume that reserves at least
/// that much memory for the key-value store (8 Mb in Figure 13).
[[nodiscard]] std::string netcache_source(double w_cms = 0.4, double w_kv = 0.6,
                                          std::int64_t min_kv_bits = 0);

/// Result of replaying a trace through a NetCache pipeline.
struct NetCacheResult {
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    std::uint64_t promotions = 0;

    [[nodiscard]] double hit_rate() const noexcept {
        return queries == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(queries);
    }
};

/// Replays `trace` through a compiled NetCache pipeline, running the
/// controller promotion loop: on a miss whose popularity estimate reaches
/// `promote_threshold`, the key is installed into an empty probe slot (the
/// controller reads the data plane's own probe indices, mirroring the real
/// NetCache controller's switch writes). Keys are offset by +1 so key 0
/// never collides with the empty-slot sentinel.
[[nodiscard]] NetCacheResult run_netcache(sim::Pipeline& pipeline, const workload::Trace& trace,
                                          std::uint64_t promote_threshold = 32);

/// Host-side quality model with identical hashing and policy, for sweeping
/// configuration grids (Figure 4) without compiling every point.
[[nodiscard]] NetCacheResult netcache_quality(int cms_rows, std::int64_t cms_cols, int kv_ways,
                                              std::int64_t kv_slots,
                                              const workload::Trace& trace,
                                              std::uint64_t promote_threshold = 32);

}  // namespace p4all::apps
