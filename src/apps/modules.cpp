#include "apps/modules.hpp"

#include "support/strings.hpp"

namespace p4all::apps {

namespace {
/// Replaces every "$P" with the prefix, "$K" with the key expression, and
/// "$S" with the seed base — a tiny template engine for module sources.
std::string instantiate(std::string text, const std::string& prefix, const std::string& key,
                        std::uint64_t seed_base) {
    const auto replace_all = [&text](const std::string& from, const std::string& to) {
        std::size_t pos = 0;
        while ((pos = text.find(from, pos)) != std::string::npos) {
            text.replace(pos, from.size(), to);
            pos += to.size();
        }
    };
    replace_all("$P", prefix);
    replace_all("$K", key);
    replace_all("$S", std::to_string(seed_base));
    return text;
}
}  // namespace

ModuleParts cms_module(const std::string& prefix, const std::string& key, int max_rows,
                       std::int64_t min_cols, std::uint64_t seed_base) {
    ModuleParts parts;
    parts.decls = instantiate(R"(
// --- count-min sketch '$P' ---
symbolic int $P_rows;
symbolic int $P_cols;
assume $P_rows >= 1 && $P_rows <= )" + std::to_string(max_rows) + R"(;
assume $P_cols >= )" + std::to_string(min_cols) + R"(;
metadata {
    bit<32>[$P_rows] $P_idx;
    bit<32>[$P_rows] $P_cnt;
    bit<32> $P_min;
}
register<bit<32>>[$P_cols][$P_rows] $P_cms;
action $P_init() { set(meta.$P_min, 4294967295); }
action $P_incr()[int i] {
    hash(meta.$P_idx[i], $S + i, $K, $P_cms[i]);
    reg_add($P_cms[i], meta.$P_idx[i], 1, meta.$P_cnt[i]);
}
action $P_fold()[int i] { min(meta.$P_min, meta.$P_cnt[i]); }
control $P_update { apply { $P_init(); for (i < $P_rows) { $P_incr()[i]; } } }
control $P_take_min { apply { for (i < $P_rows) { $P_fold()[i]; } } }
)",
                              prefix, key, seed_base);
    parts.apply = instantiate("$P_update.apply();\n$P_take_min.apply();\n", prefix, key, 0);
    parts.utility_term = "(" + prefix + "_rows * " + prefix + "_cols)";
    return parts;
}

ModuleParts bloom_module(const std::string& prefix, const std::string& key, int max_hashes,
                         std::int64_t min_bits) {
    ModuleParts parts;
    parts.decls = instantiate(R"(
// --- bloom filter '$P' ---
symbolic int $P_hashes;
symbolic int $P_bits;
assume $P_hashes >= 1 && $P_hashes <= )" + std::to_string(max_hashes) + R"(;
assume $P_bits >= )" + std::to_string(min_bits) + R"(;
metadata {
    bit<32>[$P_hashes] $P_idx;
    bit<32>[$P_hashes] $P_midx;
    bit<8>[$P_hashes] $P_seen;
    bit<8> $P_miss;
}
register<bit<1>>[$P_bits][$P_hashes] $P_bf;
action $P_check()[int i] {
    hash(meta.$P_idx[i], $S + i, $K, $P_bf[i]);
    reg_read($P_bf[i], meta.$P_idx[i], meta.$P_seen[i]);
}
// Insert recomputes its own index: sharing $P_idx with the query would
// force a cross-action same-stage dependency on the shared register row,
// which no PISA stage can realize (and the compiler rejects).
action $P_mark()[int i] {
    hash(meta.$P_midx[i], $S + i, $K, $P_bf[i]);
    reg_write($P_bf[i], meta.$P_midx[i], 1);
}
action $P_tally()[int i] { add(meta.$P_miss, meta.$P_miss, 1); }
control $P_query { apply { for (i < $P_hashes) { $P_check()[i]; } } }
control $P_insert { apply { for (i < $P_hashes) { $P_mark()[i]; } } }
control $P_count_misses {
    apply { for (i < $P_hashes) { if (meta.$P_seen[i] == 0) { $P_tally()[i]; } } }
}
)",
                              prefix, key, kBloomSeedBase);
    parts.apply = instantiate(
        "$P_query.apply();\n$P_insert.apply();\n$P_count_misses.apply();\n", prefix, key, 0);
    parts.utility_term = "(" + prefix + "_hashes * " + prefix + "_bits)";
    return parts;
}

ModuleParts kv_module(const std::string& prefix, const std::string& key, int max_ways,
                      std::int64_t min_slots) {
    ModuleParts parts;
    parts.decls = instantiate(R"(
// --- key-value store '$P' ---
symbolic int $P_ways;
symbolic int $P_slots;
assume $P_ways >= 1 && $P_ways <= )" + std::to_string(max_ways) + R"(;
assume $P_slots >= )" + std::to_string(min_slots) + R"(;
metadata {
    bit<32>[$P_ways] $P_idx;
    bit<64>[$P_ways] $P_stored;
    bit<64>[$P_ways] $P_val;
    bit<8> $P_hit;
    bit<64> $P_out;
}
register<bit<64>>[$P_slots][$P_ways] $P_keys;
register<bit<64>>[$P_slots][$P_ways] $P_vals;
action $P_probe()[int i] {
    hash(meta.$P_idx[i], $S + i, $K, $P_keys[i]);
    reg_read($P_keys[i], meta.$P_idx[i], meta.$P_stored[i]);
    reg_read($P_vals[i], meta.$P_idx[i], meta.$P_val[i]);
}
action $P_take()[int i] {
    max(meta.$P_hit, 1);
    max(meta.$P_out, meta.$P_val[i]);
}
control $P_lookup { apply { for (i < $P_ways) { $P_probe()[i]; } } }
control $P_match {
    apply { for (i < $P_ways) { if (meta.$P_stored[i] == $K) { $P_take()[i]; } } }
}
)",
                              prefix, key, kKvSeedBase);
    parts.apply = instantiate("$P_lookup.apply();\n$P_match.apply();\n", prefix, key, 0);
    parts.utility_term = "(" + prefix + "_ways * " + prefix + "_slots)";
    return parts;
}

ModuleParts hash_table_module(const std::string& prefix, const std::string& key, int max_ways,
                              std::int64_t min_slots) {
    ModuleParts parts;
    parts.decls = instantiate(R"(
// --- counting hash table '$P' ---
symbolic int $P_ways;
symbolic int $P_slots;
assume $P_ways >= 1 && $P_ways <= )" + std::to_string(max_ways) + R"(;
assume $P_slots >= )" + std::to_string(min_slots) + R"(;
metadata {
    bit<32>[$P_ways] $P_idx;
    bit<64>[$P_ways] $P_key;
    bit<32>[$P_ways] $P_cnt;
    bit<8> $P_matched;
}
register<bit<64>>[$P_slots][$P_ways] $P_keys;
register<bit<32>>[$P_slots][$P_ways] $P_cnts;
action $P_probe()[int i] {
    hash(meta.$P_idx[i], $S + i, $K, $P_keys[i]);
    reg_read($P_keys[i], meta.$P_idx[i], meta.$P_key[i]);
}
action $P_bump()[int i] {
    reg_add($P_cnts[i], meta.$P_idx[i], 1, meta.$P_cnt[i]);
    max(meta.$P_matched, 1);
}
control $P_lookup { apply { for (i < $P_ways) { $P_probe()[i]; } } }
control $P_count {
    apply { for (i < $P_ways) { if (meta.$P_key[i] == $K) { $P_bump()[i]; } } }
}
)",
                              prefix, key, kPrecisionSeedBase);
    parts.apply = instantiate("$P_lookup.apply();\n$P_count.apply();\n", prefix, key, 0);
    parts.utility_term = "(" + prefix + "_ways * " + prefix + "_slots)";
    return parts;
}

Application& Application::packet_field(const std::string& name, int width) {
    packet_fields_.emplace_back(name, width);
    return *this;
}

Application& Application::add(const ModuleParts& parts, double utility_weight) {
    decls_.push_back(parts.decls);
    apply_.push_back(parts.apply);
    utility_.push_back({utility_weight, parts.utility_term});
    return *this;
}

Application& Application::raw_decl(std::string decl) {
    decls_.push_back(std::move(decl));
    return *this;
}

Application& Application::raw_apply(std::string stmt) {
    apply_.push_back(std::move(stmt));
    return *this;
}

Application& Application::utility(double weight, std::string term) {
    utility_.push_back({weight, std::move(term)});
    return *this;
}

std::string Application::source() const {
    std::string out = "// P4All application: " + name_ + "\n";
    if (!packet_fields_.empty()) {
        out += "packet {\n";
        for (const auto& [name, width] : packet_fields_) {
            out += "    bit<" + std::to_string(width) + "> " + name + ";\n";
        }
        out += "}\n";
    }
    for (const std::string& d : decls_) out += d;
    out += "\ncontrol ingress {\n    apply {\n";
    for (const std::string& stmts : apply_) {
        for (const std::string& line : support::split(stmts, '\n')) {
            if (!support::trim(line).empty()) out += "        " + std::string(support::trim(line)) + "\n";
        }
    }
    out += "    }\n}\n";
    if (!utility_.empty()) {
        out += "optimize ";
        for (std::size_t i = 0; i < utility_.size(); ++i) {
            if (i != 0) out += " + ";
            out += support::format_double(utility_[i].weight, 4) + " * " + utility_[i].term;
        }
        out += ";\n";
    }
    return out;
}

}  // namespace p4all::apps
