#include "apps/reference.hpp"

#include <algorithm>
#include <limits>

#include "support/hash.hpp"

namespace p4all::apps {

using support::hash_index;

CountMinSketch::CountMinSketch(int rows, std::int64_t cols, std::uint64_t seed_base)
    : rows_(rows), cols_(cols), seed_base_(seed_base),
      counts_(static_cast<std::size_t>(rows),
              std::vector<std::uint64_t>(static_cast<std::size_t>(cols), 0)) {}

void CountMinSketch::update(std::uint64_t key, std::uint64_t amount) {
    for (int r = 0; r < rows_; ++r) {
        const std::uint64_t idx =
            hash_index(key, seed_base_ + static_cast<std::uint64_t>(r),
                       static_cast<std::uint64_t>(cols_));
        counts_[static_cast<std::size_t>(r)][idx] += amount;
    }
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (int r = 0; r < rows_; ++r) {
        const std::uint64_t idx =
            hash_index(key, seed_base_ + static_cast<std::uint64_t>(r),
                       static_cast<std::uint64_t>(cols_));
        best = std::min(best, counts_[static_cast<std::size_t>(r)][idx]);
    }
    return rows_ == 0 ? 0 : best;
}

void CountMinSketch::clear() {
    for (auto& row : counts_) std::fill(row.begin(), row.end(), 0);
}

BloomFilter::BloomFilter(int hashes, std::int64_t bits, std::uint64_t seed_base)
    : hashes_(hashes), bits_(bits), seed_base_(seed_base),
      rows_(static_cast<std::size_t>(hashes),
            std::vector<bool>(static_cast<std::size_t>(bits), false)) {}

void BloomFilter::insert(std::uint64_t key) {
    for (int h = 0; h < hashes_; ++h) {
        rows_[static_cast<std::size_t>(h)]
             [hash_index(key, seed_base_ + static_cast<std::uint64_t>(h),
                         static_cast<std::uint64_t>(bits_))] = true;
    }
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
    for (int h = 0; h < hashes_; ++h) {
        if (!rows_[static_cast<std::size_t>(h)]
                  [hash_index(key, seed_base_ + static_cast<std::uint64_t>(h),
                              static_cast<std::uint64_t>(bits_))]) {
            return false;
        }
    }
    return true;
}

void BloomFilter::clear() {
    for (auto& row : rows_) std::fill(row.begin(), row.end(), false);
}

HashKvStore::HashKvStore(int ways, std::int64_t slots, std::uint64_t seed_base)
    : ways_(ways), slots_(slots), seed_base_(seed_base),
      rows_(static_cast<std::size_t>(ways),
            std::vector<Slot>(static_cast<std::size_t>(slots))) {}

std::optional<std::uint64_t> HashKvStore::lookup(std::uint64_t key) const {
    for (int w = 0; w < ways_; ++w) {
        const Slot& slot =
            rows_[static_cast<std::size_t>(w)]
                 [hash_index(key, seed_base_ + static_cast<std::uint64_t>(w),
                             static_cast<std::uint64_t>(slots_))];
        if (slot.used && slot.key == key) return slot.value;
    }
    return std::nullopt;
}

bool HashKvStore::insert(std::uint64_t key, std::uint64_t value) {
    // Overwrite an existing entry first.
    for (int w = 0; w < ways_; ++w) {
        Slot& slot = rows_[static_cast<std::size_t>(w)]
                          [hash_index(key, seed_base_ + static_cast<std::uint64_t>(w),
                                      static_cast<std::uint64_t>(slots_))];
        if (slot.used && slot.key == key) {
            slot.value = value;
            return true;
        }
    }
    for (int w = 0; w < ways_; ++w) {
        Slot& slot = rows_[static_cast<std::size_t>(w)]
                          [hash_index(key, seed_base_ + static_cast<std::uint64_t>(w),
                                      static_cast<std::uint64_t>(slots_))];
        if (!slot.used) {
            slot = {true, key, value};
            ++occupied_;
            return true;
        }
    }
    return false;
}

void HashKvStore::erase(std::uint64_t key) {
    for (int w = 0; w < ways_; ++w) {
        Slot& slot = rows_[static_cast<std::size_t>(w)]
                          [hash_index(key, seed_base_ + static_cast<std::uint64_t>(w),
                                      static_cast<std::uint64_t>(slots_))];
        if (slot.used && slot.key == key) {
            slot = {};
            --occupied_;
            return;
        }
    }
}

void HashKvStore::clear() {
    for (auto& row : rows_) std::fill(row.begin(), row.end(), Slot{});
    occupied_ = 0;
}

std::vector<std::uint64_t> HashKvStore::probe_contents(std::uint64_t key) const {
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(ways_));
    for (int w = 0; w < ways_; ++w) {
        const Slot& slot =
            rows_[static_cast<std::size_t>(w)]
                 [hash_index(key, seed_base_ + static_cast<std::uint64_t>(w),
                             static_cast<std::uint64_t>(slots_))];
        out.push_back(slot.used ? slot.key : 0);
    }
    return out;
}

void HashKvStore::replace_at(int way, std::uint64_t key, std::uint64_t value) {
    Slot& slot = rows_[static_cast<std::size_t>(way)]
                      [hash_index(key, seed_base_ + static_cast<std::uint64_t>(way),
                                  static_cast<std::uint64_t>(slots_))];
    if (!slot.used) ++occupied_;
    slot = {true, key, value};
}

CountingHashTable::CountingHashTable(std::int64_t slots, std::uint64_t seed)
    : slots_(slots), seed_(seed), table_(static_cast<std::size_t>(slots)) {}

std::uint64_t CountingHashTable::update(std::uint64_t key) {
    Slot& slot = table_[hash_index(key, seed_, static_cast<std::uint64_t>(slots_))];
    if (slot.count == 0 || slot.key == key) {
        slot.key = key;
        ++slot.count;
        return slot.count;
    }
    return 0;  // occupied by another key
}

std::uint64_t CountingHashTable::count(std::uint64_t key) const {
    const Slot& slot = table_[hash_index(key, seed_, static_cast<std::uint64_t>(slots_))];
    return slot.count != 0 && slot.key == key ? slot.count : 0;
}

void CountingHashTable::clear() { std::fill(table_.begin(), table_.end(), Slot{}); }

}  // namespace p4all::apps
