// Independent MILP certificate checking.
//
// Re-evaluates the compiler's claims about an ILP solve using nothing but
// the model and exact rational arithmetic — no solver float is reused as an
// intermediate:
//
//   Incumbent side   every constraint row, every variable bound, and the
//                    integrality of every Integer/Binary variable is
//                    re-evaluated exactly; the claimed objective is compared
//                    against the exact c·x.
//
//   Dual side        any sign-correct dual vector y (y ≥ 0 on Le rows,
//                    y ≤ 0 on Ge rows, free on Eq rows) certifies, by weak
//                    duality, the upper bound
//                        U = k + Σ_i y_i·b_i + Σ_j max(d_j·lb_j, d_j·ub_j),
//                        d_j = c_j − Σ_i y_i·A_ij,
//                    on the maximize-objective optimum (k = objective
//                    constant). Solver duals are quantized toward zero
//                    (sign-preserving) and wrong-signed entries are clamped
//                    to zero — both transformations keep U valid, so solver
//                    noise can only loosen the gap, never unsound the check.
//                    The checker then verifies U + slack ≥ c·x exactly,
//                    where slack is the simplex cost-perturbation budget.
#pragma once

#include <string>
#include <vector>

#include "audit/rational.hpp"
#include "ilp/model.hpp"

namespace p4all::audit {

struct CertificateOptions {
    /// Max exact row/bound residual tolerated (absorbs the LP's float
    /// arithmetic; the residual itself is computed exactly).
    double feas_tol = 1e-6;
    /// Max distance of an Integer/Binary value from its nearest integer.
    double int_tol = 1e-6;
    /// Max |claimed objective − exact c·x|.
    double obj_tol = 1e-5;
    /// Fractional bits kept when quantizing dual multipliers. 30 bits bounds
    /// the denominators that dual·coefficient products can reach while the
    /// 2^-30 ≈ 1e-9 per-entry rounding only loosens the certified gap.
    int quant_bits = 30;
};

struct CertificateReport {
    // Incumbent side.
    bool feasible = true;
    bool integral = true;
    bool objective_matches = true;
    double exact_objective = 0.0;          // exact c·x, rounded for display
    std::vector<std::string> violations;   // one line per failed row/bound

    // Dual side.
    bool has_certificate = false;  // a dual vector was provided and evaluated
    bool bound_finite = true;      // U is finite (no positive reduced cost on an unbounded var)
    bool bound_valid = true;       // exact U + slack + tol ≥ exact c·x
    double certified_bound = 0.0;  // U, rounded for display
    double gap = 0.0;              // U − c·x, rounded for display
    int clamped_duals = 0;         // wrong-signed duals zeroed before use
    std::string bound_violation;   // set iff !bound_valid
    std::vector<std::string> certificate_notes;

    [[nodiscard]] bool incumbent_ok() const noexcept {
        return feasible && integral && objective_matches;
    }
};

/// Exact Σ coeff·x + constant of `expr` under rational `values` (indexed by
/// variable id; ids past the end read as zero).
[[nodiscard]] Rat evaluate_exact(const ilp::LinExpr& expr, const std::vector<Rat>& values);

/// Converts a solver assignment to rationals, exactly (doubles are dyadic;
/// no rounding is introduced on the incumbent side).
[[nodiscard]] std::vector<Rat> exact_values(const ilp::Model& model,
                                            const std::vector<double>& values);

/// Full check: incumbent feasibility/integrality/objective plus — when
/// `duals` is non-empty and sized one-per-row — the weak-duality bound.
/// `bound_slack` is the solver's exact perturbation budget (its bound may
/// exceed the true optimum by at most this much).
[[nodiscard]] CertificateReport check_certificate(const ilp::Model& model,
                                                  const std::vector<double>& incumbent,
                                                  double claimed_objective,
                                                  const std::vector<double>& duals,
                                                  double bound_slack,
                                                  const CertificateOptions& options = {});

}  // namespace p4all::audit
