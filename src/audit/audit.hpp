// p4all-audit: translation validation of compiled layouts.
//
// A post-compilation static-analysis layer that re-derives everything the
// compiler claims from scratch, using only the elaborated IR, the
// TargetSpec, and the final CompileArtifacts — deliberately sharing no code
// with the compiler-side audit_layout()/compute_usage() checkers so a bug
// in the compiler's accounting cannot hide itself. Exposed as nine lint
// passes in the standard verify registry:
//
//   layout-resource-overcommit   per-stage memory / ALU / hash / PHV
//                                re-accounting against the TargetSpec, and
//                                the compiler's own usage report re-checked
//   layout-dependency-violation  dependency-graph respect by the stage
//                                assignment (precedence, write-after-read,
//                                exclusion, register sharing, co-location)
//   layout-symbol-mismatch       every symbol satisfies all assume bounds
//                                and matches the emitted unrolling; claimed
//                                utility re-evaluated from the bindings
//   ilp-infeasible-incumbent     exact rational feasibility + integrality of
//                                the incumbent; claimed objective == c·x
//   ilp-certificate-gap          weak-duality certificate of the (cut-
//                                extended) root relaxation bounds the
//                                incumbent
//   ilp-cut-validity             every root cutting plane's exact-rational
//                                certificate re-derived independently; a
//                                forged, tampered, or misrounded cut rejects
//                                the compile (src/audit/cuts.cpp)
//   register-bounds-proof        re-runs the abstract-interpretation bounds
//                                engine over the artifacts' layout and
//                                rejects any claimed-proved fact the
//                                re-derivation cannot reproduce
//   proof-fact-consistency       geometric validity of every shipped
//                                ProofFact against the layout and program
//                                (no engine re-run; pure cross-checking)
//   rewrite-validity             replays the optimizer's certificate chain
//                                from the pre-optimization IR, re-deriving
//                                each rewrite's justification; any forged,
//                                tampered, or missing certificate rejects
//                                the compile
//
// The passes read their input through an ArtifactsPayload and no-op when a
// lint run carries none, so they are safe to leave registered globally.
#pragma once

#include <functional>
#include <string>

#include "compiler/artifacts.hpp"
#include "verify/lint.hpp"

namespace p4all::audit {

/// Hands the compiled artifacts to the audit passes through the generic
/// lint-payload hook. Not owned; must outlive the run.
struct ArtifactsPayload : verify::LintPayload {
    const compiler::CompileArtifacts* artifacts = nullptr;
};

/// The nine audit check ids, registration order.
inline constexpr const char* kAuditChecks[] = {
    "layout-resource-overcommit", "layout-dependency-violation", "layout-symbol-mismatch",
    "ilp-infeasible-incumbent",   "ilp-certificate-gap",         "ilp-cut-validity",
    "register-bounds-proof",      "proof-fact-consistency",      "rewrite-validity",
};

/// Registers the audit passes into `registry` (idempotent per registry).
void register_audit_passes(verify::PassRegistry& registry);

/// Runs exactly the nine audit passes over `prog` + `artifacts` (against the
/// artifacts' own target spec). Findings of severity Error mean the compile
/// must be rejected.
[[nodiscard]] verify::LintResult audit_artifacts(const ir::Program& prog,
                                                 const compiler::CompileArtifacts& artifacts,
                                                 bool werror = false);

/// Acceptance gate for the resilient driver (compiler/resilient.hpp): runs
/// the nine audit passes and returns "" when the layout is clean, otherwise
/// the rendered error findings. Injected as ResilienceOptions::external_gate
/// — the compiler library cannot call this layer directly (it links the
/// other way), so anytime incumbents get independently re-checked before the
/// portfolio accepts them.
[[nodiscard]] std::function<std::string(const ir::Program&, const compiler::CompileArtifacts&)>
make_resilience_gate(bool werror = false);

}  // namespace p4all::audit
