// Compatibility shim: the exact rational type moved to support/ so the ILP
// layer can construct cut certificates with the same arithmetic the audit
// layer uses to re-check them. Existing audit code keeps spelling it
// audit::Rat.
#pragma once

#include "support/rational.hpp"

namespace p4all::audit {

using support::Rat;

}  // namespace p4all::audit
