#include "audit/cuts.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>

#include "audit/audit.hpp"
#include "support/error.hpp"
#include "support/rational.hpp"
#include "verify/lint.hpp"

namespace p4all::audit {

std::unique_ptr<verify::LintPass> make_cut_validity_pass();

namespace {

using support::Rat;

/// Uniform view over the extended row space: model rows first, then the
/// already-verified cuts in order (always Le, constant-free by check below).
struct RowView {
    const ilp::LinExpr* expr = nullptr;
    ilp::CmpSense sense = ilp::CmpSense::Le;
    double rhs = 0.0;
};

RowView row_at(const ilp::Model& model, const std::vector<ilp::CertifiedCut>& prior, int r) {
    if (r < model.num_constraints()) {
        const ilp::Constraint& c = model.constraints()[static_cast<std::size_t>(r)];
        return {&c.expr, c.sense, c.rhs};
    }
    const ilp::CertifiedCut& c = prior[static_cast<std::size_t>(r - model.num_constraints())];
    return {&c.expr, ilp::CmpSense::Le, c.rhs};
}

Rat row_rhs(const RowView& row) {
    return Rat::from_double(row.rhs) - Rat::from_double(row.expr->constant());
}

std::string var_label(const ilp::Model& model, int j) {
    if (j < 0 || j >= model.num_vars()) return "variable " + std::to_string(j);
    return "variable '" + model.var_name(j) + "'";
}

/// Exact per-variable coefficients of the cut expression. Rejects (via
/// returned reason) out-of-range variables and a nonzero constant — a cut is
/// always "g·x ≤ g0" with the constant folded into g0 at derivation time.
std::optional<std::string> cut_coefficients(const ilp::Model& model, const ilp::CertifiedCut& cut,
                                            std::vector<Rat>& g) {
    if (cut.expr.constant() != 0.0) return "cut expression carries a nonzero constant";
    g.assign(static_cast<std::size_t>(model.num_vars()), Rat{});
    for (const auto& [id, a] : cut.expr.terms()) {
        if (id < 0 || id >= model.num_vars()) {
            return "cut references out-of-range variable " + std::to_string(id);
        }
        g[static_cast<std::size_t>(id)] += Rat::from_double(a);
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// Gomory certificates
// ---------------------------------------------------------------------------

std::optional<std::string> verify_gomory(const ilp::Model& model,
                                         const std::vector<ilp::CertifiedCut>& prior,
                                         const ilp::CertifiedCut& cut) {
    const ilp::CutCertificate& cert = cut.cert;
    const int nrows = model.num_constraints() + static_cast<int>(prior.size());
    if (cert.row_mult.empty()) return "Gomory certificate has no row multipliers";

    // Aggregate D·x ≤ D0 from the certified multipliers. Sign rules make
    // each term a valid "≤" consequence of its row; bound rows need w ≥ 0
    // over a finite bound.
    std::vector<Rat> d(static_cast<std::size_t>(model.num_vars()));
    Rat d0;
    for (const auto& [r, l] : cert.row_mult) {
        if (r < 0 || r >= nrows) {
            return "multiplier references out-of-range row " + std::to_string(r);
        }
        if (l.is_zero()) continue;
        const RowView row = row_at(model, prior, r);
        if (row.sense == ilp::CmpSense::Le && l.negative()) {
            return "negative multiplier " + l.to_string() + " on Le row " + std::to_string(r);
        }
        if (row.sense == ilp::CmpSense::Ge && l.positive()) {
            return "positive multiplier " + l.to_string() + " on Ge row " + std::to_string(r);
        }
        for (const auto& [id, a] : row.expr->terms()) {
            if (id < 0 || id >= model.num_vars()) {
                return "row " + std::to_string(r) + " references out-of-range variable " +
                       std::to_string(id);
            }
            d[static_cast<std::size_t>(id)] += l * Rat::from_double(a);
        }
        d0 += l * row_rhs(row);
    }
    for (const ilp::CutCertificate::BoundMult& bm : cert.bound_mult) {
        if (bm.var < 0 || bm.var >= model.num_vars()) {
            return "bound multiplier references out-of-range variable " + std::to_string(bm.var);
        }
        if (bm.mult.negative()) {
            return "negative bound multiplier on " + var_label(model, bm.var);
        }
        if (bm.mult.is_zero()) continue;
        const std::size_t js = static_cast<std::size_t>(bm.var);
        if (bm.upper) {
            const double ub = model.upper_bound(bm.var);
            if (ub == ilp::kInfinity) {
                return "upper-bound multiplier on unbounded " + var_label(model, bm.var);
            }
            d[js] += bm.mult;
            d0 += bm.mult * Rat::from_double(ub);
        } else {
            const double lb = model.lower_bound(bm.var);
            if (lb == -ilp::kInfinity) {
                return "lower-bound multiplier on unbounded " + var_label(model, bm.var);
            }
            d[js] -= bm.mult;
            d0 -= bm.mult * Rat::from_double(lb);
        }
    }

    // The claimed cut g·x ≤ g0 must be dominated by the aggregate:
    // coefficient-wise g_j ≤ D_j, where dropping below D_j is only sound for
    // variables pinned to x_j ≥ 0 (else larger x_j would not absorb the
    // slack), and the rounding of the right-hand side below D0 is only sound
    // when the left side is provably integral at every integer point.
    std::vector<Rat> g;
    if (auto why = cut_coefficients(model, cut, g)) return why;
    bool lhs_integral = true;
    for (int j = 0; j < model.num_vars(); ++j) {
        const std::size_t js = static_cast<std::size_t>(j);
        const Rat& gj = g[js];
        const Rat& dj = d[js];
        if (gj > dj) {
            return "cut coefficient " + gj.to_string() + " on " + var_label(model, j) +
                   " exceeds the re-derived aggregate coefficient " + dj.to_string();
        }
        if (gj < dj && model.lower_bound(j) < 0.0) {
            return "cut weakens the coefficient of " + var_label(model, j) +
                   " which is not bounded below by 0";
        }
        if (!gj.is_zero() &&
            (!gj.is_integer() || model.var_type(j) == ilp::VarType::Continuous)) {
            lhs_integral = false;
        }
    }
    const Rat g0 = Rat::from_double(cut.rhs);
    if (g0 >= d0) return std::nullopt;  // plain weakening of the aggregate
    if (!lhs_integral) {
        return "right-hand side " + g0.to_string() + " is below the re-derived aggregate " +
               d0.to_string() + " and the left side is not integral (rounding is unsound)";
    }
    if (g0 < d0.floor()) {
        return "right-hand side " + g0.to_string() + " is below the rounded aggregate ⌊" +
               d0.to_string() + "⌋ = " + d0.floor().to_string();
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// Cover certificates
// ---------------------------------------------------------------------------

std::optional<std::string> verify_cover(const ilp::Model& model,
                                        const std::vector<ilp::CertifiedCut>& prior,
                                        const ilp::CertifiedCut& cut) {
    const ilp::CutCertificate& cert = cut.cert;
    const int nrows = model.num_constraints() + static_cast<int>(prior.size());
    if (cert.cover_row < 0 || cert.cover_row >= nrows) {
        return "cover references out-of-range row " + std::to_string(cert.cover_row);
    }
    const RowView row = row_at(model, prior, cert.cover_row);
    if (row.sense != ilp::CmpSense::Le) {
        return "cover source row " + std::to_string(cert.cover_row) + " is not a Le row";
    }
    // Qualification: the all-ones cover point bounds the row activity from
    // below only when every per-variable coefficient is nonnegative over a
    // variable pinned to x ≥ 0. Duplicate terms are summed exactly, the same
    // aggregation the solver-side builder performs.
    std::map<int, Rat> coeff;
    for (const auto& [id, a] : row.expr->terms()) {
        if (id < 0 || id >= model.num_vars()) {
            return "cover source row references out-of-range variable " + std::to_string(id);
        }
        coeff[id] += Rat::from_double(a);
    }
    for (const auto& [id, a] : coeff) {
        if (a.negative()) {
            return "cover source row has a negative coefficient on " + var_label(model, id);
        }
        if (model.lower_bound(id) < 0.0) {
            return "cover source row involves " + var_label(model, id) +
                   " which is not bounded below by 0";
        }
    }
    if (cert.cover_vars.empty()) return "cover set is empty";
    // Strictly increasing ⇒ no duplicates: a duplicated variable would let
    // the coefficient sum double-count a single row term.
    for (std::size_t i = 1; i < cert.cover_vars.size(); ++i) {
        if (cert.cover_vars[i] <= cert.cover_vars[i - 1]) {
            return "cover set is not strictly increasing (duplicate or unsorted variables)";
        }
    }

    Rat acc;
    for (const int id : cert.cover_vars) {
        if (id < 0 || id >= model.num_vars()) {
            return "cover set references out-of-range variable " + std::to_string(id);
        }
        if (model.var_type(id) == ilp::VarType::Continuous || model.lower_bound(id) < 0.0 ||
            model.upper_bound(id) > 1.0) {
            return var_label(model, id) + " in the cover is not a 0/1 integer variable";
        }
        const auto it = coeff.find(id);
        if (it == coeff.end() || !it->second.positive()) {
            return var_label(model, id) +
                   " in the cover has no positive coefficient in the source row";
        }
        acc += it->second;
    }
    if (!(acc > row_rhs(row))) {
        return "cover coefficient sum " + acc.to_string() +
               " does not exceed the row right-hand side " + row_rhs(row).to_string() +
               " (the all-ones point is feasible; no cover)";
    }

    // The cut must be exactly Σ_C x_j ≤ |C| − 1.
    std::vector<Rat> g;
    if (auto why = cut_coefficients(model, cut, g)) return why;
    const Rat one(std::int64_t{1});
    for (const int id : cert.cover_vars) {
        if (g[static_cast<std::size_t>(id)] != one) {
            return "cut coefficient on cover " + var_label(model, id) + " is not 1";
        }
        g[static_cast<std::size_t>(id)] = Rat{};
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        if (!g[static_cast<std::size_t>(j)].is_zero()) {
            return "cut involves " + var_label(model, j) + " outside the cover set";
        }
    }
    const Rat want(static_cast<std::int64_t>(cert.cover_vars.size()) - 1);
    if (Rat::from_double(cut.rhs) != want) {
        return "cut right-hand side " + std::to_string(cut.rhs) + " is not |C| − 1 = " +
               want.to_string();
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// ilp-cut-validity pass
// ---------------------------------------------------------------------------

class CutValidityPass final : public verify::LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "ilp-cut-validity"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "re-derives every cutting-plane validity certificate in exact rational "
               "arithmetic and rejects any cut whose claimed inequality is not dominated by "
               "the independent re-derivation";
    }

    void run(verify::LintContext& ctx) override {
        const auto* payload = dynamic_cast<const ArtifactsPayload*>(ctx.payload());
        const compiler::CompileArtifacts* art =
            payload != nullptr ? payload->artifacts : nullptr;
        if (art == nullptr || !art->has_ilp) return;
        const auto& cuts = art->solution.cuts;
        if (cuts.empty()) return;

        // Sequential: cut k may aggregate the verified cuts before it, so a
        // rejection invalidates the row indexing of everything after — stop
        // at the first forged certificate rather than cascade noise.
        std::vector<ilp::CertifiedCut> verified;
        verified.reserve(cuts.size());
        for (std::size_t k = 0; k < cuts.size(); ++k) {
            const std::optional<std::string> why =
                verify_cut(art->ilp.model, verified, cuts[k]);
            if (why) {
                const std::string label =
                    cuts[k].name.empty() ? "cut " + std::to_string(k) : "cut '" + cuts[k].name + "'";
                ctx.error({}, label + " fails independent certificate re-derivation: " + *why);
                return;
            }
            verified.push_back(cuts[k]);
        }
        ctx.note({}, "all " + std::to_string(cuts.size()) +
                         " cutting-plane certificate(s) re-derived and verified");
    }
};

}  // namespace

std::optional<std::string> verify_cut(const ilp::Model& model,
                                      const std::vector<ilp::CertifiedCut>& prior,
                                      const ilp::CertifiedCut& cut) {
    try {
        switch (cut.cert.kind) {
            case ilp::CutCertificate::Kind::Gomory: return verify_gomory(model, prior, cut);
            case ilp::CutCertificate::Kind::Cover: return verify_cover(model, prior, cut);
        }
        return "unknown certificate kind";
    } catch (const support::CompileError& e) {
        return std::string("rational overflow while re-deriving the certificate: ") + e.what();
    }
}

ilp::Model extend_with_cuts(const ilp::Model& model, const std::vector<ilp::CertifiedCut>& cuts) {
    ilp::Model extended = model;
    for (const ilp::CertifiedCut& cut : cuts) {
        extended.add_le(cut.expr, cut.rhs, cut.name);
    }
    return extended;
}

std::unique_ptr<verify::LintPass> make_cut_validity_pass() {
    return std::make_unique<CutValidityPass>();
}

}  // namespace p4all::audit
