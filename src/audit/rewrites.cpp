// Audit-side validation of the optimizer's rewrite certificates.
//
// The rewrite-validity pass replays the certificate chain shipped in
// CompileArtifacts from the recorded pre-optimization program, and demands
// at every step that (a) the chain links — each certificate's pre-hash
// matches the replayed program, (b) the rule's justification re-derives from
// the verify analyses (bounds, liveness, interval/known-bits dataflow) run
// fresh over the intermediate program, (c) the mechanical edit applies
// cleanly, and (d) the post-hash matches. The replayed endpoint must be
// structurally identical to the compiled program. Any break — a forged,
// tampered, reordered, or missing certificate, or an unjustified rewrite —
// is an error finding, which rejects the compile exactly like
// register-bounds-proof.
//
// The justifications deliberately do not call the optimizer's candidate
// search: they re-check each claim directly against verify::dead_meta_stores
// / dead_register_stores / register_usage / guard_truth / BoundEnv /
// StageDataflow, so a bug in the optimizer's scanning cannot vouch for
// itself. Only the mechanical edit (opt::apply_certificate, built on
// ir/rewrite.cpp's validating editors) is shared — both sides must perform
// bit-identical edits for replay to be meaningful.
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "audit/audit.hpp"
#include "compiler/artifacts.hpp"
#include "ir/rewrite.hpp"
#include "opt/certificate.hpp"
#include "opt/optimizer.hpp"
#include "support/error.hpp"
#include "verify/dataflow.hpp"
#include "verify/interval.hpp"
#include "verify/lint.hpp"
#include "verify/liveness.hpp"

namespace p4all::audit {

std::unique_ptr<verify::LintPass> make_rewrite_validity_pass();

namespace {

using compiler::CompileArtifacts;
using opt::RewriteCertificate;
using verify::Interval;
using verify::Truth;

const CompileArtifacts* artifacts_of(verify::LintContext& ctx) {
    const auto* payload = dynamic_cast<const ArtifactsPayload*>(ctx.payload());
    return payload != nullptr ? payload->artifacts : nullptr;
}

std::optional<std::int64_t> literal_of(const ir::Value& v) {
    const auto* a = std::get_if<ir::Affine>(&v);
    if (a == nullptr || !a->is_literal()) return std::nullopt;
    return a->constant;
}

std::uint64_t width_mask(int width) {
    return width >= 64 ? ~0ULL : (std::uint64_t{1} << width) - 1;
}

const ir::PrimOp* op_at(const ir::Program& prog, ir::ActionId action, int op) {
    if (action < 0 || static_cast<std::size_t>(action) >= prog.actions.size()) return nullptr;
    const ir::Action& a = prog.actions[static_cast<std::size_t>(action)];
    if (op < 0 || static_cast<std::size_t>(op) >= a.ops.size()) return nullptr;
    return &a.ops[static_cast<std::size_t>(op)];
}

/// Is `v`, read by op `op_index`, provably the constant `want` at every view
/// instance in `insts` — by the interval domain, or failing that by
/// known-bits? Mirrors the fold the optimizer claims, derived fresh here.
bool constant_justified(const ir::Program& prog, const verify::DataplaneView& view,
                        const std::vector<std::size_t>& insts, int op_index,
                        const ir::Value& v, std::int64_t want) {
    if (insts.empty() || !std::holds_alternative<ir::MetaRef>(v)) return false;
    verify::StageDataflow<verify::IntervalDomain> intervals(prog, view);
    intervals.solve();
    bool by_interval = true;
    for (const std::size_t idx : insts) {
        const Interval val = intervals.value_entering_op(idx, op_index, v);
        if (val.empty() || !val.is_point() || val.lo != want) {
            by_interval = false;
            break;
        }
    }
    if (by_interval) return true;
    verify::StageDataflow<verify::KnownBitsDomain> bits(prog, view);
    bits.solve();
    for (const std::size_t idx : insts) {
        const verify::KnownBitsValue val = bits.value_entering_op(idx, op_index, v);
        if (val.known != ~0ULL || val.value != static_cast<std::uint64_t>(want)) return false;
    }
    return true;
}

/// Re-derives the justification for one certificate against the intermediate
/// program it claims to transform. Returns "" when justified, otherwise why
/// not. Mechanical applicability (coordinates in range, operand shapes) is
/// separately enforced by apply_certificate.
std::string justify(const ir::Program& prog, const RewriteCertificate& cert) {
    using namespace opt::rules;

    if (cert.rule == kStrengthReduceSet) {
        // The algebraic identity (dropped operand is literal zero, Sub keeps
        // only the minuend) is exactly what ir::reduce_to_set validates
        // before editing, so applying IS the justification.
        return "";
    }

    if (cert.rule == kStrengthReduceDrop) {
        const ir::PrimOp* op = op_at(prog, cert.action, cert.op);
        if (op == nullptr) return "certificate names a nonexistent op";
        if (!op->dst || op->srcs.size() != 1) return "op is not a single-source meta update";
        const std::optional<std::int64_t> lit = literal_of(op->srcs[0]);
        if (!lit || *lit != cert.value) return "op operand is not the certified literal";
        const std::uint64_t raw = static_cast<std::uint64_t>(*lit);
        if (op->kind == ir::PrimKind::Max && raw == 0) return "";
        if (op->kind == ir::PrimKind::Min &&
            raw >= width_mask(prog.meta(op->dst->field).width)) {
            return "";
        }
        return "min/max against this literal is not the identity on the destination width";
    }

    if (cert.rule == kDeadStore || cert.rule == kDeadRegStore) {
        const auto dead = cert.rule == kDeadStore ? verify::dead_meta_stores(prog)
                                                  : verify::dead_register_stores(prog);
        for (const verify::DeadStore& d : dead) {
            if (d.action == cert.action && d.op == cert.op &&
                d.overwritten_by == cert.aux) {
                return "";
            }
        }
        return "the liveness analysis does not find this store shadowed";
    }

    if (cert.rule == kDeadExtern) {
        const auto use = verify::register_usage(prog);
        if (cert.reg < 0 || static_cast<std::size_t>(cert.reg) >= use.size()) {
            return "certificate names a nonexistent register";
        }
        if (use[static_cast<std::size_t>(cert.reg)].accessed()) {
            return "register is still accessed";
        }
        return "";
    }

    if (cert.rule == kStrengthReduceModulus) {
        const ir::PrimOp* op = op_at(prog, cert.action, cert.op);
        if (op == nullptr) return "certificate names a nonexistent op";
        if (op->kind != ir::PrimKind::Hash || !op->modulus) return "op is not a ranged hash";
        const auto* rr = std::get_if<ir::RegRef>(&*op->modulus);
        if (rr == nullptr) return "hash range is not a register";
        const verify::BoundEnv env(prog);
        const Interval elems = env.extent(prog.reg(rr->reg).elems);
        if (elems.empty() || !elems.is_point() || elems.lo != cert.value || cert.value < 1) {
            return "assume bounds do not pin the register's element count to the certified "
                   "value";
        }
        return "";
    }

    if (cert.rule == kGuardTrue || cert.rule == kCallUnreachable) {
        if (cert.call < 0 || static_cast<std::size_t>(cert.call) >= prog.flow.size()) {
            return "certificate names a nonexistent call";
        }
        const ir::CallSite& site = prog.flow[static_cast<std::size_t>(cert.call)];
        if (cert.guard < 0 || static_cast<std::size_t>(cert.guard) >= site.guards.size()) {
            return "certificate names a nonexistent guard";
        }
        const verify::BoundEnv env(prog);
        const Truth truth =
            verify::guard_truth(env, prog, site, site.guards[static_cast<std::size_t>(cert.guard)]);
        const Truth want = cert.rule == kGuardTrue ? Truth::True : Truth::False;
        if (truth != want) return "the bound analysis cannot decide the guard as certified";
        return "";
    }

    if (cert.rule == kConstFoldGuard || cert.rule == kConstFoldOperand) {
        const auto view = verify::bounded_sizing_view(prog, opt::OptOptions{}.max_view_instances);
        if (!view) return "no bounded sizing view exists to justify a dataflow fold";
        std::vector<std::vector<std::size_t>> by_call(prog.flow.size());
        std::vector<std::vector<std::size_t>> by_action(prog.actions.size());
        for (std::size_t i = 0; i < view->instances.size(); ++i) {
            const int call = view->instances[i].inst.call;
            by_call[static_cast<std::size_t>(call)].push_back(i);
            const ir::ActionId act = prog.flow[static_cast<std::size_t>(call)].action;
            by_action[static_cast<std::size_t>(act)].push_back(i);
        }
        if (cert.rule == kConstFoldGuard) {
            if (cert.call < 0 || static_cast<std::size_t>(cert.call) >= prog.flow.size()) {
                return "certificate names a nonexistent call";
            }
            const ir::CallSite& site = prog.flow[static_cast<std::size_t>(cert.call)];
            if (cert.guard < 0 || static_cast<std::size_t>(cert.guard) >= site.guards.size()) {
                return "certificate names a nonexistent guard";
            }
            if (cert.slot != "lhs" && cert.slot != "rhs") return "bad guard slot";
            const ir::Cond& guard = site.guards[static_cast<std::size_t>(cert.guard)];
            const ir::Value& v = cert.slot == "lhs" ? guard.lhs : guard.rhs;
            if (!constant_justified(prog, *view, by_call[static_cast<std::size_t>(cert.call)],
                                    0, v, cert.value)) {
                return "the dataflow analysis cannot pin the guard operand to the certified "
                       "constant";
            }
            return "";
        }
        const ir::PrimOp* op = op_at(prog, cert.action, cert.op);
        if (op == nullptr) return "certificate names a nonexistent op";
        const ir::Value* v = nullptr;
        if (cert.slot == "src") {
            if (cert.operand < 0 || static_cast<std::size_t>(cert.operand) >= op->srcs.size()) {
                return "certificate names a nonexistent operand";
            }
            v = &op->srcs[static_cast<std::size_t>(cert.operand)];
        } else if (cert.slot == "reg-index") {
            if (!op->reg_index) return "op has no register index";
            v = &*op->reg_index;
        } else {
            return "bad operand slot";
        }
        if (!constant_justified(prog, *view, by_action[static_cast<std::size_t>(cert.action)],
                                cert.op, *v, cert.value)) {
            return "the dataflow analysis cannot pin the operand to the certified constant";
        }
        return "";
    }

    return "unknown rewrite rule '" + cert.rule + "'";
}

// ---------------------------------------------------------------------------
// rewrite-validity
// ---------------------------------------------------------------------------

class RewriteValidityPass final : public verify::LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "rewrite-validity"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "replays the optimizer's certificate chain from the pre-optimization IR, "
               "re-deriving each rewrite's justification; any hash break, unjustified or "
               "inapplicable certificate, or mismatch with the compiled program rejects the "
               "compile";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr) return;

        if (!art->optimized) {
            if (!art->rewrites.empty()) {
                ctx.error({}, "artifacts carry " + std::to_string(art->rewrites.size()) +
                                  " rewrite certificate(s) but claim the compile was not "
                                  "optimized");
            }
            return;
        }

        ir::Program cur = art->pre_opt_program;
        for (std::size_t i = 0; i < art->rewrites.size(); ++i) {
            const RewriteCertificate& cert = art->rewrites[i];
            const std::string label =
                "certificate " + std::to_string(i) + " (" + cert.rule + ")";
            if (ir::program_hash(cur) != cert.pre_hash) {
                ctx.error({}, label + ": pre-rewrite hash does not match the replayed "
                                      "program — the chain is broken or reordered");
                return;
            }
            const std::string why = justify(cur, cert);
            if (!why.empty()) {
                ctx.error({}, label + " is unjustified: " + why);
                return;
            }
            try {
                opt::apply_certificate(cur, cert);
            } catch (const support::CompileError& e) {
                ctx.error({}, label + " does not apply: " + e.what());
                return;
            }
            if (ir::program_hash(cur) != cert.post_hash) {
                ctx.error({}, label + ": post-rewrite hash does not match the replayed "
                                      "program");
                return;
            }
        }
        if (!ir::programs_equal(cur, ctx.program())) {
            ctx.error({}, "replaying the certificate chain does not reproduce the compiled "
                          "program — a rewrite is missing or the IR was tampered with");
        }
    }
};

}  // namespace

std::unique_ptr<verify::LintPass> make_rewrite_validity_pass() {
    return std::make_unique<RewriteValidityPass>();
}

}  // namespace p4all::audit
