// Audit-side validation of the register-bounds proof facts.
//
// Two passes over CompileArtifacts::proofs, deliberately independent of the
// compiler's emission path:
//
//   register-bounds-proof    re-runs the abstract-interpretation bounds
//                            engine (verify::prove_register_bounds) over the
//                            artifacts' own layout and demands the shipped
//                            facts match the re-derivation fact-for-fact —
//                            an unsound "proved" claim, a fabricated fact,
//                            or a missing fact is an error; accesses the
//                            engine cannot prove get a located warning (the
//                            pipeline keeps their per-packet check)
//   proof-fact-consistency   pure geometry: every fact must name a real
//                            register access of a placed instance, match
//                            the placed row's element count, and carry
//                            bounds that actually fit the row — no engine
//                            re-run, so it also guards against a buggy
//                            engine agreeing with itself
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "audit/audit.hpp"
#include "compiler/artifacts.hpp"
#include "verify/dataflow.hpp"
#include "verify/lint.hpp"

namespace p4all::audit {

std::unique_ptr<verify::LintPass> make_register_bounds_proof_pass();
std::unique_ptr<verify::LintPass> make_proof_fact_consistency_pass();

namespace {

using compiler::CompileArtifacts;
using verify::ProofFact;

const CompileArtifacts* artifacts_of(verify::LintContext& ctx) {
    const auto* payload = dynamic_cast<const ArtifactsPayload*>(ctx.payload());
    return payload != nullptr ? payload->artifacts : nullptr;
}

using FactKey = std::tuple<std::int32_t, std::int64_t, std::int32_t>;

FactKey key_of(const ProofFact& f) { return {f.call, f.iter, f.op}; }

/// "action[iter] op N" for messages; tolerant of out-of-range facts.
std::string fact_label(const ir::Program& prog, const ProofFact& f) {
    std::string label = "<call " + std::to_string(f.call) + ">";
    if (f.call >= 0 && static_cast<std::size_t>(f.call) < prog.flow.size()) {
        const ir::CallSite& site = prog.flow[static_cast<std::size_t>(f.call)];
        label = prog.action(site.action).name;
        if (site.elastic()) label += "[" + std::to_string(f.iter) + "]";
    }
    return label + " op " + std::to_string(f.op);
}

std::string render_bounds(const ProofFact& f) {
    return "[" + std::to_string(f.index_lo) + ", " + std::to_string(f.index_hi) + "] of " +
           std::to_string(f.elems) + " elements";
}

// ---------------------------------------------------------------------------
// register-bounds-proof
// ---------------------------------------------------------------------------

class BoundsProofPass final : public verify::LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "register-bounds-proof";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "re-runs the abstract-interpretation bounds engine over the artifacts' layout "
               "and rejects any claimed-proved fact the independent re-derivation cannot "
               "reproduce";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr) return;
        // Hand-assembled artifacts (tests, partial toolchains) ship no facts;
        // a compile that emits artifacts always attaches the full set, so an
        // empty vector means "no claims to check", not "claims all deleted".
        if (art->proofs.empty()) return;
        const ir::Program& prog = ctx.program();

        const verify::BoundsProofs derived =
            verify::prove_register_bounds(prog, compiler::dataplane_view(prog, art->layout));
        std::map<FactKey, const ProofFact*> derived_by_key;
        for (const ProofFact& f : derived.facts) derived_by_key[key_of(f)] = &f;

        std::set<FactKey> claimed;
        for (const ProofFact& f : art->proofs) {
            claimed.insert(key_of(f));
            const auto it = derived_by_key.find(key_of(f));
            if (it == derived_by_key.end()) {
                ctx.error(f.loc, "artifacts carry a bounds fact for " + fact_label(prog, f) +
                                     " but the independent re-derivation finds no register "
                                     "access there");
                continue;
            }
            const ProofFact& d = *it->second;
            if (f.proved && !d.proved) {
                ctx.error(f.loc, "unsound proof: artifacts claim the index of " +
                                     fact_label(prog, f) + " stays within " + render_bounds(f) +
                                     ", but the re-derivation cannot prove it (best bounds " +
                                     render_bounds(d) + ")");
                continue;
            }
            if (f != d) {
                ctx.error(f.loc, "bounds fact for " + fact_label(prog, f) +
                                     " disagrees with the re-derivation: claimed " +
                                     render_bounds(f) + (f.proved ? " proved" : " unproved") +
                                     ", derived " + render_bounds(d) +
                                     (d.proved ? " proved" : " unproved"));
            }
        }

        for (const ProofFact& f : derived.facts) {
            if (claimed.count(key_of(f)) == 0) {
                ctx.error(f.loc, "register access " + fact_label(prog, f) +
                                     " carries no bounds fact in the artifacts");
            }
            if (!f.proved) {
                ctx.warning(f.loc, "register access " + fact_label(prog, f) +
                                       " is not provably in-bounds (index in " +
                                       render_bounds(f) +
                                       "); the pipeline keeps its per-packet check",
                            "index through hash(..., register) or mask the index down to the "
                            "row's power-of-two size so the bounds engine can discharge it");
            }
        }
    }
};

// ---------------------------------------------------------------------------
// proof-fact-consistency
// ---------------------------------------------------------------------------

class ProofConsistencyPass final : public verify::LintPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "proof-fact-consistency";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "every shipped proof fact names a real register access of a placed instance, "
               "matches the placed row geometry, and its proved bounds fit the row";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr) return;
        const ir::Program& prog = ctx.program();

        std::map<std::pair<ir::RegisterId, std::int64_t>, std::int64_t> placed;
        for (const compiler::StagePlan& plan : art->layout.stages) {
            for (const compiler::PlacedRegister& pr : plan.registers) {
                placed[{pr.reg, pr.instance}] = pr.elems;
            }
        }

        std::set<FactKey> seen;
        for (const ProofFact& f : art->proofs) {
            const std::string label = fact_label(prog, f);
            if (!seen.insert(key_of(f)).second) {
                ctx.error(f.loc, "duplicate bounds fact for " + label);
                continue;
            }
            if (f.call < 0 || static_cast<std::size_t>(f.call) >= prog.flow.size()) {
                ctx.error(f.loc, "bounds fact names call site " + std::to_string(f.call) +
                                     " which the program does not have");
                continue;
            }
            const ir::CallSite& site = prog.flow[static_cast<std::size_t>(f.call)];
            const ir::Action& action = prog.action(site.action);
            if (art->layout.stage_of({f.call, f.iter}) < 0) {
                ctx.error(f.loc, "bounds fact for " + label +
                                     " names an instance the layout never placed");
                continue;
            }
            if (f.op < 0 || static_cast<std::size_t>(f.op) >= action.ops.size()) {
                ctx.error(f.loc, "bounds fact for " + label + " points past the " +
                                     std::to_string(action.ops.size()) + " ops of '" +
                                     action.name + "'");
                continue;
            }
            const ir::PrimOp& op = action.ops[static_cast<std::size_t>(f.op)];
            const bool is_reg_op =
                op.kind == ir::PrimKind::RegAdd || op.kind == ir::PrimKind::RegRead ||
                op.kind == ir::PrimKind::RegWrite || op.kind == ir::PrimKind::RegMin ||
                op.kind == ir::PrimKind::RegMax;
            if (!is_reg_op || !op.reg.has_value() || op.reg->reg != f.reg) {
                ctx.error(f.loc, "bounds fact for " + label +
                                     " does not point at an access of register '" +
                                     (f.reg != ir::kNoId ? prog.reg(f.reg).name : "?") + "'");
                continue;
            }
            const std::int64_t param = site.iter_arg.at(f.iter);
            if (op.reg->instance.at(param) != f.instance) {
                ctx.error(f.loc, "bounds fact for " + label + " names row instance " +
                                     std::to_string(f.instance) + " but the op touches row " +
                                     std::to_string(op.reg->instance.at(param)));
                continue;
            }
            const auto placed_it = placed.find({f.reg, f.instance});
            if (placed_it == placed.end()) {
                ctx.error(f.loc, "bounds fact for " + label + " names register row " +
                                     prog.reg(f.reg).name + "_" + std::to_string(f.instance) +
                                     " which the layout does not place");
                continue;
            }
            if (placed_it->second != f.elems) {
                ctx.error(f.loc, "bounds fact for " + label + " is against " +
                                     std::to_string(f.elems) + " elements but the layout "
                                     "places the row with " +
                                     std::to_string(placed_it->second));
                continue;
            }
            if (f.index_lo > f.index_hi) {
                ctx.error(f.loc, "bounds fact for " + label + " carries an empty index range " +
                                     render_bounds(f));
                continue;
            }
            if (f.proved) {
                if (f.domain != "interval" && f.domain != "known-bits") {
                    ctx.error(f.loc, "proved bounds fact for " + label +
                                         " names no proving domain");
                }
                if (f.elems <= 0 || f.index_lo < 0 || f.index_hi >= f.elems) {
                    ctx.error(f.loc, "bounds fact for " + label +
                                         " claims proved but its own bounds " +
                                         render_bounds(f) + " do not fit the row");
                }
            }
        }
    }
};

}  // namespace

std::unique_ptr<verify::LintPass> make_register_bounds_proof_pass() {
    return std::make_unique<BoundsProofPass>();
}

std::unique_ptr<verify::LintPass> make_proof_fact_consistency_pass() {
    return std::make_unique<ProofConsistencyPass>();
}

}  // namespace p4all::audit
