// Independent re-derivation of cutting-plane validity certificates.
//
// The solver ships every root cut with a machine-checkable certificate
// (ilp/cuts.hpp): the sign-constrained rational row/bound multipliers of a
// Chvátal–Gomory aggregation, or the cover set of a knapsack cover. This
// layer re-derives the implied inequality from the certificate in its own
// exact rational arithmetic — sharing no code with the solver-side builder —
// and accepts the cut only when the claimed coefficients and right-hand side
// are provably dominated by the re-derivation:
//
//   Gomory   D_j = Σ_r λ_r·a_rj + Σ w_ub − Σ w_lb  and
//            D_0 = Σ_r λ_r·(b_r − const_r) + Σ w_ub·ub − Σ w_lb·lb
//            give the aggregate D·x ≤ D_0, valid for every feasible point
//            when λ is sign-correct (≥ 0 on Le, ≤ 0 on Ge, free on Eq) and
//            every bound multiplier w is ≥ 0 over a finite bound. The cut
//            g·x ≤ g_0 is valid when g_j ≤ D_j for all j (strict inequality
//            needs lb_j ≥ 0 so weakening a coefficient cannot help x_j), and
//            g_0 ≥ D_0 — or g_0 ≥ ⌊D_0⌋ when every nonzero g_j is an integer
//            coefficient on an integer-typed variable (the CG rounding step).
//
//   Cover    the source row must be Le with all-nonnegative coefficients
//            over variables bounded below by 0; every cover variable must be
//            integer-typed with 0 ≤ x ≤ 1 and a strictly positive row
//            coefficient; the exact coefficient sum over the cover must
//            exceed the row's rhs; and the cut must be exactly
//            Σ_C x_j ≤ |C| − 1.
//
// Cuts are verified in sequence: certificate k may aggregate the already
// verified cuts 0..k−1 (extended row space, all Le). A forged, tampered, or
// misrounded certificate yields a human-readable rejection reason.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ilp/cuts.hpp"
#include "ilp/model.hpp"

namespace p4all::audit {

/// Verifies one cut against the model and the previously verified cuts
/// (extended row space: model rows, then `prior` in order). Returns
/// std::nullopt on success, otherwise the rejection reason.
[[nodiscard]] std::optional<std::string> verify_cut(const ilp::Model& model,
                                                    const std::vector<ilp::CertifiedCut>& prior,
                                                    const ilp::CertifiedCut& cut);

/// Copy of `model` with every cut appended as a Le row — the row space the
/// solver's cut-extended root duals certify against. Callers must have
/// verified the cuts first (verify_cut / the ilp-cut-validity pass).
[[nodiscard]] ilp::Model extend_with_cuts(const ilp::Model& model,
                                          const std::vector<ilp::CertifiedCut>& cuts);

}  // namespace p4all::audit
