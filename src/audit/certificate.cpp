#include "audit/certificate.hpp"

#include <cmath>
#include <cstddef>

namespace p4all::audit {

namespace {

std::size_t idx(int j) { return static_cast<std::size_t>(j); }

const char* sense_spelling(ilp::CmpSense sense) {
    switch (sense) {
        case ilp::CmpSense::Le: return "<=";
        case ilp::CmpSense::Ge: return ">=";
        case ilp::CmpSense::Eq: return "=";
    }
    return "?";
}

std::string row_label(const ilp::Constraint& row, std::size_t i) {
    return row.name.empty() ? "row " + std::to_string(i) : "row '" + row.name + "'";
}

}  // namespace

Rat evaluate_exact(const ilp::LinExpr& expr, const std::vector<Rat>& values) {
    Rat acc = Rat::from_double(expr.constant());
    for (const auto& [var, coeff] : expr.terms()) {
        if (idx(var) >= values.size()) continue;
        acc += Rat::from_double(coeff) * values[idx(var)];
    }
    return acc;
}

std::vector<Rat> exact_values(const ilp::Model& model, const std::vector<double>& values) {
    std::vector<Rat> out(values.size());
    (void)model;
    for (std::size_t j = 0; j < values.size(); ++j) out[j] = Rat::from_double(values[j]);
    return out;
}

CertificateReport check_certificate(const ilp::Model& model,
                                    const std::vector<double>& incumbent,
                                    double claimed_objective, const std::vector<double>& duals,
                                    double bound_slack, const CertificateOptions& options) {
    CertificateReport report;
    const Rat feas_tol = Rat::from_double(options.feas_tol);
    const Rat int_tol = Rat::from_double(options.int_tol);

    if (incumbent.size() != static_cast<std::size_t>(model.num_vars())) {
        report.feasible = false;
        report.violations.push_back("incumbent has " + std::to_string(incumbent.size()) +
                                    " values for " + std::to_string(model.num_vars()) +
                                    " variables");
        return report;
    }
    const std::vector<Rat> x = exact_values(model, incumbent);

    // --- Incumbent: rows ---------------------------------------------------
    const auto& rows = model.constraints();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ilp::Constraint& row = rows[i];
        const Rat act = evaluate_exact(row.expr, x);
        const Rat rhs = Rat::from_double(row.rhs);
        Rat violation = 0;
        switch (row.sense) {
            case ilp::CmpSense::Le: violation = act - rhs; break;
            case ilp::CmpSense::Ge: violation = rhs - act; break;
            case ilp::CmpSense::Eq: violation = (act - rhs).abs(); break;
        }
        if (violation > feas_tol) {
            report.feasible = false;
            report.violations.push_back(row_label(row, i) + ": activity " + act.to_string() +
                                        " violates " + sense_spelling(row.sense) + " " +
                                        std::to_string(row.rhs) + " by " +
                                        std::to_string(violation.to_double()));
        }
    }

    // --- Incumbent: bounds + integrality -----------------------------------
    for (int j = 0; j < model.num_vars(); ++j) {
        const Rat& v = x[idx(j)];
        const double lb = model.lower_bound(j);
        const double ub = model.upper_bound(j);
        if (lb != -ilp::kInfinity && Rat::from_double(lb) - v > feas_tol) {
            report.feasible = false;
            report.violations.push_back("variable '" + model.var_name(j) + "' = " +
                                        v.to_string() + " below lower bound " +
                                        std::to_string(lb));
        }
        if (ub != ilp::kInfinity && v - Rat::from_double(ub) > feas_tol) {
            report.feasible = false;
            report.violations.push_back("variable '" + model.var_name(j) + "' = " +
                                        v.to_string() + " above upper bound " +
                                        std::to_string(ub));
        }
        if (model.var_type(j) != ilp::VarType::Continuous) {
            const Rat nearest(static_cast<std::int64_t>(std::llround(incumbent[idx(j)])));
            if ((v - nearest).abs() > int_tol) {
                report.integral = false;
                report.violations.push_back("integer variable '" + model.var_name(j) + "' = " +
                                            v.to_string() + " is not integral");
            }
        }
    }

    // --- Incumbent: objective ----------------------------------------------
    const Rat exact_obj = evaluate_exact(model.objective(), x);
    report.exact_objective = exact_obj.to_double();
    if ((exact_obj - Rat::from_double(claimed_objective)).abs() >
        Rat::from_double(options.obj_tol)) {
        report.objective_matches = false;
        report.violations.push_back("claimed objective " + std::to_string(claimed_objective) +
                                    " but exact c·x = " + exact_obj.to_string());
    }

    // --- Dual certificate ---------------------------------------------------
    if (duals.empty()) return report;
    if (duals.size() != rows.size()) {
        report.certificate_notes.push_back("dual vector has " + std::to_string(duals.size()) +
                                           " entries for " + std::to_string(rows.size()) +
                                           " rows; certificate skipped");
        return report;
    }
    report.has_certificate = true;

    // Quantize toward zero (sign-preserving), clamp wrong signs to zero.
    // Both keep the weak-duality bound valid.
    std::vector<Rat> y(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        Rat yi = Rat::from_double_quantized(duals[i], options.quant_bits);
        const bool wrong_sign = (rows[i].sense == ilp::CmpSense::Le && yi.negative()) ||
                                (rows[i].sense == ilp::CmpSense::Ge && yi.positive());
        if (wrong_sign) {
            yi = 0;
            ++report.clamped_duals;
        }
        y[i] = yi;
    }
    if (report.clamped_duals > 0) {
        report.certificate_notes.push_back(std::to_string(report.clamped_duals) +
                                           " wrong-signed dual(s) clamped to zero");
    }

    // Reduced costs d_j = c_j − Σ_i y_i·A_ij.
    std::vector<Rat> d(idx(model.num_vars()));
    for (const auto& [var, coeff] : model.objective().terms()) {
        if (idx(var) < d.size()) d[idx(var)] += Rat::from_double(coeff);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (y[i].is_zero()) continue;
        for (const auto& [var, coeff] : rows[i].expr.terms()) {
            if (idx(var) < d.size()) d[idx(var)] -= y[i] * Rat::from_double(coeff);
        }
    }

    // U = k + Σ y_i·(b_i − const_i) + Σ_j max(d_j·lb_j, d_j·ub_j). Row
    // constants move to the rhs side: row "expr + c (sense) b" is
    // "expr (sense) b − c".
    Rat bound = Rat::from_double(model.objective().constant());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (y[i].is_zero()) continue;
        bound += y[i] * (Rat::from_double(rows[i].rhs) -
                         Rat::from_double(rows[i].expr.constant()));
    }
    for (int j = 0; j < model.num_vars(); ++j) {
        const Rat& dj = d[idx(j)];
        if (dj.is_zero()) continue;
        const double b = dj.positive() ? model.upper_bound(j) : model.lower_bound(j);
        if (b == ilp::kInfinity || b == -ilp::kInfinity) {
            report.bound_finite = false;
            report.certificate_notes.push_back(
                "reduced cost of unbounded variable '" + model.var_name(j) +
                "' is nonzero; certified bound is infinite");
            break;
        }
        bound += dj * Rat::from_double(b);
    }
    if (!report.bound_finite) return report;

    report.certified_bound = bound.to_double();
    report.gap = (bound - exact_obj).to_double();
    // Weak duality: U bounds the true optimum, and the solver's perturbed
    // objective may exceed the true optimum by at most bound_slack. Anything
    // beyond that (+ tol) proves the incumbent or the certificate is a lie.
    const Rat slack = Rat::from_double(bound_slack);
    if (bound + slack + feas_tol < exact_obj) {
        report.bound_valid = false;
        report.bound_violation = "incumbent objective " + exact_obj.to_string() +
                                 " exceeds the certified upper bound " + bound.to_string() +
                                 " (+ perturbation slack " + std::to_string(bound_slack) + ")";
    }
    return report;
}

}  // namespace p4all::audit
