#include "audit/audit.hpp"

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/instances.hpp"
#include "audit/certificate.hpp"
#include "audit/cuts.hpp"

namespace p4all::audit {

// Implemented in proofs.cpp.
std::unique_ptr<verify::LintPass> make_register_bounds_proof_pass();
std::unique_ptr<verify::LintPass> make_proof_fact_consistency_pass();
// Implemented in rewrites.cpp.
std::unique_ptr<verify::LintPass> make_rewrite_validity_pass();
// Implemented in cuts.cpp.
std::unique_ptr<verify::LintPass> make_cut_validity_pass();

namespace {

using analysis::Instance;
using compiler::CompileArtifacts;
using compiler::Layout;
using compiler::PlacedRegister;
using compiler::StagePlan;

/// Common base: fetch the artifacts payload, no-op when absent.
class AuditPass : public verify::LintPass {
protected:
    static const CompileArtifacts* artifacts_of(verify::LintContext& ctx) {
        const auto* payload = dynamic_cast<const ArtifactsPayload*>(ctx.payload());
        return payload != nullptr ? payload->artifacts : nullptr;
    }

    static support::SourceLoc call_loc(const ir::Program& prog, const Instance& inst) {
        return prog.flow.at(static_cast<std::size_t>(inst.call)).loc;
    }

    static std::string instance_label(const ir::Program& prog, const Instance& inst) {
        const ir::CallSite& site = prog.flow.at(static_cast<std::size_t>(inst.call));
        std::string label = prog.action(site.action).name;
        if (site.elastic()) label += "[" + std::to_string(inst.iter) + "]";
        return label;
    }
};

// ---------------------------------------------------------------------------
// layout-resource-overcommit
// ---------------------------------------------------------------------------

class ResourceOvercommitPass final : public AuditPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "layout-resource-overcommit";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "re-derives per-stage memory/ALU/hash/PHV usage of the compiled layout and "
               "checks it against the target limits and the compiler's own usage report";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr) return;
        const ir::Program& prog = ctx.program();
        const target::TargetSpec& target = art->target;
        const Layout& layout = art->layout;

        if (static_cast<int>(layout.stages.size()) > target.stages) {
            ctx.error({}, "layout uses " + std::to_string(layout.stages.size()) +
                              " stages but target '" + target.name + "' has " +
                              std::to_string(target.stages));
        }

        std::set<analysis::MetaChunk> phv_chunks;
        std::int64_t phv = prog.fixed_phv_bits();
        int stages_occupied = 0;
        compiler::UsageReport derived;
        derived.stages.resize(static_cast<std::size_t>(target.stages));

        for (std::size_t s = 0; s < layout.stages.size(); ++s) {
            const StagePlan& plan = layout.stages[s];
            int stateful = 0;
            int stateless = 0;
            int hash = 0;
            support::SourceLoc stage_loc;
            for (const Instance& inst : plan.actions) {
                const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
                stateful += sum.stateful_alus;
                stateless += sum.stateless_alus;
                hash += sum.hash_units;
                if (!stage_loc.known()) stage_loc = call_loc(prog, inst);
                for (const auto& [chunk, access] : sum.meta) {
                    const ir::MetaField& field = prog.meta(chunk.field);
                    if (field.is_array() && field.array->symbolic() &&
                        phv_chunks.insert(chunk).second) {
                        phv += field.width;
                    }
                }
            }
            std::int64_t mem = 0;
            support::SourceLoc mem_loc;
            std::int64_t biggest = -1;
            for (const PlacedRegister& pr : plan.registers) {
                const std::int64_t bits = pr.elems * prog.reg(pr.reg).width;
                mem += bits;
                if (bits > biggest) {
                    biggest = bits;
                    mem_loc = prog.reg(pr.reg).loc;
                }
            }
            const std::string prefix = "stage " + std::to_string(s) + ": ";
            if (stateful > target.stateful_alus) {
                ctx.error(stage_loc, prefix + "re-derived stateful ALU usage " +
                                         std::to_string(stateful) + " exceeds target limit " +
                                         std::to_string(target.stateful_alus));
            }
            if (stateless > target.stateless_alus) {
                ctx.error(stage_loc, prefix + "re-derived stateless ALU usage " +
                                         std::to_string(stateless) + " exceeds target limit " +
                                         std::to_string(target.stateless_alus));
            }
            if (hash > target.hash_units) {
                ctx.error(stage_loc, prefix + "re-derived hash-unit usage " +
                                         std::to_string(hash) + " exceeds target limit " +
                                         std::to_string(target.hash_units));
            }
            if (mem > target.memory_bits) {
                ctx.error(mem_loc, prefix + "re-derived register memory " + std::to_string(mem) +
                                       "b exceeds target limit " +
                                       std::to_string(target.memory_bits) + "b");
            }
            if (s < derived.stages.size()) {
                compiler::StageUsage& u = derived.stages[s];
                u.memory_bits = mem;
                u.stateful_alus = stateful;
                u.stateless_alus = stateless;
                u.hash_units = hash;
                u.actions = static_cast<int>(plan.actions.size());
                u.register_rows = static_cast<int>(plan.registers.size());
            }
            if (!plan.actions.empty() || !plan.registers.empty()) ++stages_occupied;
        }

        if (phv > target.phv_bits) {
            ctx.error({}, "re-derived PHV usage " + std::to_string(phv) +
                              " bits exceeds target budget " + std::to_string(target.phv_bits));
        }

        // Translation validation of the compiler's own accounting: the
        // claimed usage report must match the independent re-derivation.
        const compiler::UsageReport& claimed = art->claimed_usage;
        const std::size_t n = std::max(claimed.stages.size(), derived.stages.size());
        for (std::size_t s = 0; s < n; ++s) {
            const compiler::StageUsage c =
                s < claimed.stages.size() ? claimed.stages[s] : compiler::StageUsage{};
            const compiler::StageUsage d =
                s < derived.stages.size() ? derived.stages[s] : compiler::StageUsage{};
            const auto mismatch = [&](const char* what, std::int64_t got, std::int64_t want) {
                if (got != want) {
                    ctx.error({}, "stage " + std::to_string(s) + ": compiler claims " +
                                      std::to_string(got) + " " + what +
                                      " but independent re-accounting finds " +
                                      std::to_string(want));
                }
            };
            mismatch("memory bits", c.memory_bits, d.memory_bits);
            mismatch("stateful ALUs", c.stateful_alus, d.stateful_alus);
            mismatch("stateless ALUs", c.stateless_alus, d.stateless_alus);
            mismatch("hash units", c.hash_units, d.hash_units);
            mismatch("actions", c.actions, d.actions);
            mismatch("register rows", c.register_rows, d.register_rows);
        }
        if (claimed.phv_bits != static_cast<int>(phv)) {
            ctx.error({}, "compiler claims " + std::to_string(claimed.phv_bits) +
                              " PHV bits but independent re-accounting finds " +
                              std::to_string(phv));
        }
        if (claimed.stages_occupied != stages_occupied) {
            ctx.error({}, "compiler claims " + std::to_string(claimed.stages_occupied) +
                              " occupied stages but independent re-accounting finds " +
                              std::to_string(stages_occupied));
        }
    }
};

// ---------------------------------------------------------------------------
// layout-dependency-violation
// ---------------------------------------------------------------------------

class DependencyViolationPass final : public AuditPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "layout-dependency-violation";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "rebuilds the dependency graph over the placed instances and checks that the "
               "stage assignment respects every precedence, write-after-read, exclusion, "
               "register-sharing, and co-location constraint";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr) return;
        const ir::Program& prog = ctx.program();
        const target::TargetSpec& target = art->target;
        const Layout& layout = art->layout;

        std::vector<Instance> placed;
        std::map<Instance, int> times_placed;
        for (const StagePlan& plan : layout.stages) {
            for (const Instance& inst : plan.actions) {
                if (++times_placed[inst] == 1) placed.push_back(inst);
            }
        }
        for (const auto& [inst, count] : times_placed) {
            if (count > 1) {
                ctx.error(call_loc(prog, inst), "instance " + instance_label(prog, inst) +
                                                    " is placed in " + std::to_string(count) +
                                                    " stages");
            }
        }

        const analysis::DepGraph g = analysis::build_dep_graph(prog, target, placed);
        if (g.infeasible) {
            ctx.error({}, "placed instances are mutually inconsistent: " + g.infeasible_reason);
            return;
        }
        const auto rep = [&](int node) -> const Instance& {
            return g.instances.at(static_cast<std::size_t>(
                g.members.at(static_cast<std::size_t>(node)).front()));
        };
        const auto stage_of_node = [&](int node) { return layout.stage_of(rep(node)); };

        for (const auto& [a, b] : g.before) {
            if (stage_of_node(a) >= stage_of_node(b)) {
                ctx.error(call_loc(prog, rep(b)),
                          "precedence violated: " + instance_label(prog, rep(a)) + " (stage " +
                              std::to_string(stage_of_node(a)) + ") must come strictly before " +
                              instance_label(prog, rep(b)) + " (stage " +
                              std::to_string(stage_of_node(b)) + ")");
            }
        }
        for (const auto& [a, b] : g.not_after) {
            if (stage_of_node(a) > stage_of_node(b)) {
                ctx.error(call_loc(prog, rep(b)),
                          "write-after-read order violated: " + instance_label(prog, rep(a)) +
                              " (stage " + std::to_string(stage_of_node(a)) +
                              ") must not come after " + instance_label(prog, rep(b)) +
                              " (stage " + std::to_string(stage_of_node(b)) + ")");
            }
        }
        for (const auto& [a, b] : g.exclusive) {
            if (stage_of_node(a) == stage_of_node(b)) {
                ctx.error(call_loc(prog, rep(b)),
                          "exclusive instances " + instance_label(prog, rep(a)) + " and " +
                              instance_label(prog, rep(b)) + " share stage " +
                              std::to_string(stage_of_node(a)));
            }
        }
        for (const auto& members : g.members) {
            for (std::size_t i = 1; i < members.size(); ++i) {
                const Instance& first =
                    g.instances.at(static_cast<std::size_t>(members.front()));
                const Instance& other = g.instances.at(static_cast<std::size_t>(members[i]));
                if (layout.stage_of(first) != layout.stage_of(other)) {
                    ctx.error(call_loc(prog, other),
                              "register-sharing instances " + instance_label(prog, first) +
                                  " and " + instance_label(prog, other) +
                                  " are split across stages " +
                                  std::to_string(layout.stage_of(first)) + " and " +
                                  std::to_string(layout.stage_of(other)));
                }
            }
        }

        // Co-location: every register row an action touches must be placed
        // in the action's own stage.
        for (std::size_t s = 0; s < layout.stages.size(); ++s) {
            std::set<analysis::RegChunk> here;
            for (const PlacedRegister& pr : layout.stages[s].registers) {
                here.insert({pr.reg, pr.instance});
            }
            for (const Instance& inst : layout.stages[s].actions) {
                const analysis::AccessSummary sum = analysis::summarize(prog, target, inst);
                for (const analysis::RegChunk& rc : sum.regs) {
                    if (here.count(rc) == 0) {
                        ctx.error(call_loc(prog, inst),
                                  instance_label(prog, inst) + " in stage " + std::to_string(s) +
                                      " uses register " + prog.reg(rc.reg).name + "_" +
                                      std::to_string(rc.instance) +
                                      " which is not placed in that stage");
                    }
                }
            }
        }
    }
};

// ---------------------------------------------------------------------------
// layout-symbol-mismatch
// ---------------------------------------------------------------------------

class SymbolMismatchPass final : public AuditPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "layout-symbol-mismatch";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "checks that every symbol binding satisfies all assume constraints and matches "
               "the emitted unrolling, and re-evaluates the claimed utility from the bindings";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr) return;
        const ir::Program& prog = ctx.program();
        const Layout& layout = art->layout;

        if (layout.bindings.size() != prog.symbols.size()) {
            ctx.error({}, "layout binds " + std::to_string(layout.bindings.size()) +
                              " symbols but the program declares " +
                              std::to_string(prog.symbols.size()));
            return;
        }

        // Every assume constraint, re-evaluated on the bindings.
        for (const ir::PolyConstraint& assume : prog.assumes) {
            const double v = assume.poly.evaluate(layout.bindings);
            constexpr double kEps = 1e-9;
            bool ok = true;
            switch (assume.op) {
                case ir::CmpOp::Lt: ok = v < kEps; break;  // ints: normalized to Le upstream
                case ir::CmpOp::Le: ok = v <= kEps; break;
                case ir::CmpOp::Gt: ok = v > -kEps; break;
                case ir::CmpOp::Ge: ok = v >= -kEps; break;
                case ir::CmpOp::Eq: ok = std::abs(v) <= kEps; break;
                case ir::CmpOp::Ne: ok = std::abs(v) > kEps; break;
            }
            if (!ok) {
                support::SourceLoc loc;
                for (const ir::PolyTerm& t : assume.poly.terms()) {
                    if (t.a != ir::kNoId) {
                        loc = prog.symbol(t.a).loc;
                        break;
                    }
                }
                ctx.error(loc, "symbol assignment violates assume constraint " +
                                   assume.to_string());
            }
        }

        // Bindings must describe the emitted unrolling exactly: elastic call
        // sites placed for iterations 0..k-1 and nothing beyond.
        for (std::size_t c = 0; c < prog.flow.size(); ++c) {
            const ir::CallSite& site = prog.flow[c];
            if (!site.elastic()) {
                if (layout.stage_of({static_cast<int>(c), 0}) < 0) {
                    ctx.error(site.loc, "inelastic call of '" + prog.action(site.action).name +
                                            "' is not placed in any stage");
                }
                continue;
            }
            const std::int64_t k = layout.binding(site.loop_bound);
            const std::string& sym = prog.symbol(site.loop_bound).name;
            for (std::int64_t i = 0; i < k; ++i) {
                if (layout.stage_of({static_cast<int>(c), i}) < 0) {
                    ctx.error(site.loc, "iteration " + std::to_string(i) + " of '" +
                                            prog.action(site.action).name +
                                            "' is missing although " + sym + " = " +
                                            std::to_string(k));
                }
            }
            if (layout.stage_of({static_cast<int>(c), k}) >= 0) {
                ctx.error(site.loc, "call of '" + prog.action(site.action).name +
                                        "' has placed iterations beyond " + sym + " = " +
                                        std::to_string(k));
            }
        }

        // Placed register rows must carry the bound element count.
        for (const StagePlan& plan : layout.stages) {
            for (const PlacedRegister& pr : plan.registers) {
                const ir::RegisterArray& reg = prog.reg(pr.reg);
                if (reg.elems.symbolic() &&
                    pr.elems != layout.binding(reg.elems.sym)) {
                    ctx.error(reg.loc, "register row " + reg.name + "_" +
                                           std::to_string(pr.instance) + " has " +
                                           std::to_string(pr.elems) + " elements but " +
                                           prog.symbol(reg.elems.sym).name + " = " +
                                           std::to_string(layout.binding(reg.elems.sym)));
                }
            }
        }

        // The claimed utility must equal the utility polynomial evaluated on
        // the bindings (the solver objective is exactly the lowered utility).
        const double derived = prog.utility.evaluate(layout.bindings);
        if (std::abs(derived - art->claimed_utility) > 1e-5) {
            ctx.error({}, "compiler claims utility " + std::to_string(art->claimed_utility) +
                              " but the bindings evaluate to " + std::to_string(derived));
        }
    }
};

// ---------------------------------------------------------------------------
// ilp-infeasible-incumbent
// ---------------------------------------------------------------------------

class InfeasibleIncumbentPass final : public AuditPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override {
        return "ilp-infeasible-incumbent";
    }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "re-evaluates every model row against the incumbent in exact rational "
               "arithmetic, checks integrality of every integer variable, and compares the "
               "claimed objective against the exact c·x";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr || !art->has_ilp) return;
        if (art->solution.values.empty()) {
            ctx.error({}, "ILP backend claims a layout but recorded no incumbent assignment");
            return;
        }
        CertificateOptions opts;
        opts.feas_tol = 1e-5;  // the solver feasibility tolerance is 1e-6 per row
        opts.int_tol = art->solve_options.int_tol;
        const CertificateReport report =
            check_certificate(art->ilp.model, art->solution.values, art->solution.objective,
                              /*duals=*/{}, /*bound_slack=*/0.0, opts);
        for (const std::string& v : report.violations) {
            ctx.error({}, "incumbent fails exact re-evaluation: " + v);
        }
        if (report.incumbent_ok() &&
            std::abs(art->solution.objective - art->claimed_utility) > 1e-5) {
            ctx.error({}, "solver objective " + std::to_string(art->solution.objective) +
                              " disagrees with claimed utility " +
                              std::to_string(art->claimed_utility));
        }
    }
};

// ---------------------------------------------------------------------------
// ilp-certificate-gap
// ---------------------------------------------------------------------------

class CertificateGapPass final : public AuditPass {
public:
    [[nodiscard]] std::string_view id() const noexcept override { return "ilp-certificate-gap"; }
    [[nodiscard]] std::string_view description() const noexcept override {
        return "validates the root-relaxation dual certificate in exact rational arithmetic: "
               "any sign-correct dual vector over the cut-extended root rows bounds the "
               "incumbent from above by weak duality";
    }

    void run(verify::LintContext& ctx) override {
        const CompileArtifacts* art = artifacts_of(ctx);
        if (art == nullptr || !art->has_ilp) return;
        if (art->solution.root_duals.empty()) {
            ctx.note({}, "no root dual certificate recorded (root relaxation was not solved "
                         "to optimality); duality-gap check skipped");
            return;
        }
        if (art->solution.values.empty()) return;  // incumbent pass reports this
        // The root duals certify against the cut-extended root relaxation:
        // model rows first, then one Le row per pooled cut. Every cut must
        // re-verify before its row may strengthen the bound — an unverifiable
        // cut is the cut-validity pass's error; here it only voids the
        // certificate.
        const ilp::Model* rows = &art->ilp.model;
        ilp::Model extended;
        if (!art->solution.cuts.empty()) {
            std::vector<ilp::CertifiedCut> verified;
            verified.reserve(art->solution.cuts.size());
            for (const ilp::CertifiedCut& cut : art->solution.cuts) {
                if (verify_cut(art->ilp.model, verified, cut)) {
                    ctx.note({}, "a pooled cut failed certificate re-derivation; duality-gap "
                                 "check skipped (see ilp-cut-validity)");
                    return;
                }
                verified.push_back(cut);
            }
            extended = extend_with_cuts(art->ilp.model, verified);
            rows = &extended;
        }
        const CertificateReport report = check_certificate(
            *rows, art->solution.values, art->solution.objective,
            art->solution.root_duals, art->solution.root_bound_slack, CertificateOptions{});
        for (const std::string& n : report.certificate_notes) ctx.note({}, n);
        if (!report.has_certificate || !report.bound_finite) return;
        if (!report.bound_valid) {
            ctx.error({}, "dual certificate refutes the incumbent: " + report.bound_violation);
            return;
        }
        ctx.note({}, "root certificate valid: incumbent " +
                         std::to_string(report.exact_objective) + " ≤ certified bound " +
                         std::to_string(report.certified_bound) + " (gap " +
                         std::to_string(report.gap) + ")");
    }
};

}  // namespace

void register_audit_passes(verify::PassRegistry& registry) {
    if (registry.find(kAuditChecks[0]) != nullptr) return;
    registry.add(std::make_unique<ResourceOvercommitPass>());
    registry.add(std::make_unique<DependencyViolationPass>());
    registry.add(std::make_unique<SymbolMismatchPass>());
    registry.add(std::make_unique<InfeasibleIncumbentPass>());
    registry.add(std::make_unique<CertificateGapPass>());
    registry.add(make_cut_validity_pass());
    registry.add(make_register_bounds_proof_pass());
    registry.add(make_proof_fact_consistency_pass());
    registry.add(make_rewrite_validity_pass());
}

verify::LintResult audit_artifacts(const ir::Program& prog, const CompileArtifacts& artifacts,
                                   bool werror) {
    register_audit_passes(verify::PassRegistry::global());
    ArtifactsPayload payload;
    payload.artifacts = &artifacts;
    verify::LintOptions options;
    options.checks.assign(std::begin(kAuditChecks), std::end(kAuditChecks));
    options.werror = werror;
    options.target = artifacts.target;
    options.payload = &payload;
    return verify::run_lint(prog, options);
}

std::function<std::string(const ir::Program&, const CompileArtifacts&)> make_resilience_gate(
    bool werror) {
    return [werror](const ir::Program& prog, const CompileArtifacts& artifacts) -> std::string {
        const verify::LintResult result = audit_artifacts(prog, artifacts, werror);
        if (!result.has_errors()) return {};
        std::string out = "audit rejected the layout:";
        for (const verify::Finding& f : result.findings) {
            if (f.severity != support::Severity::Error) continue;
            out += "\n  [" + f.check + "] " + f.message;
        }
        return out;
    };
}

}  // namespace p4all::audit
