// The proof-guided IR optimizer.
//
// optimize() runs between elaboration and layout generation: a fixpoint loop
// of small rewrites, each justified by a verify-layer analysis and recorded
// as a RewriteCertificate. Cheap syntactic rules (algebraic identities, dead
// stores) run first each round; assume-derived bound rules next; the
// dataflow-driven constant folder (interval + known-bits over the bounded
// sizing view) only when everything cheaper has reached fixpoint. Every
// rewrite is applied through opt::apply_certificate, so the audit replay is
// bit-for-bit the transformation the optimizer performed.
//
// Soundness boundary: register contents are externally observable (the
// controller reads rows off-switch), so the optimizer only deletes register
// state that is never accessed at all, and only elides writes shadowed
// within the same action instance. See docs/OPTIMIZER.md for the argument.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "opt/certificate.hpp"

namespace p4all::opt {

struct OptOptions {
    /// 0 disables every rewrite (optimize() then returns an untouched copy
    /// with an empty certificate chain); 1 enables all of them.
    int level = 1;
    /// Hard cap on the certificate chain length.
    int max_rewrites = 128;
    /// Instance cap for the bounded sizing view backing the constant folder;
    /// past it the dataflow rules stay off (bound rules still run).
    std::int64_t max_view_instances = 2048;
};

struct OptStats {
    int rounds = 0;  ///< fixpoint rounds that applied at least one rewrite
    bool dataflow_available = false;  ///< bounded sizing view existed
};

/// The optimized program plus everything needed to audit it or to transplant
/// an unoptimized layout onto it (differential testing).
struct OptResult {
    ir::Program program;
    std::vector<RewriteCertificate> rewrites;
    /// flow index in `program` -> flow index in the input program.
    std::vector<int> call_map;
    /// RegisterId in `program` -> RegisterId in the input program.
    std::vector<ir::RegisterId> reg_map;
    OptStats stats;
};

[[nodiscard]] OptResult optimize(const ir::Program& prog, const OptOptions& options = {});

}  // namespace p4all::opt
