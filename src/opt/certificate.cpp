#include "opt/certificate.hpp"

#include "ir/rewrite.hpp"
#include "support/error.hpp"

namespace p4all::opt {

using support::CompileError;

void apply_certificate(ir::Program& prog, const RewriteCertificate& cert) {
    if (cert.rule == rules::kConstFoldGuard) {
        if (cert.slot != "lhs" && cert.slot != "rhs") {
            throw CompileError("certificate: const-fold-guard slot must be lhs or rhs");
        }
        ir::replace_guard_operand(prog, cert.call, cert.guard, cert.slot == "lhs", cert.value);
        return;
    }
    if (cert.rule == rules::kConstFoldOperand) {
        if (cert.slot == "src") {
            ir::replace_op_operand(prog, cert.action, cert.op, ir::OperandSlot::Src,
                                   cert.operand, cert.value);
        } else if (cert.slot == "reg-index") {
            ir::replace_op_operand(prog, cert.action, cert.op, ir::OperandSlot::RegIndex, 0,
                                   cert.value);
        } else {
            throw CompileError("certificate: const-fold-operand slot must be src or reg-index");
        }
        return;
    }
    if (cert.rule == rules::kGuardTrue) {
        ir::drop_guard(prog, cert.call, cert.guard);
        return;
    }
    if (cert.rule == rules::kCallUnreachable) {
        ir::remove_call(prog, cert.call);
        return;
    }
    if (cert.rule == rules::kDeadStore || cert.rule == rules::kDeadRegStore ||
        cert.rule == rules::kStrengthReduceDrop) {
        ir::remove_action_op(prog, cert.action, cert.op);
        return;
    }
    if (cert.rule == rules::kStrengthReduceSet) {
        ir::reduce_to_set(prog, cert.action, cert.op, cert.aux);
        return;
    }
    if (cert.rule == rules::kStrengthReduceModulus) {
        ir::replace_op_operand(prog, cert.action, cert.op, ir::OperandSlot::Modulus, 0,
                               cert.value);
        return;
    }
    if (cert.rule == rules::kDeadExtern) {
        ir::remove_register(prog, cert.reg);
        return;
    }
    throw CompileError("certificate: unknown rewrite rule '" + cert.rule + "'");
}

}  // namespace p4all::opt
