#include "opt/optimizer.hpp"

#include <numeric>
#include <optional>
#include <string>
#include <variant>

#include "ir/rewrite.hpp"
#include "verify/dataflow.hpp"
#include "verify/interval.hpp"
#include "verify/liveness.hpp"

namespace p4all::opt {

namespace {

using verify::Interval;
using verify::Truth;

bool is_literal(const ir::Value& v, std::int64_t want) {
    const auto* a = std::get_if<ir::Affine>(&v);
    return a != nullptr && a->is_literal() && a->constant == want;
}

std::optional<std::int64_t> literal_of(const ir::Value& v) {
    const auto* a = std::get_if<ir::Affine>(&v);
    if (a == nullptr || !a->is_literal()) return std::nullopt;
    return a->constant;
}

std::uint64_t width_mask(int width) {
    return width >= 64 ? ~0ULL : (std::uint64_t{1} << width) - 1;
}

class Optimizer {
public:
    Optimizer(const ir::Program& prog, const OptOptions& options)
        : cur_(prog), opts_(options) {
        call_map_.resize(prog.flow.size());
        std::iota(call_map_.begin(), call_map_.end(), 0);
        reg_map_.resize(prog.registers.size());
        std::iota(reg_map_.begin(), reg_map_.end(), 0);
    }

    OptResult run() {
        if (opts_.level >= 1) {
            while (static_cast<int>(certs_.size()) < opts_.max_rewrites && round()) {
                ++stats_.rounds;
            }
        }
        return {std::move(cur_), std::move(certs_), std::move(call_map_), std::move(reg_map_),
                stats_};
    }

private:
    /// Applies the cheapest available rewrite; true when one fired. Scan
    /// order is fixed (syntactic, then bound-driven, then dataflow) so the
    /// certificate chain is deterministic.
    bool round() {
        return strength_reduce_set() || strength_reduce_drop() || dead_meta_store() ||
               dead_register_store() || dead_extern() || modulus_to_literal() ||
               guard_decide() || const_fold();
    }

    RewriteCertificate base(const char* rule, const char* domain) {
        RewriteCertificate c;
        c.rule = rule;
        c.domain = domain;
        c.pre_hash = ir::program_hash(cur_);
        return c;
    }

    /// Applies `c` through the same entry point the audit replay uses, then
    /// seals it with the post-edit hash.
    void commit(RewriteCertificate c) {
        apply_certificate(cur_, c);
        c.post_hash = ir::program_hash(cur_);
        certs_.push_back(std::move(c));
    }

    // --- syntactic rules ---------------------------------------------------

    bool strength_reduce_set() {
        for (std::size_t ai = 0; ai < cur_.actions.size(); ++ai) {
            const ir::Action& action = cur_.actions[ai];
            for (std::size_t oi = 0; oi < action.ops.size(); ++oi) {
                const ir::PrimOp& op = action.ops[oi];
                const bool add = op.kind == ir::PrimKind::Add;
                const bool sub = op.kind == ir::PrimKind::Sub;
                if ((!add && !sub) || op.srcs.size() != 2) continue;
                int kept = -1;
                if (is_literal(op.srcs[1], 0)) {
                    kept = 0;  // x + 0, x - 0
                } else if (add && is_literal(op.srcs[0], 0)) {
                    kept = 1;  // 0 + x
                }
                if (kept < 0) continue;
                auto c = base(rules::kStrengthReduceSet, "syntactic");
                c.action = static_cast<ir::ActionId>(ai);
                c.op = static_cast<int>(oi);
                c.aux = kept;
                c.note = "additive identity in " + action.name;
                commit(std::move(c));
                return true;
            }
        }
        return false;
    }

    bool strength_reduce_drop() {
        for (std::size_t ai = 0; ai < cur_.actions.size(); ++ai) {
            const ir::Action& action = cur_.actions[ai];
            for (std::size_t oi = 0; oi < action.ops.size(); ++oi) {
                const ir::PrimOp& op = action.ops[oi];
                if (!op.dst || op.srcs.size() != 1) continue;
                const std::optional<std::int64_t> lit = literal_of(op.srcs[0]);
                if (!lit) continue;
                // Metadata cells hold masked unsigned values, so max with 0
                // and min with anything at or above the width mask are both
                // the identity on the destination.
                const std::uint64_t raw = static_cast<std::uint64_t>(*lit);
                const bool drop =
                    (op.kind == ir::PrimKind::Max && raw == 0) ||
                    (op.kind == ir::PrimKind::Min &&
                     raw >= width_mask(cur_.meta(op.dst->field).width));
                if (!drop) continue;
                auto c = base(rules::kStrengthReduceDrop, "width");
                c.action = static_cast<ir::ActionId>(ai);
                c.op = static_cast<int>(oi);
                c.value = *lit;
                c.note = "identity min/max in " + action.name;
                commit(std::move(c));
                return true;
            }
        }
        return false;
    }

    bool dead_meta_store() {
        const auto dead = verify::dead_meta_stores(cur_);
        if (dead.empty()) return false;
        const verify::DeadStore& d = dead.front();
        auto c = base(rules::kDeadStore, "syntactic");
        c.action = d.action;
        c.op = d.op;
        c.aux = d.overwritten_by;
        c.note = "shadowed metadata write in " +
                 cur_.actions[static_cast<std::size_t>(d.action)].name;
        commit(std::move(c));
        return true;
    }

    bool dead_register_store() {
        const auto dead = verify::dead_register_stores(cur_);
        if (dead.empty()) return false;
        const verify::DeadStore& d = dead.front();
        auto c = base(rules::kDeadRegStore, "syntactic");
        c.action = d.action;
        c.op = d.op;
        c.aux = d.overwritten_by;
        c.note = "shadowed register write in " +
                 cur_.actions[static_cast<std::size_t>(d.action)].name;
        commit(std::move(c));
        return true;
    }

    bool dead_extern() {
        const auto use = verify::register_usage(cur_);
        for (std::size_t i = 0; i < use.size(); ++i) {
            if (use[i].accessed()) continue;
            auto c = base(rules::kDeadExtern, "syntactic");
            c.reg = static_cast<ir::RegisterId>(i);
            c.note = "register '" + cur_.registers[i].name + "' is never referenced";
            commit(std::move(c));
            reg_map_.erase(reg_map_.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
        return false;
    }

    // --- assume-bound rules ------------------------------------------------

    bool modulus_to_literal() {
        const verify::BoundEnv env(cur_);
        for (std::size_t ai = 0; ai < cur_.actions.size(); ++ai) {
            const ir::Action& action = cur_.actions[ai];
            for (std::size_t oi = 0; oi < action.ops.size(); ++oi) {
                const ir::PrimOp& op = action.ops[oi];
                if (op.kind != ir::PrimKind::Hash || !op.modulus) continue;
                const auto* rr = std::get_if<ir::RegRef>(&*op.modulus);
                if (rr == nullptr) continue;
                // The hash range is the placed element count of the register
                // row; when the assumes pin the extent to a single value,
                // every admissible layout places exactly that many elements.
                const Interval elems = env.extent(cur_.reg(rr->reg).elems);
                if (elems.empty() || !elems.is_point() || elems.lo < 1) continue;
                auto c = base(rules::kStrengthReduceModulus, "bounds");
                c.action = static_cast<ir::ActionId>(ai);
                c.op = static_cast<int>(oi);
                c.value = elems.lo;
                c.reg = rr->reg;
                c.note = "hash range of '" + cur_.reg(rr->reg).name + "' is pinned to " +
                         std::to_string(elems.lo);
                commit(std::move(c));
                return true;
            }
        }
        return false;
    }

    bool guard_decide() {
        const verify::BoundEnv env(cur_);
        for (std::size_t ci = 0; ci < cur_.flow.size(); ++ci) {
            const ir::CallSite& site = cur_.flow[ci];
            for (std::size_t gi = 0; gi < site.guards.size(); ++gi) {
                const Truth truth = verify::guard_truth(env, cur_, site, site.guards[gi]);
                if (truth == Truth::True) {
                    auto c = base(rules::kGuardTrue, "bounds");
                    c.call = static_cast<int>(ci);
                    c.guard = static_cast<int>(gi);
                    c.note = "guard always holds in " + cur_.action(site.action).name;
                    commit(std::move(c));
                    return true;
                }
                if (truth == Truth::False) {
                    auto c = base(rules::kCallUnreachable, "bounds");
                    c.call = static_cast<int>(ci);
                    c.guard = static_cast<int>(gi);
                    c.note = "guard never holds; call of " + cur_.action(site.action).name +
                             " is unreachable";
                    commit(std::move(c));
                    call_map_.erase(call_map_.begin() + static_cast<std::ptrdiff_t>(ci));
                    return true;
                }
            }
        }
        return false;
    }

    // --- dataflow rules (sparse conditional constant propagation) ----------

    bool const_fold() {
        const auto view = verify::bounded_sizing_view(cur_, opts_.max_view_instances);
        if (!view) return false;
        stats_.dataflow_available = true;

        verify::StageDataflow<verify::IntervalDomain> intervals(cur_, *view);
        intervals.solve();
        std::optional<verify::StageDataflow<verify::KnownBitsDomain>> bits;

        // Group view instances by call and by action: a fold is only sound
        // when the operand is the same constant at every instance that can
        // execute the read.
        std::vector<std::vector<std::size_t>> by_call(cur_.flow.size());
        std::vector<std::vector<std::size_t>> by_action(cur_.actions.size());
        for (std::size_t i = 0; i < view->instances.size(); ++i) {
            const int call = view->instances[i].inst.call;
            by_call[static_cast<std::size_t>(call)].push_back(i);
            const ir::ActionId act = cur_.flow[static_cast<std::size_t>(call)].action;
            by_action[static_cast<std::size_t>(act)].push_back(i);
        }

        const auto fold_value = [&](const std::vector<std::size_t>& insts, int op_index,
                                    const ir::Value& v) -> std::optional<std::int64_t> {
            if (insts.empty() || !std::holds_alternative<ir::MetaRef>(v)) return std::nullopt;
            std::optional<std::int64_t> k;
            bool ok = true;
            for (const std::size_t idx : insts) {
                const Interval val = intervals.value_entering_op(idx, op_index, v);
                if (val.empty() || !val.is_point() || (k && *k != val.lo)) {
                    ok = false;
                    break;
                }
                k = val.lo;
            }
            if (ok && k) return k;
            // Known-bits can pin a constant the interval lattice lost (e.g.
            // after masking); solve it lazily, once per fixpoint round.
            if (!bits) {
                bits.emplace(cur_, *view);
                bits->solve();
            }
            std::optional<std::uint64_t> word;
            for (const std::size_t idx : insts) {
                const verify::KnownBitsValue val = bits->value_entering_op(idx, op_index, v);
                if (val.known != ~0ULL || (word && *word != val.value)) return std::nullopt;
                word = val.value;
            }
            if (word) return static_cast<std::int64_t>(*word);
            return std::nullopt;
        };

        // Guards read the stage-entry state (op index 0).
        for (std::size_t ci = 0; ci < cur_.flow.size(); ++ci) {
            const ir::CallSite& site = cur_.flow[ci];
            for (std::size_t gi = 0; gi < site.guards.size(); ++gi) {
                const ir::Cond& guard = site.guards[gi];
                for (const bool lhs : {true, false}) {
                    const ir::Value& v = lhs ? guard.lhs : guard.rhs;
                    const auto k = fold_value(by_call[ci], 0, v);
                    if (!k) continue;
                    auto c = base(rules::kConstFoldGuard, "dataflow");
                    c.call = static_cast<int>(ci);
                    c.guard = static_cast<int>(gi);
                    c.slot = lhs ? "lhs" : "rhs";
                    c.value = *k;
                    c.note = "guard operand is always " + std::to_string(*k);
                    commit(std::move(c));
                    return true;
                }
            }
        }

        for (std::size_t ai = 0; ai < cur_.actions.size(); ++ai) {
            const ir::Action& action = cur_.actions[ai];
            for (std::size_t oi = 0; oi < action.ops.size(); ++oi) {
                const ir::PrimOp& op = action.ops[oi];
                for (std::size_t p = 0; p < op.srcs.size(); ++p) {
                    const auto k =
                        fold_value(by_action[ai], static_cast<int>(oi), op.srcs[p]);
                    if (!k) continue;
                    auto c = base(rules::kConstFoldOperand, "dataflow");
                    c.action = static_cast<ir::ActionId>(ai);
                    c.op = static_cast<int>(oi);
                    c.slot = "src";
                    c.operand = static_cast<int>(p);
                    c.value = *k;
                    c.note = "operand of " + action.name + " is always " + std::to_string(*k);
                    commit(std::move(c));
                    return true;
                }
                if (op.reg_index) {
                    const auto k =
                        fold_value(by_action[ai], static_cast<int>(oi), *op.reg_index);
                    if (k) {
                        auto c = base(rules::kConstFoldOperand, "dataflow");
                        c.action = static_cast<ir::ActionId>(ai);
                        c.op = static_cast<int>(oi);
                        c.slot = "reg-index";
                        c.value = *k;
                        c.note = "register index in " + action.name + " is always " +
                                 std::to_string(*k);
                        commit(std::move(c));
                        return true;
                    }
                }
            }
        }
        return false;
    }

    ir::Program cur_;
    OptOptions opts_;
    std::vector<RewriteCertificate> certs_;
    std::vector<int> call_map_;
    std::vector<ir::RegisterId> reg_map_;
    OptStats stats_;
};

}  // namespace

OptResult optimize(const ir::Program& prog, const OptOptions& options) {
    return Optimizer(prog, options).run();
}

}  // namespace p4all::opt
