// Rewrite certificates: the optimizer's auditable transformation log.
//
// The optimizer never hands the compiler a transformed program on trust.
// Each individual rewrite is recorded as a RewriteCertificate naming the
// rule, the exact IR coordinates it edited, and the structural hash of the
// program immediately before and after the edit. The chain of certificates
// rides in CompileArtifacts; the audit's rewrite-validity pass replays it
// from the pre-optimization program with apply_certificate (the same
// mechanics the optimizer used), re-derives each rule's justification from
// the verify analyses, and rejects the compile on any hash break, failed
// justification, or mismatch with the final program.
#pragma once

#include <cstdint>
#include <string>

#include "ir/program.hpp"

namespace p4all::opt {

/// Canonical rule ids, shared between the optimizer and the audit replay.
namespace rules {
inline constexpr char kConstFoldGuard[] = "const-fold-guard";
inline constexpr char kConstFoldOperand[] = "const-fold-operand";
inline constexpr char kGuardTrue[] = "guard-true";
inline constexpr char kCallUnreachable[] = "call-unreachable";
inline constexpr char kDeadStore[] = "dead-store";
inline constexpr char kDeadRegStore[] = "dead-reg-store";
inline constexpr char kStrengthReduceSet[] = "strength-reduce-set";
inline constexpr char kStrengthReduceDrop[] = "strength-reduce-drop";
inline constexpr char kStrengthReduceModulus[] = "strength-reduce-modulus";
inline constexpr char kDeadExtern[] = "dead-extern";
}  // namespace rules

/// One applied rewrite. Coordinate fields are interpreted per rule (see
/// apply_certificate); unused coordinates stay at their -1/0 defaults so
/// certificates compare and serialize predictably.
struct RewriteCertificate {
    std::string rule;    ///< one of opt::rules
    std::string domain;  ///< justification family: syntactic | bounds | width | dataflow
    std::uint64_t pre_hash = 0;   ///< ir::program_hash before the edit
    std::uint64_t post_hash = 0;  ///< ir::program_hash after the edit

    int call = -1;                    ///< flow index (guard/call rules)
    int guard = -1;                   ///< guard index within the call
    ir::ActionId action = ir::kNoId;  ///< action (op rules)
    int op = -1;                      ///< op index within the action
    std::string slot;                 ///< "lhs"|"rhs"|"src"|"reg-index"|"modulus"
    int operand = -1;                 ///< src position for slot "src"
    std::int64_t value = 0;           ///< literal written by folding rules
    int aux = -1;                     ///< rule-specific: overwriting op / kept src
    ir::RegisterId reg = ir::kNoId;   ///< register (dead-extern)
    std::string note;                 ///< human-readable explanation

    friend bool operator==(const RewriteCertificate&, const RewriteCertificate&) = default;
};

/// Applies the mechanical edit a certificate describes to `prog`, without
/// checking hashes or justification (the audit does both around this call).
/// Throws support::CompileError on an unknown rule or coordinates that do
/// not fit the program — a forged certificate cannot silently no-op.
void apply_certificate(ir::Program& prog, const RewriteCertificate& cert);

}  // namespace p4all::opt
