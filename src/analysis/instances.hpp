// Action instances: the unrolled form of the elastic program.
//
// When a loop `for (i < v)` is unrolled K times, each call site inside it
// yields instances at iterations 0..K-1 (the paper's a_1..a_K). Dependence
// analysis, the unroll bound, and the ILP all operate on instances and the
// resources they touch.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ir/program.hpp"
#include "target/spec.hpp"

namespace p4all::analysis {

/// One unrolled action invocation: call site `call` at loop iteration
/// `iter` (0 for inelastic sites).
struct Instance {
    int call = 0;
    std::int64_t iter = 0;

    friend bool operator==(const Instance&, const Instance&) = default;
    friend auto operator<=>(const Instance&, const Instance&) = default;
};

/// A concrete metadata element: (field, element index). Scalars use index 0.
struct MetaChunk {
    ir::MetaFieldId field = ir::kNoId;
    std::int64_t index = 0;

    friend bool operator==(const MetaChunk&, const MetaChunk&) = default;
    friend auto operator<=>(const MetaChunk&, const MetaChunk&) = default;
};

/// A concrete register-array instance: (matrix, row index).
struct RegChunk {
    ir::RegisterId reg = ir::kNoId;
    std::int64_t instance = 0;

    friend bool operator==(const RegChunk&, const RegChunk&) = default;
    friend auto operator<=>(const RegChunk&, const RegChunk&) = default;
};

/// How an instance touches one metadata chunk.
struct ChunkAccess {
    bool reads = false;
    bool writes = false;
    /// Set when the *only* write to the chunk is a self-commutative
    /// read-modify-write (Min or Max into dst); two such writers of the same
    /// kind commute and get an exclusion edge instead of precedence (§4.2).
    std::optional<ir::PrimKind> commutative_update;
};

/// Everything dependence analysis and the ILP need to know about one
/// instance: which chunks it reads/writes, which register rows it owns, and
/// its ALU / hash-unit footprint on the target.
struct AccessSummary {
    std::map<MetaChunk, ChunkAccess> meta;
    std::vector<RegChunk> regs;
    int stateful_alus = 0;
    int stateless_alus = 0;
    int hash_units = 0;
};

/// Computes the access summary of `inst` in `prog`. Operand affines are
/// evaluated at the instance's action-parameter value
/// (call.iter_arg.at(inst.iter)); guard reads count as reads.
[[nodiscard]] AccessSummary summarize(const ir::Program& prog, const target::TargetSpec& target,
                                      const Instance& inst);

/// Unrolls only the loops bounded by symbol `v`, K iterations each — the
/// instance set of the paper's per-symbol dependency graph G_v.
[[nodiscard]] std::vector<Instance> instantiate_symbol(const ir::Program& prog, ir::SymbolId v,
                                                       std::int64_t k);

/// Unrolls every call site: elastic sites to their symbol's bound in
/// `bounds` (indexed by SymbolId), inelastic sites once. Instance order is
/// program order, iterations ascending — the order the ILP relies on.
[[nodiscard]] std::vector<Instance> instantiate_all(const ir::Program& prog,
                                                    const std::vector<std::int64_t>& bounds);

/// Program-order comparison used to classify dependence edge directions:
/// earlier sequence first; within one call site, lower iteration first.
[[nodiscard]] bool precedes_in_program(const ir::Program& prog, const Instance& a,
                                       const Instance& b);

}  // namespace p4all::analysis
