// The dependency graph of §4.2.
//
// Nodes group action instances that access the same register row (and so
// must share a stage). Edges are:
//   Before    n1 → n2 : n1's stage strictly precedes n2's (data/control dep)
//   NotAfter  n1 ≤ n2 : n1's stage is no later than n2's (write-after-read;
//                       same stage is fine because stage reads see pre-stage
//                       state) — an extension beyond the paper's model
//   Exclusive n1 ≠ n2 : commutative updates of the same field; distinct
//                       stages in either order
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/instances.hpp"

namespace p4all::analysis {

struct DepGraph {
    /// The instances under analysis (node members index into this).
    std::vector<Instance> instances;
    /// Node -> member instance indices. Singleton unless register-shared.
    std::vector<std::vector<int>> members;
    /// Instance index -> node id.
    std::vector<int> node_of;

    std::set<std::pair<int, int>> before;     // (earlier, later)
    std::set<std::pair<int, int>> not_after;  // (no-later, no-earlier)
    std::set<std::pair<int, int>> exclusive;  // unordered; stored lo<hi

    /// True when grouping/edges contradict (a node must precede itself, or
    /// two instances forced into one stage also need distinct stages).
    bool infeasible = false;
    std::string infeasible_reason;

    [[nodiscard]] int node_count() const noexcept { return static_cast<int>(members.size()); }
};

/// Builds the dependency graph over `instances` (with access summaries from
/// `target`'s cost model, which does not affect edges but records ALU use).
[[nodiscard]] DepGraph build_dep_graph(const ir::Program& prog, const target::TargetSpec& target,
                                       std::vector<Instance> instances);

/// Partitions the graph's exclusion edges into cliques plus leftover pairs:
/// each returned vector of ≥ 2 nodes is mutually exclusive (the common case:
/// iterated commutative updates form one clique per field). Used by the ILP
/// generator to emit one aggregated row per clique per stage — fewer
/// constraints and a strictly tighter LP relaxation than pairwise rows.
[[nodiscard]] std::vector<std::vector<int>> exclusion_cliques(const DepGraph& g);

/// The longest weighted Before-chain that determines the minimum stage
/// requirement. `stages` is the chain's weight (exclusion cliques weigh
/// |clique|); `nodes` lists one representative DepGraph node per step of the
/// chain, in schedule order. When the Before relation is cyclic, `cyclic` is
/// true and `nodes` instead holds the nodes of one offending cycle. Used by
/// the schedule-infeasible lint pass to point at the offending dependency
/// chain.
struct CriticalPath {
    int stages = 0;
    bool cyclic = false;
    std::vector<int> nodes;
};

[[nodiscard]] CriticalPath critical_path(const DepGraph& g);

/// A lower bound on the pipeline stages needed to schedule the graph:
/// the longest weighted path where exclusion cliques collapse to weight
/// |clique| (their members need that many distinct stages) and Before edges
/// advance stages. Returns a large sentinel when `g.infeasible` or the
/// Before relation is cyclic.
[[nodiscard]] int min_stage_requirement(const DepGraph& g);

/// Sentinel returned by min_stage_requirement for unschedulable graphs.
inline constexpr int kUnschedulable = 1 << 29;

}  // namespace p4all::analysis
