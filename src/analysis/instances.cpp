#include "analysis/instances.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace p4all::analysis {

using ir::Affine;
using ir::CallSite;
using ir::MetaRef;
using ir::PacketRef;
using ir::PrimKind;
using ir::PrimOp;
using ir::RegRef;
using ir::Value;

namespace {

/// Evaluates an operand's affine index at the action-parameter value.
MetaChunk chunk_of(const MetaRef& ref, std::int64_t param) {
    return {ref.field, ref.index.at(param)};
}

void note_read(AccessSummary& s, const MetaRef& ref, std::int64_t param) {
    s.meta[chunk_of(ref, param)].reads = true;
}

void note_value_read(AccessSummary& s, const Value& v, std::int64_t param) {
    if (const auto* m = std::get_if<MetaRef>(&v)) note_read(s, *m, param);
    // Packet fields are read-only inputs; affine immediates are constants.
}

void note_write(AccessSummary& s, const MetaRef& ref, std::int64_t param,
                std::optional<PrimKind> commutative) {
    ChunkAccess& a = s.meta[chunk_of(ref, param)];
    if (a.writes) {
        // A second write by the same instance: updates no longer commute as
        // a unit, so clear the marker.
        a.commutative_update.reset();
    } else {
        a.writes = true;
        a.commutative_update = commutative;
    }
}

}  // namespace

AccessSummary summarize(const ir::Program& prog, const target::TargetSpec& target,
                        const Instance& inst) {
    const CallSite& site = prog.flow.at(static_cast<std::size_t>(inst.call));
    const ir::Action& action = prog.action(site.action);
    const std::int64_t param = site.iter_arg.at(inst.iter);

    AccessSummary s;
    for (const ir::Cond& guard : site.guards) {
        // Guard operands are evaluated in the loop variable directly.
        const auto note_guard = [&](const Value& v) {
            if (const auto* m = std::get_if<MetaRef>(&v)) {
                s.meta[{m->field, m->index.at(inst.iter)}].reads = true;
            }
        };
        note_guard(guard.lhs);
        note_guard(guard.rhs);
    }

    for (const PrimOp& op : action.ops) {
        s.stateful_alus += target.stateful_cost(op.kind);
        s.stateless_alus += target.stateless_cost(op.kind);
        s.hash_units += target.hash_cost(op.kind);

        if (op.reg) {
            s.regs.push_back({op.reg->reg, op.reg->instance.at(param)});
        }
        if (op.modulus) {
            if (const auto* r = std::get_if<RegRef>(&*op.modulus)) {
                // The hash range is the register's element count; this does
                // not access register state, so it is not a RegChunk use.
                (void)r;
            }
        }
        if (op.reg_index) note_value_read(s, *op.reg_index, param);
        for (const Value& src : op.srcs) note_value_read(s, src, param);

        if (op.dst) {
            switch (op.kind) {
                case PrimKind::Min:
                case PrimKind::Max:
                    // dst = min(dst, src): read-modify-write that commutes
                    // with other updates of the same kind.
                    note_read(s, *op.dst, param);
                    note_write(s, *op.dst, param, op.kind);
                    break;
                case PrimKind::Add:
                case PrimKind::Sub: {
                    // dst = dst ± src is an accumulation: it commutes with
                    // other accumulations of the same kind (§4.2's "both add
                    // one to the same metadata field"). dst = src − dst does
                    // not commute, so only the first operand counts.
                    const auto* first = std::get_if<MetaRef>(&op.srcs.front());
                    const bool accumulates =
                        first != nullptr && chunk_of(*first, param) == chunk_of(*op.dst, param);
                    if (accumulates) {
                        note_write(s, *op.dst, param, op.kind);
                    } else {
                        note_write(s, *op.dst, param, std::nullopt);
                    }
                    break;
                }
                default:
                    note_write(s, *op.dst, param, std::nullopt);
                    break;
            }
        }
    }

    // Deduplicate register rows.
    std::sort(s.regs.begin(), s.regs.end());
    s.regs.erase(std::unique(s.regs.begin(), s.regs.end()), s.regs.end());
    return s;
}

std::vector<Instance> instantiate_symbol(const ir::Program& prog, ir::SymbolId v,
                                         std::int64_t k) {
    std::vector<Instance> out;
    for (std::size_t c = 0; c < prog.flow.size(); ++c) {
        if (prog.flow[c].loop_bound != v) continue;
        for (std::int64_t i = 0; i < k; ++i) out.push_back({static_cast<int>(c), i});
    }
    return out;
}

std::vector<Instance> instantiate_all(const ir::Program& prog,
                                      const std::vector<std::int64_t>& bounds) {
    std::vector<Instance> out;
    for (std::size_t c = 0; c < prog.flow.size(); ++c) {
        const CallSite& site = prog.flow[c];
        if (!site.elastic()) {
            out.push_back({static_cast<int>(c), 0});
            continue;
        }
        const std::int64_t k = bounds.at(static_cast<std::size_t>(site.loop_bound));
        for (std::int64_t i = 0; i < k; ++i) out.push_back({static_cast<int>(c), i});
    }
    return out;
}

bool precedes_in_program(const ir::Program& prog, const Instance& a, const Instance& b) {
    const int seq_a = prog.flow.at(static_cast<std::size_t>(a.call)).seq;
    const int seq_b = prog.flow.at(static_cast<std::size_t>(b.call)).seq;
    if (seq_a != seq_b) return seq_a < seq_b;
    return a.iter < b.iter;
}

}  // namespace p4all::analysis
