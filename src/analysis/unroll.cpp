#include "analysis/unroll.hpp"

#include <cmath>

namespace p4all::analysis {

namespace {

/// Scans single-variable assume constraints `a·sym + c ≤ 0` for bounds.
/// With a < 0 this implies sym ≥ c/(−a); with a > 0, sym ≤ −c/a.
void scan_assume_bounds(const ir::Program& prog, ir::SymbolId sym,
                        std::optional<std::int64_t>& lower, std::optional<std::int64_t>& upper) {
    for (const ir::PolyConstraint& pc : prog.assumes) {
        if (pc.op != ir::CmpOp::Le && pc.op != ir::CmpOp::Eq) continue;
        double a = 0.0;
        double c = 0.0;
        bool single = true;
        for (const ir::PolyTerm& t : pc.poly.terms()) {
            if (t.degree() == 0) {
                c = t.coeff;
            } else if (t.degree() == 1 && t.a == sym) {
                a = t.coeff;
            } else {
                single = false;
                break;
            }
        }
        if (!single || a == 0.0) continue;
        if (a < 0.0) {
            const auto bound = static_cast<std::int64_t>(std::ceil(c / -a - 1e-9));
            if (!lower || bound > *lower) lower = bound;
            if (pc.op == ir::CmpOp::Eq && (!upper || bound < *upper)) upper = bound;
        } else {
            const auto bound = static_cast<std::int64_t>(std::floor(-c / a + 1e-9));
            if (!upper || bound < *upper) upper = bound;
            if (pc.op == ir::CmpOp::Eq && (!lower || bound > *lower)) lower = bound;
        }
    }
}

/// Minimum register bits one iteration of loops over `v` must allocate:
/// every register matrix whose instance dimension is `v` adds one row of at
/// least max(1, assume-lower-bound(elems)) elements.
std::int64_t min_memory_bits_per_iteration(const ir::Program& prog, ir::SymbolId v) {
    std::int64_t bits = 0;
    for (const ir::RegisterArray& r : prog.registers) {
        if (!r.instances.symbolic() || r.instances.sym != v) continue;
        std::int64_t min_elems = 1;
        if (r.elems.symbolic()) {
            if (const auto lb = assume_lower_bound(prog, r.elems.sym)) {
                min_elems = std::max<std::int64_t>(1, *lb);
            }
        } else {
            min_elems = r.elems.literal;
        }
        bits += min_elems * r.width;
    }
    return bits;
}

/// Elastic PHV bits consumed by one iteration: metadata arrays sized by `v`.
std::int64_t phv_bits_per_iteration(const ir::Program& prog, ir::SymbolId v) {
    std::int64_t bits = 0;
    for (const ir::MetaField& f : prog.meta_fields) {
        if (f.is_array() && f.array->symbolic() && f.array->sym == v) bits += f.width;
    }
    return bits;
}

}  // namespace

std::optional<std::int64_t> assume_lower_bound(const ir::Program& prog, ir::SymbolId sym) {
    std::optional<std::int64_t> lower;
    std::optional<std::int64_t> upper;
    scan_assume_bounds(prog, sym, lower, upper);
    return lower;
}

std::optional<std::int64_t> assume_upper_bound(const ir::Program& prog, ir::SymbolId sym) {
    std::optional<std::int64_t> lower;
    std::optional<std::int64_t> upper;
    scan_assume_bounds(prog, sym, lower, upper);
    return upper;
}

UnrollResult unroll_bound(const ir::Program& prog, const target::TargetSpec& target,
                          ir::SymbolId v, const UnrollOptions& options) {
    const std::int64_t mem_per_iter =
        options.use_memory_criterion ? min_memory_bits_per_iteration(prog, v) : 0;
    const std::int64_t phv_per_iter =
        options.use_phv_criterion ? phv_bits_per_iteration(prog, v) : 0;
    const std::int64_t phv_budget = target.phv_bits - prog.fixed_phv_bits();

    std::optional<std::int64_t> assume_cap;
    if (options.use_assume_bounds) assume_cap = assume_upper_bound(prog, v);

    UnrollResult result;
    result.stopped_by = "cap";
    for (std::int64_t k = 1; k <= options.hard_cap; ++k) {
        if (assume_cap && k > *assume_cap) {
            result.stopped_by = "assume";
            return result;
        }
        if (mem_per_iter > 0 &&
            k * mem_per_iter > target.memory_bits * static_cast<std::int64_t>(target.stages)) {
            result.stopped_by = "memory";
            return result;
        }
        if (phv_per_iter > 0 && k * phv_per_iter > phv_budget) {
            result.stopped_by = "phv";
            return result;
        }

        const std::vector<Instance> instances = instantiate_symbol(prog, v, k);
        if (instances.empty()) break;  // no loops over v

        if (options.use_alu_criterion) {
            std::int64_t stateful = 0;
            std::int64_t stateless = 0;
            for (const Instance& inst : instances) {
                const AccessSummary s = summarize(prog, target, inst);
                stateful += s.stateful_alus;
                stateless += s.stateless_alus;
            }
            const std::int64_t stages = target.stages;
            if (stateful > static_cast<std::int64_t>(target.stateful_alus) * stages ||
                stateless > static_cast<std::int64_t>(target.stateless_alus) * stages ||
                stateful + stateless > target.total_alus()) {
                result.stopped_by = "alu";
                return result;
            }
        }
        if (options.use_path_criterion) {
            const DepGraph g = build_dep_graph(prog, target, instances);
            if (min_stage_requirement(g) > target.stages) {
                result.stopped_by = "path";
                return result;
            }
        }
        result.bound = k;
    }
    return result;
}

std::vector<std::int64_t> unroll_bounds_all(const ir::Program& prog,
                                            const target::TargetSpec& target,
                                            const UnrollOptions& options) {
    std::vector<std::int64_t> bounds(prog.symbols.size(), 0);
    for (const ir::SymbolId v : prog.iteration_symbols()) {
        bounds[static_cast<std::size_t>(v)] = unroll_bound(prog, target, v, options).bound;
    }
    return bounds;
}

}  // namespace p4all::analysis
