#include "analysis/depgraph.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace p4all::analysis {

namespace {

/// Disjoint-set forest for register-sharing node grouping.
class UnionFind {
public:
    explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int find(int x) {
        while (parent_[static_cast<std::size_t>(x)] != x) {
            parent_[static_cast<std::size_t>(x)] =
                parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
            x = parent_[static_cast<std::size_t>(x)];
        }
        return x;
    }

    void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

private:
    std::vector<int> parent_;
};

std::pair<int, int> unordered_pair(int a, int b) { return {std::min(a, b), std::max(a, b)}; }

}  // namespace

DepGraph build_dep_graph(const ir::Program& prog, const target::TargetSpec& target,
                         std::vector<Instance> instances) {
    DepGraph g;
    g.instances = std::move(instances);
    const int n = static_cast<int>(g.instances.size());

    std::vector<AccessSummary> summaries;
    summaries.reserve(static_cast<std::size_t>(n));
    for (const Instance& inst : g.instances) summaries.push_back(summarize(prog, target, inst));

    // Group instances sharing any register row.
    UnionFind uf(n);
    std::map<RegChunk, int> owner;
    for (int i = 0; i < n; ++i) {
        for (const RegChunk& rc : summaries[static_cast<std::size_t>(i)].regs) {
            const auto [it, inserted] = owner.emplace(rc, i);
            if (!inserted) uf.unite(i, it->second);
        }
    }
    std::map<int, int> root_to_node;
    g.node_of.resize(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
        const int root = uf.find(i);
        const auto [it, inserted] = root_to_node.emplace(root, static_cast<int>(g.members.size()));
        if (inserted) g.members.emplace_back();
        g.node_of[static_cast<std::size_t>(i)] = it->second;
        g.members[static_cast<std::size_t>(it->second)].push_back(i);
    }

    // Pairwise dependence classification per metadata chunk.
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            // Order by program order so edges point forward.
            int x = i;
            int y = j;
            if (!precedes_in_program(prog, g.instances[static_cast<std::size_t>(i)],
                                     g.instances[static_cast<std::size_t>(j)])) {
                std::swap(x, y);
            }
            const AccessSummary& sx = summaries[static_cast<std::size_t>(x)];
            const AccessSummary& sy = summaries[static_cast<std::size_t>(y)];
            const int nx = g.node_of[static_cast<std::size_t>(x)];
            const int ny = g.node_of[static_cast<std::size_t>(y)];

            for (const auto& [chunk, ax] : sx.meta) {
                const auto it = sy.meta.find(chunk);
                if (it == sy.meta.end()) continue;
                const ChunkAccess& ay = it->second;

                if (ax.writes && ay.writes && ax.commutative_update &&
                    ax.commutative_update == ay.commutative_update) {
                    if (nx == ny) {
                        g.infeasible = true;
                        g.infeasible_reason =
                            "instances sharing a register also need distinct stages for "
                            "commutative updates of the same metadata";
                    } else {
                        g.exclusive.insert(unordered_pair(nx, ny));
                    }
                    continue;
                }
                if (ax.writes && (ay.reads || ay.writes)) {
                    if (nx == ny) {
                        g.infeasible = true;
                        g.infeasible_reason =
                            "instances sharing a register have a data dependency between them";
                    } else {
                        g.before.insert({nx, ny});
                    }
                    continue;
                }
                if (ax.reads && ay.writes) {
                    if (nx != ny) g.not_after.insert({nx, ny});
                }
            }
        }
    }

    // An edge in both directions means contradiction.
    for (const auto& [a, b] : g.before) {
        if (g.before.count({b, a}) != 0) {
            g.infeasible = true;
            g.infeasible_reason = "cyclic precedence between two nodes";
        }
    }
    return g;
}

namespace {

/// Checks whether the exclusion-connected component `comp` is a clique in
/// the exclusion relation (the common case: iterated commutative updates).
bool is_exclusion_clique(const DepGraph& g, const std::vector<int>& comp) {
    for (std::size_t a = 0; a < comp.size(); ++a) {
        for (std::size_t b = a + 1; b < comp.size(); ++b) {
            if (g.exclusive.count({std::min(comp[a], comp[b]), std::max(comp[a], comp[b])}) == 0) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace

std::vector<std::vector<int>> exclusion_cliques(const DepGraph& g) {
    // Greedy clique cover over the exclusion relation: grow a clique from
    // each unassigned endpoint; any edge not covered by a grown clique is
    // emitted as a 2-clique.
    std::vector<std::vector<int>> cliques;
    std::set<std::pair<int, int>> covered;
    std::set<int> assigned;
    const auto adjacent = [&](int a, int b) {
        return g.exclusive.count({std::min(a, b), std::max(a, b)}) != 0;
    };
    for (const auto& [a, b] : g.exclusive) {
        if (assigned.count(a) != 0 || assigned.count(b) != 0) continue;
        std::vector<int> clique{a, b};
        for (int v = 0; v < g.node_count(); ++v) {
            if (v == a || v == b || assigned.count(v) != 0) continue;
            const bool joins = std::all_of(clique.begin(), clique.end(),
                                           [&](int u) { return adjacent(u, v); });
            if (joins) clique.push_back(v);
        }
        for (std::size_t i = 0; i < clique.size(); ++i) {
            for (std::size_t j = i + 1; j < clique.size(); ++j) {
                covered.insert({std::min(clique[i], clique[j]), std::max(clique[i], clique[j])});
            }
        }
        for (const int v : clique) assigned.insert(v);
        cliques.push_back(std::move(clique));
    }
    for (const auto& edge : g.exclusive) {
        if (covered.count(edge) == 0) cliques.push_back({edge.first, edge.second});
    }
    return cliques;
}

CriticalPath critical_path(const DepGraph& g) {
    CriticalPath result;
    const int n = g.node_count();
    if (n == 0) return result;

    // Collapse exclusion components into super-nodes. A clique of size k
    // needs k distinct stages, so it contributes weight k to any path
    // through it; a non-clique component conservatively (soundly) weighs 1.
    UnionFind uf(n);
    for (const auto& [a, b] : g.exclusive) uf.unite(a, b);
    std::map<int, int> root_to_super;
    std::vector<int> super_of(static_cast<std::size_t>(n));
    std::vector<std::vector<int>> super_members;
    for (int v = 0; v < n; ++v) {
        const int root = uf.find(v);
        const auto [it, inserted] =
            root_to_super.emplace(root, static_cast<int>(super_members.size()));
        if (inserted) super_members.emplace_back();
        super_of[static_cast<std::size_t>(v)] = it->second;
        super_members[static_cast<std::size_t>(it->second)].push_back(v);
    }
    const int sn = static_cast<int>(super_members.size());
    std::vector<int> weight(static_cast<std::size_t>(sn), 1);
    for (int s = 0; s < sn; ++s) {
        const auto& comp = super_members[static_cast<std::size_t>(s)];
        if (comp.size() > 1 && is_exclusion_clique(g, comp)) {
            weight[static_cast<std::size_t>(s)] = static_cast<int>(comp.size());
        }
    }

    // Super-node DAG over Before edges; longest weighted path by topo DP.
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(sn));
    std::vector<std::vector<int>> pred(static_cast<std::size_t>(sn));
    std::vector<int> indeg(static_cast<std::size_t>(sn), 0);
    std::set<std::pair<int, int>> super_edges;
    for (const auto& [a, b] : g.before) {
        const int sa = super_of[static_cast<std::size_t>(a)];
        const int sb = super_of[static_cast<std::size_t>(b)];
        if (sa == sb) {
            // A precedence edge inside an exclusion component still fits (the
            // component occupies |comp| consecutive-ish stages), as long as it
            // is acyclic within the component; the clique weight already
            // accounts for the needed stages.
            continue;
        }
        if (super_edges.insert({sa, sb}).second) {
            succ[static_cast<std::size_t>(sa)].push_back(sb);
            pred[static_cast<std::size_t>(sb)].push_back(sa);
            ++indeg[static_cast<std::size_t>(sb)];
        }
    }

    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(sn));
    std::vector<int> stack;
    for (int s = 0; s < sn; ++s) {
        if (indeg[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
    }
    while (!stack.empty()) {
        const int s = stack.back();
        stack.pop_back();
        order.push_back(s);
        for (const int t : succ[static_cast<std::size_t>(s)]) {
            if (--indeg[static_cast<std::size_t>(t)] == 0) stack.push_back(t);
        }
    }
    if (static_cast<int>(order.size()) != sn) {
        // Cyclic Before relation. Every super-node left out of the topo
        // order has a predecessor that is also left out, so walking
        // predecessors from any of them must revisit a node — that revisit
        // closes one offending cycle.
        result.cyclic = true;
        result.stages = kUnschedulable;
        std::vector<bool> in_order(static_cast<std::size_t>(sn), false);
        for (const int s : order) in_order[static_cast<std::size_t>(s)] = true;
        int cur = -1;
        for (int s = 0; s < sn; ++s) {
            if (!in_order[static_cast<std::size_t>(s)]) {
                cur = s;
                break;
            }
        }
        std::vector<int> trail;
        std::vector<int> pos(static_cast<std::size_t>(sn), -1);
        while (pos[static_cast<std::size_t>(cur)] < 0) {
            pos[static_cast<std::size_t>(cur)] = static_cast<int>(trail.size());
            trail.push_back(cur);
            for (const int p : pred[static_cast<std::size_t>(cur)]) {
                if (!in_order[static_cast<std::size_t>(p)]) {
                    cur = p;
                    break;
                }
            }
        }
        // trail[pos[cur]..] is the cycle in reverse edge order; report it
        // following the Before direction.
        for (std::size_t i = trail.size();
             i-- > static_cast<std::size_t>(pos[static_cast<std::size_t>(cur)]);) {
            result.nodes.push_back(super_members[static_cast<std::size_t>(trail[i])].front());
        }
        return result;
    }

    std::vector<int> longest(static_cast<std::size_t>(sn), 0);
    std::vector<int> prev(static_cast<std::size_t>(sn), -1);
    int best = 0;
    int best_end = -1;
    for (const int s : order) {
        longest[static_cast<std::size_t>(s)] += weight[static_cast<std::size_t>(s)];
        if (longest[static_cast<std::size_t>(s)] > best) {
            best = longest[static_cast<std::size_t>(s)];
            best_end = s;
        }
        for (const int t : succ[static_cast<std::size_t>(s)]) {
            if (longest[static_cast<std::size_t>(s)] > longest[static_cast<std::size_t>(t)]) {
                longest[static_cast<std::size_t>(t)] = longest[static_cast<std::size_t>(s)];
                prev[static_cast<std::size_t>(t)] = s;
            }
        }
    }
    result.stages = best;
    for (int s = best_end; s != -1; s = prev[static_cast<std::size_t>(s)]) {
        result.nodes.push_back(super_members[static_cast<std::size_t>(s)].front());
    }
    std::reverse(result.nodes.begin(), result.nodes.end());
    return result;
}

int min_stage_requirement(const DepGraph& g) {
    if (g.infeasible) return kUnschedulable;
    const CriticalPath path = critical_path(g);
    return path.cyclic ? kUnschedulable : path.stages;
}

}  // namespace p4all::analysis
