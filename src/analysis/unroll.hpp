// Upper bounds for loop unrolling (§4.2).
//
// For each iteration-count symbolic value v, the compiler unrolls the loops
// bounded by v for increasing K and stops when the unrolled code provably
// cannot fit the target:
//   (1) the minimum stage requirement of G_v exceeds S, or
//   (2) the ALUs needed by all instances exceed the target's ALUs.
// The largest feasible K is the ILP's unroll bound U_v. Two further sound
// criteria are available as extensions (ablated in bench/ablate_unroll):
//   (3) minimum register memory of K iterations exceeds M·S,
//   (4) elastic PHV bits of K iterations exceed P − P_fixed,
// plus direct upper bounds extracted from `assume` statements.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/depgraph.hpp"
#include "ir/program.hpp"
#include "target/spec.hpp"

namespace p4all::analysis {

struct UnrollOptions {
    bool use_path_criterion = true;
    bool use_alu_criterion = true;
    bool use_memory_criterion = true;   // extension
    bool use_phv_criterion = true;      // extension
    bool use_assume_bounds = true;      // extension
    std::int64_t hard_cap = 1024;       // safety net for degenerate programs
};

struct UnrollResult {
    std::int64_t bound = 0;
    /// Which criterion terminated the search ("path", "alu", "memory",
    /// "phv", "assume", or "cap").
    std::string stopped_by;
};

/// Computes the unroll upper bound for iteration symbol `v`.
[[nodiscard]] UnrollResult unroll_bound(const ir::Program& prog, const target::TargetSpec& target,
                                        ir::SymbolId v, const UnrollOptions& options = {});

/// Bounds for every symbol, indexed by SymbolId (0 for non-iteration
/// symbols, which are sized by the ILP rather than unrolled).
[[nodiscard]] std::vector<std::int64_t> unroll_bounds_all(const ir::Program& prog,
                                                          const target::TargetSpec& target,
                                                          const UnrollOptions& options = {});

/// Largest c with `sym >= c` implied by a single-variable assume constraint;
/// disengaged if none. Used for the memory criterion and by the ILP to
/// bound element-count variables.
[[nodiscard]] std::optional<std::int64_t> assume_lower_bound(const ir::Program& prog,
                                                             ir::SymbolId sym);

/// Smallest c with `sym <= c` implied by a single-variable assume
/// constraint; disengaged if none.
[[nodiscard]] std::optional<std::int64_t> assume_upper_bound(const ir::Program& prog,
                                                             ir::SymbolId sym);

}  // namespace p4all::analysis
