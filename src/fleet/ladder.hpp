// The graceful-degradation ladder: shrink before you shed.
//
// When a switch dies, its tenants must fit into the survivors' SRAM. The
// fleet controller prefers serving every tenant with *smaller* elastic
// structures over dropping any tenant entirely, so before a tenant is shed
// it descends a ladder of degraded assume profiles: level L halves every
// power-of-two `assume X == N;` bound L times, clamped at a floor. Because
// the app drivers size their structures on the pow2 lattice (drivers.cpp),
// every rung compiles to a strictly-not-larger layout and every descent
// migrates exactly (fold-down), so degradation loses capacity head-room but
// never loses state. Small structural pins (row/way counts, anything at or
// below the floor, non-powers-of-two) are never touched — shrinking a
// count-min sketch from 2 rows to 1 would change its error model, not just
// its size.
//
// `layout_bits` is the capacity coin both sides of the bargain are priced
// in: the sum of placed register bits of a compiled layout, matched against
// SwitchSpec::capacity_bits.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/compiler.hpp"

namespace p4all::fleet {

/// Total placed register bits of a compiled layout — the SRAM footprint a
/// tenant charges against its switch's capacity_bits.
[[nodiscard]] std::int64_t layout_bits(const compiler::CompileResult& compiled);

/// Rewrites an assume profile (drivers.cpp `assume X == N;` lines) down to
/// degradation level `level`: every power-of-two value strictly greater
/// than `floor_value` is halved `level` times, clamped at the floor. Level
/// 0 (and non-positive levels) return the profile unchanged; lines that are
/// not pow2 assume bindings pass through untouched.
[[nodiscard]] std::string shrink_profile(const std::string& profile, int level,
                                         std::int64_t floor_value);

/// True when descending from `level` to `level + 1` would change nothing —
/// every shrinkable bound is already at the floor, so the ladder is
/// exhausted and the only remaining degradation is shedding the tenant.
[[nodiscard]] bool ladder_exhausted(const std::string& profile, int level,
                                    std::int64_t floor_value);

}  // namespace p4all::fleet
