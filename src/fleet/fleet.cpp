#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "fleet/ladder.hpp"
#include "runtime/snapshot.hpp"
#include "support/error.hpp"
#include "support/faultpoint.hpp"
#include "support/json.hpp"

namespace p4all::fleet {

namespace {

namespace fs = std::filesystem;
using support::Errc;
using support::Error;

/// Free-bits sentinel for capacity_bits == 0: large enough to never
/// constrain, small enough that subtraction cannot overflow.
constexpr std::int64_t kUnbounded = std::numeric_limits<std::int64_t>::max() / 4;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

FleetEventKind kind_from_name(const std::string& name) {
    for (int k = 0; k <= static_cast<int>(FleetEventKind::Recovered); ++k) {
        const auto kind = static_cast<FleetEventKind>(k);
        if (name == kind_name(kind)) return kind;
    }
    throw Error(Errc::FleetJournalError, "unknown fleet event kind '" + name + "'");
}

}  // namespace

const char* kind_name(FleetEventKind kind) {
    switch (kind) {
        case FleetEventKind::Admit: return "admit";
        case FleetEventKind::SwitchDead: return "switch-dead";
        case FleetEventKind::Rejoin: return "rejoin";
        case FleetEventKind::Failover: return "failover";
        case FleetEventKind::FailoverFailed: return "failover-failed";
        case FleetEventKind::BreakerTrip: return "breaker-trip";
        case FleetEventKind::Degrade: return "degrade";
        case FleetEventKind::Restore: return "restore";
        case FleetEventKind::Shed: return "shed";
        case FleetEventKind::Readmit: return "readmit";
        case FleetEventKind::RouteDrop: return "route-drop";
        case FleetEventKind::Recovered: return "recovered";
    }
    return "?";
}

std::string FleetEvent::to_string() const {
    std::string out = "#" + std::to_string(seq) + " " + kind_name(kind);
    if (!tenant.empty()) out += " " + tenant;
    if (!where.empty()) out += "@" + where;
    out += " L" + std::to_string(level);
    if (!detail.empty()) out += ": " + detail;
    return out;
}

// ---------------------------------------------------------------------------
// construction

FleetController::FleetController(FleetOptions options, std::vector<SwitchSpec> switches,
                                 std::vector<TenantSpec> tenants)
    : options_(std::move(options)), detector_(options_.health) {
    validate_and_seed(switches, tenants);
    // A fresh controller starts a fresh decision log; the tenants' own
    // journals are what carry state across fleet generations.
    std::error_code ec;
    fs::remove(log_path(), ec);
    for (auto& [name, tenant] : tenants_) {
        place_tenant(tenant, FleetEventKind::Admit, "initial placement");
    }
}

FleetController::FleetController(RecoverTag, FleetOptions options,
                                 std::vector<SwitchSpec> switches,
                                 std::vector<TenantSpec> tenants)
    : options_(std::move(options)), detector_(options_.health) {
    validate_and_seed(switches, tenants);
}

FleetController::~FleetController() = default;

void FleetController::validate_and_seed(std::vector<SwitchSpec>& switches,
                                        std::vector<TenantSpec>& tenants) {
    if (options_.journal_root.empty()) {
        throw Error(Errc::FleetConfig, "FleetOptions::journal_root must be set");
    }
    if (switches.empty()) {
        throw Error(Errc::FleetConfig, "a fleet needs at least one switch");
    }
    if (options_.max_degrade_level < 0) options_.max_degrade_level = 0;
    for (auto& spec : switches) {
        if (spec.name.empty()) throw Error(Errc::FleetConfig, "switch name must be non-empty");
        if (spec.capacity_bits < 0) {
            throw Error(Errc::FleetConfig,
                        "switch '" + spec.name + "' has negative capacity_bits");
        }
        if (!switches_.emplace(spec.name, Switch{spec, CircuitBreaker(options_.breaker), true})
                 .second) {
            throw Error(Errc::FleetConfig, "duplicate switch name '" + spec.name + "'");
        }
    }
    for (auto& spec : tenants) {
        if (spec.name.empty()) throw Error(Errc::FleetConfig, "tenant name must be non-empty");
        if (tenants_.count(spec.name) != 0) {
            throw Error(Errc::FleetConfig, "duplicate tenant name '" + spec.name + "'");
        }
        Tenant tenant;
        tenant.spec = spec;
        try {
            tenant.driver = runtime::make_driver(spec.app);
        } catch (const std::exception& e) {
            throw Error(Errc::FleetConfig,
                        "tenant '" + spec.name + "': unknown app '" + spec.app + "'");
        }
        tenants_.emplace(spec.name, std::move(tenant));
    }
    fs::create_directories(options_.journal_root);
    // Stable per-tenant jitter streams: the tenant's rank in name order, so
    // the delay sequences are a function of the fleet spec alone.
    std::uint64_t rank = 0;
    for (auto& [name, tenant] : tenants_) {
        tenant.stream = rank++;
        fs::create_directories(options_.journal_root + "/" + name);
    }
}

// ---------------------------------------------------------------------------
// small helpers

runtime::RuntimeOptions FleetController::tenant_options(const Tenant& tenant) const {
    runtime::RuntimeOptions opts = options_.runtime;
    opts.journal_dir = options_.journal_root + "/" + tenant.spec.name;
    // One shared snapshot_path would make tenants clobber each other; the
    // per-epoch journal snapshots already persist everything.
    opts.snapshot_path.clear();
    return opts;
}

runtime::ProfileFn FleetController::wrapped_profile(const Tenant& tenant) const {
    const runtime::ProfileFn base = tenant.driver.profile;
    const std::shared_ptr<int> level = tenant.level;
    const std::int64_t floor_value = options_.degrade_floor;
    return [base, level, floor_value](const workload::Trace& window) {
        const std::string profile = base ? base(window) : std::string{};
        return shrink_profile(profile, *level, floor_value);
    };
}

std::int64_t FleetController::free_bits(const Switch& sw) const {
    const std::int64_t capacity =
        sw.spec.capacity_bits == 0 ? kUnbounded : sw.spec.capacity_bits;
    std::int64_t used = 0;
    for (const auto& [name, tenant] : tenants_) {
        if (tenant.home == sw.spec.name) used += tenant.bits;
    }
    return capacity - used;
}

std::vector<std::string> FleetController::candidates() const {
    std::vector<std::pair<std::int64_t, std::string>> ranked;
    for (const auto& [name, sw] : switches_) {
        if (sw.alive) ranked.emplace_back(free_bits(sw), name);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    });
    std::vector<std::string> names;
    names.reserve(ranked.size());
    for (auto& [free, name] : ranked) names.push_back(std::move(name));
    return names;
}

FleetController::Tenant& FleetController::tenant_ref(const std::string& name) {
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) throw Error(Errc::FleetConfig, "unknown tenant '" + name + "'");
    return it->second;
}

const FleetController::Tenant& FleetController::tenant_ref(const std::string& name) const {
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) throw Error(Errc::FleetConfig, "unknown tenant '" + name + "'");
    return it->second;
}

std::string FleetController::log_path() const { return options_.journal_root + "/fleet.log"; }

void FleetController::log_event(FleetEventKind kind, const std::string& tenant,
                                const std::string& where, int level,
                                const std::string& detail) {
    FleetEvent event;
    event.seq = ++seq_;
    event.kind = kind;
    event.tenant = tenant;
    event.where = where;
    event.level = level;
    event.detail = detail;

    support::Json line = support::Json::object();
    line.set("seq", static_cast<std::int64_t>(event.seq));
    line.set("kind", kind_name(kind));
    line.set("tenant", event.tenant);
    line.set("where", event.where);
    line.set("level", event.level);
    line.set("detail", event.detail);
    std::ofstream out(log_path(), std::ios::app);
    out << line.dump() << '\n';
    out.flush();
    if (!out) {
        throw Error(Errc::FleetJournalError,
                    "cannot append to fleet log '" + log_path() + "'");
    }
    events_.push_back(std::move(event));
}

void FleetController::refresh_bits(Tenant& tenant) {
    if (!tenant.rt || tenant.rt->epoch() == tenant.epoch_seen) return;
    tenant.bits = layout_bits(tenant.rt->compiled());
    tenant.epoch_seen = tenant.rt->epoch();
    tenant.bits_at_level[*tenant.level] = tenant.bits;
}

// ---------------------------------------------------------------------------
// placement

bool FleetController::try_place_on(Tenant& tenant, Switch& sw, FleetEventKind kind,
                                   const std::string& why) {
    if (!sw.breaker.allow()) {
        log_event(FleetEventKind::BreakerTrip, tenant.spec.name, sw.spec.name, *tenant.level,
                  Error(Errc::BreakerOpen, "install refused: breaker " +
                                               fleet::to_string(sw.breaker.state()) + " on '" +
                                               sw.spec.name + "'")
                      .what());
        return false;
    }

    std::unique_ptr<runtime::ElasticRuntime> rt;
    bool fits = false;
    std::int64_t final_bits = 0;
    const support::Deadline budget =
        support::Deadline::after_seconds(options_.failover_budget_seconds);
    const support::SleepFn record_sleep = [this](double ms) { backoff_delay_ms_ += ms; };

    const support::RetryResult result = support::retry_with_backoff(
        options_.backoff, budget,
        [&](int /*attempt*/) {
            // Replays the tenant's own journal: epoch, assume profile, and
            // register state all come back exactly as last committed.
            rt = runtime::ElasticRuntime::recover(tenant.spec.name, tenant.driver.source,
                                                  tenant_options(tenant),
                                                  wrapped_profile(tenant));
            std::int64_t bits = layout_bits(rt->compiled());
            tenant.bits_at_level[*tenant.level] = bits;
            while (bits > free_bits(sw)) {
                if (*tenant.level >= options_.max_degrade_level) {
                    fits = false;
                    return true;  // deterministic does-not-fit; not a failure
                }
                ++*tenant.level;
                const runtime::SwapEvent swap =
                    rt->reconfigure("fleet: degrade to L" + std::to_string(*tenant.level));
                if (!swap.committed) {
                    --*tenant.level;
                    throw Error(Errc::FailoverFailed, "degrade rolled back: " + swap.detail);
                }
                const std::int64_t shrunk = layout_bits(rt->compiled());
                if (shrunk >= bits) {
                    // Ladder stalled at the floor: the committed epoch has
                    // the same layout, so reverting the level keeps the
                    // in-memory level equal to what the event log replays.
                    --*tenant.level;
                    fits = false;
                    return true;
                }
                tenant.bits_at_level[*tenant.level] = shrunk;
                log_event(FleetEventKind::Degrade, tenant.spec.name, sw.spec.name,
                          *tenant.level,
                          "profile shrunk " + std::to_string(bits) + " -> " +
                              std::to_string(shrunk) + " bits");
                bits = shrunk;
            }
            if (support::fault_fires("fleet.swap")) {
                rt.reset();
                throw Error(Errc::SwitchUnavailable,
                            "install aborted: fleet.swap fired at commit on '" +
                                sw.spec.name + "'");
            }
            fits = true;
            final_bits = bits;
            return true;
        },
        record_sleep, tenant.stream);

    if (!result.succeeded) {
        sw.breaker.record_failure();
        log_event(FleetEventKind::FailoverFailed, tenant.spec.name, sw.spec.name,
                  *tenant.level,
                  Error(Errc::FailoverFailed,
                        "install failed after " + std::to_string(result.attempts) +
                            " attempts: " + result.last_error)
                      .what());
        return false;
    }
    sw.breaker.record_success();
    if (!fits) {
        rt.reset();  // healthy switch, just too small even degraded
        return false;
    }
    tenant.rt = std::move(rt);
    tenant.home = sw.spec.name;
    tenant.bits = final_bits;
    tenant.epoch_seen = tenant.rt->epoch();
    log_event(kind, tenant.spec.name, sw.spec.name, *tenant.level, why);
    return true;
}

bool FleetController::make_room(Switch& sw, std::int64_t need, const std::string& incoming) {
    std::set<std::string> stalled;  // residents proven at the ladder floor
    bool progressed = true;
    while (free_bits(sw) < need && progressed) {
        progressed = false;
        // Largest resident that can still descend, ties broken by name.
        std::vector<Tenant*> residents;
        for (auto& [name, tenant] : tenants_) {
            if (tenant.home == sw.spec.name && *tenant.level < options_.max_degrade_level &&
                stalled.count(name) == 0) {
                residents.push_back(&tenant);
            }
        }
        std::sort(residents.begin(), residents.end(), [](const Tenant* a, const Tenant* b) {
            if (a->bits != b->bits) return a->bits > b->bits;
            return a->spec.name < b->spec.name;
        });
        for (Tenant* resident : residents) {
            const std::int64_t before = resident->bits;
            ++*resident->level;
            const runtime::SwapEvent swap = resident->rt->reconfigure(
                "fleet: degrade to make room for " + incoming);
            if (!swap.committed) {
                --*resident->level;
                continue;
            }
            resident->bits = layout_bits(resident->rt->compiled());
            resident->epoch_seen = resident->rt->epoch();
            if (resident->bits >= before) {
                // Stalled at the floor: same layout committed, so revert
                // the level to keep the event log replayable.
                --*resident->level;
                stalled.insert(resident->spec.name);
                continue;
            }
            resident->bits_at_level[*resident->level] = resident->bits;
            log_event(FleetEventKind::Degrade, resident->spec.name, sw.spec.name,
                      *resident->level,
                      "made room for " + incoming + ": " + std::to_string(before) + " -> " +
                          std::to_string(resident->bits) + " bits");
            progressed = true;
            break;  // re-evaluate free space before squeezing further
        }
    }
    return free_bits(sw) >= need;
}

bool FleetController::place_tenant(Tenant& tenant, FleetEventKind kind,
                                   const std::string& why) {
    for (const std::string& name : candidates()) {
        if (try_place_on(tenant, switches_.at(name), kind, why)) return true;
    }
    // Nothing fit even with the incoming tenant fully degraded: squeeze
    // residents, emptiest survivor first, until one of them can host it —
    // shedding while ANY switch could still make room would lose a tenant
    // the fleet has capacity for.
    const std::vector<std::string> ranked = candidates();
    if (!tenant.bits_at_level.empty()) {
        const std::int64_t need = tenant.bits_at_level.rbegin()->second;  // deepest footprint
        for (const std::string& name : ranked) {
            Switch& sw = switches_.at(name);
            if (make_room(sw, need, tenant.spec.name) && try_place_on(tenant, sw, kind, why)) {
                return true;
            }
        }
    }
    tenant.rt.reset();
    tenant.home.clear();
    tenant.bits = 0;
    const char* cause = ranked.empty() ? "no live switch available"
                                       : "degradation ladder exhausted on every live switch";
    log_event(FleetEventKind::Shed, tenant.spec.name, "", *tenant.level,
              Error(Errc::CapacityExhausted,
                    std::string(cause) + "; tenant parked (journal retained)")
                  .what());
    return false;
}

// ---------------------------------------------------------------------------
// supervision

bool FleetController::heartbeat_missed(const std::string& name) const {
    const auto start = std::chrono::steady_clock::now();
    // The fault point stands in for the heartbeat exchange: a default fire
    // is a dropped probe, `delay=<ms>` is a slow answer (measured against
    // the deadline below), `crash` is the chaos harness's kill site.
    const bool dropped = support::fault_fires("fleet.heartbeat");
    const double latency = elapsed_ms(start);
    if (dropped) return true;
    if (latency > options_.health.heartbeat_deadline_ms) return true;
    for (const auto& [tn, tenant] : tenants_) {
        if (tenant.home == name && tenant.rt && !tenant.rt->heartbeat().serving) return true;
    }
    return false;
}

void FleetController::tick() {
    for (auto& [name, sw] : switches_) sw.breaker.tick();
    std::vector<std::string> died;
    for (auto& [name, sw] : switches_) {
        if (!sw.alive) continue;
        const bool missed = heartbeat_missed(name);
        if (detector_.note(name, missed) == Liveness::Dead) died.push_back(name);
    }
    for (const std::string& name : died) {
        on_switch_dead(name, "heartbeat: " + std::to_string(options_.health.miss_threshold) +
                                 " consecutive misses");
    }
}

void FleetController::on_switch_dead(const std::string& name, const std::string& why) {
    Switch& sw = switches_.at(name);
    if (!sw.alive) return;
    sw.alive = false;
    detector_.declare_dead(name);
    log_event(FleetEventKind::SwitchDead, "", name, 0,
              Error(Errc::SwitchUnavailable, why).what());
    // The runtime objects die with the switch; the journals do not. Clear
    // every evacuee first so failover capacity accounting is correct, then
    // re-place in name order.
    std::vector<std::string> evacuees;
    for (auto& [tn, tenant] : tenants_) {
        if (tenant.home == name) {
            tenant.rt.reset();
            tenant.home.clear();
            tenant.bits = 0;
            evacuees.push_back(tn);
        }
    }
    for (const std::string& tn : evacuees) {
        place_tenant(tenants_.at(tn), FleetEventKind::Failover, "evacuated from " + name);
    }
}

void FleetController::kill_switch(const std::string& name) {
    if (switches_.count(name) == 0) {
        throw Error(Errc::FleetConfig, "unknown switch '" + name + "'");
    }
    on_switch_dead(name, "operator kill");
}

void FleetController::revive_switch(const std::string& name) {
    const auto it = switches_.find(name);
    if (it == switches_.end()) {
        throw Error(Errc::FleetConfig, "unknown switch '" + name + "'");
    }
    Switch& sw = it->second;
    if (sw.alive) return;
    sw.alive = true;
    sw.breaker = CircuitBreaker(options_.breaker);
    detector_.reset(name);
    log_event(FleetEventKind::Rejoin, "", name, 0, "switch rejoined");
    restore_capacity();
}

void FleetController::restore_capacity() {
    // Serving a parked tenant beats restoring head-room: readmits first.
    for (auto& [name, tenant] : tenants_) {
        if (!tenant.rt) {
            place_tenant(tenant, FleetEventKind::Readmit, "capacity returned");
        }
    }
    // Then lift degraded tenants one rung at a time while the head-room
    // holds, round-robin so no tenant monopolizes the returned capacity.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto& [name, tenant] : tenants_) {
            if (!tenant.rt || *tenant.level <= 0) continue;
            Switch& sw = switches_.at(tenant.home);
            const std::int64_t headroom = free_bits(sw) + tenant.bits;
            const auto cached = tenant.bits_at_level.find(*tenant.level - 1);
            if (cached != tenant.bits_at_level.end() && cached->second > headroom) continue;
            const int old_level = *tenant.level;
            *tenant.level = old_level - 1;
            const runtime::SwapEvent swap =
                tenant.rt->reconfigure("fleet: restore to L" + std::to_string(*tenant.level));
            if (!swap.committed) {
                *tenant.level = old_level;
                continue;
            }
            const std::int64_t grown = layout_bits(tenant.rt->compiled());
            if (grown > headroom) {
                // The window drifted since the cached footprint: fold back.
                *tenant.level = old_level;
                tenant.rt->reconfigure("fleet: re-degrade (no head-room)");
                refresh_bits(tenant);
                continue;
            }
            tenant.bits = grown;
            tenant.epoch_seen = tenant.rt->epoch();
            tenant.bits_at_level[*tenant.level] = grown;
            log_event(FleetEventKind::Restore, name, tenant.home, *tenant.level,
                      "profile restored to " + std::to_string(grown) + " bits");
            progressed = true;
        }
        if (progressed) continue;
        // No tenant could lift in place. If a roomier switch could host a
        // degraded tenant's next rung, move the tenant there (its journal
        // carries the state); the next round lifts it in its new home. One
        // move per round keeps the accounting simple and terminating.
        for (auto& [name, tenant] : tenants_) {
            if (!tenant.rt || *tenant.level <= 0) continue;
            const auto cached = tenant.bits_at_level.find(*tenant.level - 1);
            if (cached == tenant.bits_at_level.end()) continue;
            const std::int64_t need = cached->second;
            if (need <= free_bits(switches_.at(tenant.home)) + tenant.bits) continue;
            bool roomier = false;
            for (const std::string& cand : candidates()) {
                if (cand != tenant.home && free_bits(switches_.at(cand)) >= need) {
                    roomier = true;
                    break;
                }
            }
            if (!roomier) continue;
            tenant.rt.reset();
            tenant.home.clear();
            tenant.bits = 0;
            if (place_tenant(tenant, FleetEventKind::Failover,
                             "rebalanced to restore head-room")) {
                progressed = true;
            }
            break;
        }
        if (progressed) continue;
        // Still stuck: no degraded tenant can lift in place or by moving
        // itself (its next rung fits no switch whole). Evict a co-resident
        // instead — moving a neighbor at its *current* profile to a switch
        // with spare room hands the stuck tenant the head-room its next
        // rung needs. One eviction per round; the lift lands next round.
        for (auto& [name, tenant] : tenants_) {
            if (progressed) break;
            if (!tenant.rt || *tenant.level <= 0) continue;
            const auto cached = tenant.bits_at_level.find(*tenant.level - 1);
            if (cached == tenant.bits_at_level.end()) continue;
            const std::int64_t need = cached->second;
            Switch& home = switches_.at(tenant.home);
            for (auto& [co_name, co] : tenants_) {
                if (co_name == name || !co.rt || co.home != tenant.home) continue;
                if (free_bits(home) + co.bits + tenant.bits < need) continue;  // won't help
                for (const std::string& cand : candidates()) {
                    if (cand == tenant.home || free_bits(switches_.at(cand)) < co.bits) {
                        continue;
                    }
                    const std::string old_home = co.home;
                    co.rt.reset();
                    co.home.clear();
                    co.bits = 0;
                    if (try_place_on(co, switches_.at(cand), FleetEventKind::Failover,
                                     "evicted to free head-room for " + name)) {
                        progressed = true;
                    } else {
                        // Breaker/fault refused the move: put the neighbor
                        // back (or anywhere) rather than losing it.
                        place_tenant(co, FleetEventKind::Failover,
                                     "restored after a refused eviction from " + old_home);
                    }
                    break;
                }
                if (progressed) break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// data path

void FleetController::step(const std::string& tenant_name, std::uint64_t key) {
    Tenant& tenant = tenant_ref(tenant_name);
    if (!tenant.rt) {
        ++packets_dropped_;  // parked: no capacity anywhere, packet is lost
        return;
    }
    if (support::fault_fires("fleet.route")) {
        // Transient route failure: resend with backoff (virtual time).
        support::Backoff backoff(options_.backoff, tenant.stream + 1000);
        bool delivered = false;
        while (true) {
            backoff_delay_ms_ += backoff.next_delay_ms();
            ++route_retries_;
            if (!support::fault_fires("fleet.route")) {
                delivered = true;
                break;
            }
            if (backoff.exhausted()) break;
        }
        if (!delivered) {
            ++packets_dropped_;
            log_event(FleetEventKind::RouteDrop, tenant_name, tenant.home, *tenant.level,
                      "packet dropped after " + std::to_string(backoff.delays() + 1) +
                          " route attempts");
            return;
        }
    }
    tenant.driver.step(*tenant.rt, key);
    ++packets_routed_;
    refresh_bits(tenant);  // drift may have committed a differently-sized epoch
}

// ---------------------------------------------------------------------------
// recovery

std::unique_ptr<FleetController> FleetController::recover(FleetOptions options,
                                                          std::vector<SwitchSpec> switches,
                                                          std::vector<TenantSpec> tenants,
                                                          FleetRecoveryReport* report) {
    std::unique_ptr<FleetController> fleet(new FleetController(
        RecoverTag{}, std::move(options), std::move(switches), std::move(tenants)));
    FleetRecoveryReport rep;

    // Replay the decision log, dropping a torn tail (a crash mid-append
    // must not poison later appends — truncate to the valid prefix).
    std::vector<FleetEvent> replayed;
    std::string valid_prefix;
    {
        std::ifstream in(fleet->log_path());
        std::string line;
        while (in && std::getline(in, line)) {
            if (line.empty()) continue;
            try {
                const support::Json obj = support::Json::parse(line);
                FleetEvent event;
                event.seq = static_cast<std::uint64_t>(obj.get_int("seq", 0));
                event.kind = kind_from_name(obj.get_string("kind", ""));
                event.tenant = obj.get_string("tenant", "");
                event.where = obj.get_string("where", "");
                event.level = static_cast<int>(obj.get_int("level", 0));
                event.detail = obj.get_string("detail", "");
                replayed.push_back(std::move(event));
                valid_prefix += line + "\n";
            } catch (const std::exception& e) {
                rep.log_clean = false;
                rep.notes.push_back(std::string("torn fleet log tail truncated: ") + e.what());
                break;
            }
        }
    }
    if (!rep.log_clean) {
        const std::string tmp = fleet->log_path() + ".tmp";
        std::ofstream out(tmp, std::ios::trunc);
        out << valid_prefix;
        out.close();
        if (!out) throw Error(Errc::FleetJournalError, "cannot rewrite fleet log");
        fs::rename(tmp, fleet->log_path());
    }

    struct Placement {
        std::string home;
        int level = 0;
        bool parked = false;
    };
    std::map<std::string, Placement> placements;
    std::set<std::string> dead;
    for (const FleetEvent& event : replayed) {
        switch (event.kind) {
            case FleetEventKind::Admit:
            case FleetEventKind::Failover:
            case FleetEventKind::Readmit:
                placements[event.tenant] = Placement{event.where, event.level, false};
                break;
            case FleetEventKind::Degrade:
            case FleetEventKind::Restore:
                placements[event.tenant].level = event.level;
                break;
            case FleetEventKind::Shed:
                placements[event.tenant] = Placement{"", event.level, true};
                break;
            case FleetEventKind::SwitchDead: dead.insert(event.where); break;
            case FleetEventKind::Rejoin: dead.erase(event.where); break;
            default: break;
        }
        fleet->seq_ = std::max(fleet->seq_, event.seq);
    }
    rep.events_replayed = replayed.size();
    fleet->events_ = std::move(replayed);

    for (const std::string& name : dead) {
        const auto it = fleet->switches_.find(name);
        if (it == fleet->switches_.end()) continue;
        it->second.alive = false;
        fleet->detector_.declare_dead(name);
        rep.notes.push_back("switch '" + name + "' remains dead");
    }

    for (auto& [name, tenant] : fleet->tenants_) {
        const auto it = placements.find(name);
        if (it != placements.end()) *tenant.level = it->second.level;
        if (it != placements.end() && it->second.parked) {
            rep.notes.push_back("tenant '" + name + "' remains parked");
            continue;
        }
        std::string home = it != placements.end() ? it->second.home : "";
        if (!home.empty()) {
            const auto sw = fleet->switches_.find(home);
            if (sw == fleet->switches_.end() || !sw->second.alive) home.clear();
        }
        if (!home.empty()) {
            try {
                tenant.rt = runtime::ElasticRuntime::recover(
                    tenant.spec.name, tenant.driver.source, fleet->tenant_options(tenant),
                    fleet->wrapped_profile(tenant));
                tenant.home = home;
                tenant.bits = layout_bits(tenant.rt->compiled());
                tenant.epoch_seen = tenant.rt->epoch();
                tenant.bits_at_level[*tenant.level] = tenant.bits;
                rep.notes.push_back("tenant '" + name + "' restored on '" + home + "'");
                continue;
            } catch (const support::CompileError& e) {
                rep.notes.push_back("tenant '" + name + "' failed to restore on '" + home +
                                    "': " + e.what());
            }
        }
        const bool placed = fleet->place_tenant(
            tenant, it == placements.end() ? FleetEventKind::Admit : FleetEventKind::Failover,
            it == placements.end() ? "recovered: tenant new to this fleet"
                                   : "recovered: journaled home unavailable");
        rep.notes.push_back("tenant '" + name + "' " +
                            (placed ? "re-homed" : "parked (no capacity)"));
    }

    fleet->log_event(FleetEventKind::Recovered, "", "", 0,
                     "fleet recovered: " + std::to_string(rep.events_replayed) +
                         " events replayed" +
                         (rep.log_clean ? "" : ", torn tail truncated"));
    if (report != nullptr) *report = rep;
    return fleet;
}

// ---------------------------------------------------------------------------
// introspection

std::string FleetController::home_of(const std::string& tenant) const {
    return tenant_ref(tenant).home;
}

int FleetController::level_of(const std::string& tenant) const {
    return *tenant_ref(tenant).level;
}

bool FleetController::parked(const std::string& tenant) const {
    return tenant_ref(tenant).rt == nullptr;
}

Liveness FleetController::switch_state(const std::string& name) const {
    if (switches_.count(name) == 0) {
        throw Error(Errc::FleetConfig, "unknown switch '" + name + "'");
    }
    return detector_.state(name);
}

BreakerState FleetController::breaker_state(const std::string& name) const {
    const auto it = switches_.find(name);
    if (it == switches_.end()) {
        throw Error(Errc::FleetConfig, "unknown switch '" + name + "'");
    }
    return it->second.breaker.state();
}

std::vector<std::string> FleetController::tenants_on(const std::string& name) const {
    std::vector<std::string> hosted;
    for (const auto& [tn, tenant] : tenants_) {
        if (tenant.home == name) hosted.push_back(tn);
    }
    return hosted;
}

std::uint64_t FleetController::digest(const std::string& tenant_name) const {
    const Tenant& tenant = tenant_ref(tenant_name);
    if (!tenant.rt) return 0;
    return runtime::take_snapshot(tenant.rt->pipeline(), tenant.rt->epoch()).checksum();
}

std::int64_t FleetController::tenant_bits(const std::string& tenant) const {
    return tenant_ref(tenant).bits;
}

runtime::ElasticRuntime* FleetController::runtime_of(const std::string& tenant) {
    return tenant_ref(tenant).rt.get();
}

std::string FleetController::to_string() const {
    std::ostringstream out;
    out << "fleet (" << switches_.size() << " switches, " << tenants_.size() << " tenants)\n";
    for (const auto& [name, sw] : switches_) {
        out << "  switch " << name << ": " << fleet::to_string(detector_.state(name))
            << ", breaker " << fleet::to_string(sw.breaker.state());
        if (sw.spec.capacity_bits > 0) {
            out << ", " << (sw.spec.capacity_bits - free_bits(sw)) << "/"
                << sw.spec.capacity_bits << " bits";
        }
        out << "\n";
        for (const auto& tn : tenants_on(name)) {
            const Tenant& tenant = tenant_ref(tn);
            out << "    tenant " << tn << " (" << tenant.spec.app << "): L" << *tenant.level
                << ", " << tenant.bits << " bits, epoch " << tenant.rt->epoch() << "\n";
        }
    }
    for (const auto& [tn, tenant] : tenants_) {
        if (!tenant.rt) out << "  parked tenant " << tn << " (L" << *tenant.level << ")\n";
    }
    return out.str();
}

}  // namespace p4all::fleet
