#include "fleet/ladder.hpp"

#include <cctype>
#include <cstdlib>

namespace p4all::fleet {

namespace {

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

/// Parses one "assume <sym> == <N>;" line; returns false when the line is
/// anything else. `prefix` receives everything up to and including "== ".
bool parse_assume_eq(const std::string& line, std::string& prefix, std::int64_t& value) {
    const std::size_t eq = line.find("== ");
    if (eq == std::string::npos || line.find("assume ") == std::string::npos) return false;
    const std::size_t begin = eq + 3;
    std::size_t end = begin;
    while (end < line.size() && (std::isdigit(static_cast<unsigned char>(line[end])) != 0)) {
        ++end;
    }
    if (end == begin) return false;
    // Only the canonical driver shape "...;" qualifies; anything fancier
    // passes through unshrunk rather than risking a mangled rewrite.
    if (end >= line.size() || line[end] != ';') return false;
    prefix = line.substr(0, begin);
    value = std::strtoll(line.substr(begin, end - begin).c_str(), nullptr, 10);
    return true;
}

}  // namespace

std::int64_t layout_bits(const compiler::CompileResult& compiled) {
    std::int64_t bits = 0;
    for (const auto& stage : compiled.layout.stages) {
        for (const auto& placed : stage.registers) {
            bits += placed.bits(compiled.program);
        }
    }
    return bits;
}

std::string shrink_profile(const std::string& profile, int level, std::int64_t floor_value) {
    if (level <= 0 || profile.empty()) return profile;
    if (floor_value < 1) floor_value = 1;
    std::string out;
    out.reserve(profile.size());
    std::size_t pos = 0;
    while (pos < profile.size()) {
        std::size_t nl = profile.find('\n', pos);
        const bool had_newline = nl != std::string::npos;
        if (!had_newline) nl = profile.size();
        std::string line = profile.substr(pos, nl - pos);
        std::string prefix;
        std::int64_t value = 0;
        if (parse_assume_eq(line, prefix, value) && is_pow2(value) && value > floor_value) {
            std::int64_t shrunk = value;
            for (int l = 0; l < level && shrunk > floor_value; ++l) shrunk /= 2;
            if (shrunk < floor_value) shrunk = floor_value;
            line = prefix + std::to_string(shrunk) + ";";
        }
        out += line;
        if (had_newline) out += '\n';
        pos = nl + (had_newline ? 1 : 0);
    }
    return out;
}

bool ladder_exhausted(const std::string& profile, int level, std::int64_t floor_value) {
    return shrink_profile(profile, level, floor_value) ==
           shrink_profile(profile, level + 1, floor_value);
}

}  // namespace p4all::fleet
