// A per-switch circuit breaker around compile/swap operations.
//
// Failover compiles are expensive (a full resilient-portfolio compile per
// attempt); hammering them against a switch whose placements keep failing
// burns the retry budget every other tenant needs. The breaker implements
// the classic three-state machine:
//
//   Closed    operations flow; `failure_threshold` *consecutive* failures
//             trip the breaker Open (any success resets the count);
//   Open      operations are refused outright (Errc::BreakerOpen) for
//             `open_ticks` supervision ticks — the cool-down;
//   HalfOpen  after the cool-down, exactly ONE probe operation is admitted;
//             its success closes the breaker, its failure re-opens it for
//             another full cool-down.
//
// Time is tick-driven, not wall-clock: FleetController::tick() advances
// every breaker once per supervision round, so breaker trajectories are a
// pure function of the operation outcome sequence and chaos tests replay
// deterministically at any thread count.
#pragma once

#include <cstdint>
#include <string>

namespace p4all::fleet {

struct BreakerOptions {
    int failure_threshold = 3;  ///< consecutive failures that trip Open
    int open_ticks = 4;         ///< cool-down ticks before a HalfOpen probe

    [[nodiscard]] std::string to_string() const;
};

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

[[nodiscard]] std::string to_string(BreakerState state);

class CircuitBreaker {
public:
    explicit CircuitBreaker(BreakerOptions options = {});

    [[nodiscard]] BreakerState state() const noexcept { return state_; }

    /// True when the caller may run the guarded operation now. Closed:
    /// always. Open: never. HalfOpen: once — the first allow() claims the
    /// single probe slot; further calls are refused until the probe's
    /// outcome is recorded.
    [[nodiscard]] bool allow();

    /// Outcome of an allowed operation. Success closes the breaker (from
    /// any state) and clears the failure run; failure extends the run and
    /// trips Closed -> Open at the threshold, HalfOpen -> Open immediately.
    void record_success();
    void record_failure();

    /// One supervision tick: counts down an Open cool-down; at zero the
    /// breaker arms a HalfOpen probe. No-op in other states.
    void tick();

    [[nodiscard]] int consecutive_failures() const noexcept { return failures_; }
    [[nodiscard]] std::int64_t times_opened() const noexcept { return opened_; }
    [[nodiscard]] std::string to_string() const;

private:
    void open();

    BreakerOptions options_;
    BreakerState state_ = BreakerState::Closed;
    int failures_ = 0;        // consecutive failures while Closed
    int cooldown_ = 0;        // ticks left in Open
    bool probe_taken_ = false;  // HalfOpen probe slot claimed
    std::int64_t opened_ = 0;   // lifetime Closed/HalfOpen -> Open transitions
};

}  // namespace p4all::fleet
